//! The collaborative scheduler (Algorithms 4 and 5) with the rolling commit ladder.

use crate::status::TxnStatus;
use crate::task::{Task, Wave};
use block_stm_sync::{AtomicMinCounter, CachePadded, PaddedAtomicBool, PaddedAtomicUsize};
use block_stm_vm::{Incarnation, TxnIndex, Version};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Incarnation number, lifecycle status and the commit ladder's wave bookkeeping,
/// protected together by one mutex (the paper's
/// `txn_status[txn_idx] = mutex((incarnation_number, status))`, extended).
#[derive(Debug, Clone, Copy)]
struct StatusEntry {
    incarnation: Incarnation,
    status: TxnStatus,
    /// Highest wave at which the validation cursor claimed this transaction while it
    /// was validatable. The commit ladder refuses to commit an incarnation whose
    /// passing validation is older than this (a newer sweep has reached the
    /// transaction, so a fresher validation is required or already in flight).
    max_triggered_wave: Wave,
    /// Wave of the validation task last handed directly back to the executing thread
    /// by `finish_execution` (the cursor will never revisit the transaction for it,
    /// so the requirement is recorded here instead of via `max_triggered_wave`).
    required_wave: Wave,
    /// Highest wave at which a validation of the *current* incarnation passed.
    /// Cleared on abort.
    validated_wave: Option<Wave>,
}

impl StatusEntry {
    fn initial() -> Self {
        Self {
            incarnation: 0,
            status: TxnStatus::ReadyToExecute,
            max_triggered_wave: 0,
            required_wave: 0,
            validated_wave: None,
        }
    }
}

/// Configuration of a [`Scheduler`], applied at construction (or on
/// [`Scheduler::reset`], which preserves it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedulerOptions {
    /// Allow `finish_execution` / `finish_validation` to hand the follow-up task
    /// directly back to the calling thread instead of routing it through the shared
    /// counters (the paper's cases 1(b)/2(c) optimization). Disabled only by the
    /// ablation benchmarks. Default: `true`.
    pub task_return_optimization: bool,
    /// Run the rolling commit ladder: commit the lowest uncommitted transaction as
    /// soon as it has a sufficiently fresh passing validation, exempt committed
    /// transactions from re-validation, and derive block completion from
    /// `committed_prefix() == block_size()` instead of the double-collect
    /// `check_done`. Disabled only by ablation benchmarks (the `commitbench`
    /// ladder-off rows). Default: `true`.
    pub rolling_commit: bool,
}

impl Default for SchedulerOptions {
    fn default() -> Self {
        Self {
            task_return_optimization: true,
            rolling_commit: true,
        }
    }
}

/// Packs the validation cursor: low 32 bits index, high 32 bits wave.
#[inline]
const fn pack_cursor(idx: usize, wave: Wave) -> u64 {
    ((wave as u64) << 32) | idx as u64
}

/// Unpacks the validation cursor into `(idx, wave)`.
#[inline]
const fn unpack_cursor(packed: u64) -> (usize, Wave) {
    ((packed & u32::MAX as u64) as usize, (packed >> 32) as Wave)
}

/// The Block-STM collaborative scheduler for one block execution.
///
/// The scheduler is shared by reference across worker threads while a block executes;
/// all hot-path methods take `&self`. Between blocks, an owning executor may call
/// [`reset`](Self::reset) (which requires `&mut self`, i.e. proof of exclusive
/// access) to reuse the per-transaction arrays for the next block instead of
/// reallocating them.
///
/// See the crate docs for the commit ladder design and its safety argument.
#[derive(Debug)]
pub struct Scheduler {
    block_size: usize,
    /// Index of the next transaction to try to execute (cursor of the ordered set `E`).
    execution_idx: AtomicMinCounter,
    /// Packed validation cursor: `(wave << 32) | idx`. The index is the cursor of the
    /// ordered set `V`; the wave increments on every decrease, so a claimed
    /// validation task knows how fresh it is (commit ladder bookkeeping).
    validation_idx: CachePadded<AtomicU64>,
    /// Incremented every time either index is decreased; lets the legacy
    /// `check_done` double-collect detect concurrent decreases (Theorem 1). With the
    /// commit ladder enabled this is diagnostic only.
    decrease_cnt: PaddedAtomicUsize,
    /// Number of in-flight execution/validation tasks (including claimed-but-not-yet
    /// -materialized ones).
    num_active_tasks: PaddedAtomicUsize,
    /// Set once the block is complete (ladder reached `block_size`, or the legacy
    /// double-collect fired, or the scheduler was halted).
    done_marker: PaddedAtomicBool,
    /// Set by [`halt`](Self::halt): the block was cut short (worker panic or a
    /// `BlockLimiter` boundary) rather than run to completion.
    halted: PaddedAtomicBool,
    /// Chained execution's commit gate (open by default). While closed, the
    /// commit ladder does not advance — the block may execute and validate
    /// speculatively, but nothing commits and the done marker stays down. A
    /// `ChainExecutor` keeps a successor block's gate closed until its
    /// predecessor has fully committed, then triggers a full revalidation
    /// sweep and opens the gate (see
    /// [`set_commit_gate`](Self::set_commit_gate) for the safety protocol).
    commit_gate_open: PaddedAtomicBool,
    /// The commit ladder cursor: index of the lowest uncommitted transaction. Only
    /// the thread holding the mutex advances it; `commit_watermark` mirrors it for
    /// lock-free reads.
    commit_cursor: CachePadded<Mutex<usize>>,
    /// Lock-free mirror of the commit cursor (the committed prefix length).
    commit_watermark: PaddedAtomicUsize,
    /// Per transaction: indices of transactions waiting for it to re-execute.
    txn_dependency: Vec<CachePadded<Mutex<Vec<TxnIndex>>>>,
    /// Per transaction: current incarnation number, status and wave bookkeeping.
    txn_status: Vec<CachePadded<Mutex<StatusEntry>>>,
    /// See [`SchedulerOptions::task_return_optimization`].
    task_return_optimization: bool,
    /// See [`SchedulerOptions::rolling_commit`].
    rolling_commit: bool,
    /// Hint-guided initial execution order: the execution counter dispenses
    /// *positions*, and `initial_order[pos]` is the transaction executed at
    /// position `pos` (`None` = identity, the paper's index order). Purely a
    /// scheduling heuristic — validation, the commit ladder and the preset
    /// serialization order are untouched (see
    /// [`set_initial_order`](Self::set_initial_order)).
    initial_order: Option<Vec<TxnIndex>>,
    /// Inverse permutation: `order_position[txn_idx]` is the position of
    /// `txn_idx` in `initial_order`. Empty when `initial_order` is `None`.
    order_position: Vec<usize>,
}

impl Scheduler {
    /// Creates a scheduler for a block of `block_size` transactions with default
    /// options.
    pub fn new(block_size: usize) -> Self {
        Self::with_options(block_size, SchedulerOptions::default())
    }

    /// Creates a scheduler for a block of `block_size` transactions with explicit
    /// [`SchedulerOptions`].
    pub fn with_options(block_size: usize, options: SchedulerOptions) -> Self {
        assert!(
            block_size < u32::MAX as usize,
            "block size must fit the packed validation cursor"
        );
        Self {
            block_size,
            execution_idx: AtomicMinCounter::new(0),
            validation_idx: CachePadded::new(AtomicU64::new(pack_cursor(0, 0))),
            decrease_cnt: PaddedAtomicUsize::new(0),
            num_active_tasks: PaddedAtomicUsize::new(0),
            done_marker: PaddedAtomicBool::new(false),
            halted: PaddedAtomicBool::new(false),
            commit_gate_open: PaddedAtomicBool::new(true),
            commit_cursor: CachePadded::new(Mutex::new(0)),
            commit_watermark: PaddedAtomicUsize::new(0),
            txn_dependency: (0..block_size)
                .map(|_| CachePadded::new(Mutex::new(Vec::new())))
                .collect(),
            txn_status: (0..block_size)
                .map(|_| CachePadded::new(Mutex::new(StatusEntry::initial())))
                .collect(),
            task_return_optimization: options.task_return_optimization,
            rolling_commit: options.rolling_commit,
            initial_order: None,
            order_position: Vec::new(),
        }
    }

    /// Re-arms the scheduler for a new block of `block_size` transactions, reusing
    /// the per-transaction arrays (and their heap allocations) instead of building a
    /// fresh scheduler. Options are preserved.
    ///
    /// Requires `&mut self`: the borrow checker thereby proves no worker thread still
    /// holds a reference from the previous block.
    pub fn reset(&mut self, block_size: usize) {
        assert!(
            block_size < u32::MAX as usize,
            "block size must fit the packed validation cursor"
        );
        self.block_size = block_size;
        self.execution_idx.store(0);
        *self.validation_idx.get_mut() = pack_cursor(0, 0);
        self.decrease_cnt.store(0);
        self.num_active_tasks.store(0);
        self.done_marker.store(false);
        self.halted.store(false);
        self.commit_gate_open.store(true);
        *self.commit_cursor.get_mut() = 0;
        self.commit_watermark.store(0);
        self.txn_dependency.truncate(block_size);
        for cell in &mut self.txn_dependency {
            cell.get_mut().clear();
        }
        while self.txn_dependency.len() < block_size {
            self.txn_dependency
                .push(CachePadded::new(Mutex::new(Vec::new())));
        }
        self.txn_status.truncate(block_size);
        for cell in &mut self.txn_status {
            *cell.get_mut() = StatusEntry::initial();
        }
        while self.txn_status.len() < block_size {
            self.txn_status
                .push(CachePadded::new(Mutex::new(StatusEntry::initial())));
        }
        // Hints are per block: the next block must opt in again.
        self.initial_order = None;
        self.order_position.clear();
    }

    /// Installs a hint-guided **initial execution order** for this block: the
    /// execution counter dispenses positions `0, 1, 2, ...` and position `pos`
    /// executes transaction `order[pos]` (low-conflict transactions first, per
    /// the hint partition). `order` must be a permutation of
    /// `0..block_size()`.
    ///
    /// This is purely a dispensing heuristic and cannot affect the committed
    /// output: the validation cursor, the wave bookkeeping and the commit
    /// ladder all operate on *transaction indices* exactly as before, so the
    /// preset serialization order is preserved no matter how execution is
    /// permuted — a mis-ordered speculation is caught by validation like any
    /// other stale read.
    ///
    /// Requires `&mut self` (called between [`reset`](Self::reset) and the
    /// block's first task claim, while no worker holds a reference).
    pub fn set_initial_order(&mut self, order: Vec<TxnIndex>) {
        assert_eq!(order.len(), self.block_size, "order must cover the block");
        self.order_position.clear();
        self.order_position.resize(self.block_size, usize::MAX);
        for (pos, &txn_idx) in order.iter().enumerate() {
            assert!(
                txn_idx < self.block_size && self.order_position[txn_idx] == usize::MAX,
                "initial order must be a permutation of 0..block_size"
            );
            self.order_position[txn_idx] = pos;
        }
        self.initial_order = Some(order);
    }

    /// Pre-registers a **hinted dependency** before the block starts: `txn_idx`
    /// is parked (it will fail every `try_incarnate` until woken) and is added
    /// to `blocking_txn_idx`'s dependency list, exactly as if it had executed,
    /// read an ESTIMATE of the blocker and aborted — minus the doomed
    /// speculative execution. When the blocker finishes its next incarnation,
    /// `finish_execution` resumes `txn_idx` through the ordinary
    /// `resume_dependencies` path.
    ///
    /// Returns `false` (and registers nothing) unless `txn_idx` is still in its
    /// untouched initial state, so at most one pre-dependency can be installed
    /// per transaction. Stale or wrong hints cannot affect the output: parking
    /// only delays the first execution, and the woken incarnation validates
    /// like any other.
    ///
    /// Requires `&mut self` (no worker is running, so no lock ordering or
    /// wake race to consider — in particular the blocker cannot have finished
    /// executing yet).
    pub fn preregister_dependency(
        &mut self,
        txn_idx: TxnIndex,
        blocking_txn_idx: TxnIndex,
    ) -> bool {
        assert!(
            blocking_txn_idx < txn_idx && txn_idx < self.block_size,
            "pre-registered dependencies point to lower transactions in the block"
        );
        let entry = self.txn_status[txn_idx].get_mut();
        if entry.status != TxnStatus::ReadyToExecute || entry.incarnation != 0 {
            return false;
        }
        entry.status = TxnStatus::Aborting;
        self.txn_dependency[blocking_txn_idx]
            .get_mut()
            .push(txn_idx);
        true
    }

    /// Maps an execution-counter position to the transaction dispensed there.
    #[inline]
    fn txn_at_position(&self, pos: usize) -> TxnIndex {
        match &self.initial_order {
            Some(order) if pos < order.len() => order[pos],
            _ => pos,
        }
    }

    /// Maps a transaction index to its execution-counter position.
    #[inline]
    fn position_of(&self, txn_idx: TxnIndex) -> usize {
        if self.initial_order.is_some() {
            self.order_position[txn_idx]
        } else {
            txn_idx
        }
    }

    /// Raises the done marker immediately, releasing every worker from its run loop.
    ///
    /// Used by executors to cut a block short: after a worker died mid-block (the
    /// results are discarded) or when a `BlockLimiter` declared the committed prefix
    /// long enough (the results up to the executor's cut are kept — the prefix below
    /// [`committed_prefix`](Self::committed_prefix) is already final and is not
    /// disturbed by the halt). The scheduler must be [`reset`](Self::reset) before
    /// the next block.
    pub fn halt(&self) {
        self.halted.store(true);
        self.done_marker.store(true);
    }

    /// Whether [`halt`](Self::halt) cut this block short.
    pub fn halted(&self) -> bool {
        self.halted.load()
    }

    /// Opens or closes the chained-execution **commit gate** (open by default;
    /// [`reset`](Self::reset) re-opens it).
    ///
    /// While the gate is closed the commit ladder is frozen at its current
    /// boundary: execution and validation tasks are dispensed normally — the
    /// block speculates at full speed — but no transaction transitions to
    /// `Committed`, the committed watermark does not move, and the done marker
    /// stays down. A `ChainExecutor` closes the gate of block `N+1` while
    /// block `N` is still committing (so `N+1` can never commit a read of a
    /// not-yet-final cross-block frontier), and opens it only **after** the
    /// frontier is final *and* a [`trigger_full_revalidation`] sweep has
    /// started a fresh validation wave — the ladder's wave-freshness rule then
    /// guarantees every commit is backed by a validation that began after the
    /// frontier froze.
    ///
    /// Opening the gate re-attempts the ladder immediately, so a block whose
    /// validations all passed while gated does not wait for another
    /// validation event.
    ///
    /// [`trigger_full_revalidation`]: Self::trigger_full_revalidation
    pub fn set_commit_gate(&self, open: bool) {
        self.commit_gate_open.store(open);
        if open && self.rolling_commit {
            self.advance_commit_ladder();
        }
    }

    /// Whether the chained-execution commit gate is open (see
    /// [`set_commit_gate`](Self::set_commit_gate)).
    pub fn commit_gate_open(&self) -> bool {
        self.commit_gate_open.load()
    }

    /// Starts a fresh validation wave covering the whole block: lowers the
    /// validation cursor to 0 (if it is not already there) and returns the
    /// wave at which transactions will now (re-)validate.
    ///
    /// Chained execution calls this when the cross-block frontier advances —
    /// most importantly once the predecessor block has fully committed, right
    /// before opening the successor's commit gate: the commit rule's
    /// `validated_wave >= max_triggered_wave` freshness check then rejects any
    /// validation that predates the sweep, so stale frontier reads (caught by
    /// their stamped descriptors) can never be committed.
    pub fn trigger_full_revalidation(&self) -> Wave {
        self.decrease_validation_idx(0)
    }

    /// Number of transactions in the block.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// `done()` (Line 101): whether the block is complete and threads may exit their
    /// run loop. With the commit ladder enabled this is raised exactly when
    /// [`committed_prefix`](Self::committed_prefix) reaches
    /// [`block_size`](Self::block_size) (or on [`halt`](Self::halt)).
    pub fn done(&self) -> bool {
        self.done_marker.load()
    }

    /// Length of the committed prefix: every transaction below this index is
    /// `Committed` — its output, write-set and multi-version entries are final.
    /// Monotonically increasing within a block; lock-free.
    pub fn committed_prefix(&self) -> usize {
        self.commit_watermark.load()
    }

    /// Position of the execution cursor, clamped to the block size. The distance
    /// `execution_cursor() - committed_prefix()` is the commit lag: how far
    /// speculation has run ahead of the committed prefix. (With a hinted
    /// initial order installed this counts dispensed *positions*, not
    /// transaction indices.)
    pub fn execution_cursor(&self) -> usize {
        self.execution_idx.load().min(self.block_size)
    }

    /// Whether the rolling commit ladder is enabled.
    pub fn rolling_commit_enabled(&self) -> bool {
        self.rolling_commit
    }

    /// Current incarnation number of `txn_idx` (used by executors for bookkeeping and
    /// by tests).
    pub fn incarnation_of(&self, txn_idx: TxnIndex) -> Incarnation {
        self.txn_status[txn_idx].lock().incarnation
    }

    /// Current status of `txn_idx` (test/diagnostic helper).
    pub fn status_of(&self, txn_idx: TxnIndex) -> TxnStatus {
        self.txn_status[txn_idx].lock().status
    }

    /// Diagnostic snapshot of one transaction's commit-freshness state plus the
    /// validation cursor: `(incarnation, status, max_triggered_wave,
    /// required_wave, validated_wave, cursor_idx, cursor_wave)`. Used by the
    /// opt-in chained-commit audit; not on any hot path.
    #[allow(clippy::type_complexity)]
    pub fn wave_diagnostics(
        &self,
        txn_idx: TxnIndex,
    ) -> (
        Incarnation,
        TxnStatus,
        Wave,
        Wave,
        Option<Wave>,
        usize,
        Wave,
    ) {
        let entry = self.txn_status[txn_idx].lock();
        let (cursor_idx, cursor_wave) = self.validation_cursor();
        (
            entry.incarnation,
            entry.status,
            entry.max_triggered_wave,
            entry.required_wave,
            entry.validated_wave,
            cursor_idx,
            cursor_wave,
        )
    }

    /// Capacity of the dependency list slot of `txn_idx` (steady-state allocation
    /// test hook).
    #[doc(hidden)]
    pub fn dependency_capacity(&self, txn_idx: TxnIndex) -> usize {
        self.txn_dependency[txn_idx].lock().capacity()
    }

    /// `decrease_execution_idx` (Lines 98–100). The counter lives in
    /// *position* space, so the target transaction is translated through the
    /// hinted initial order (identity without one).
    fn decrease_execution_idx(&self, target_idx: TxnIndex) {
        self.execution_idx.decrease(self.position_of(target_idx));
        self.decrease_cnt.increment();
    }

    /// `decrease_validation_idx` (Lines 103–105), wave-stamped: lowering the cursor
    /// starts a new validation wave. Returns the wave at which transactions from
    /// `target_idx` upward will (re-)validate — the new wave if this call lowered the
    /// cursor, the current wave if it already was at or below the target.
    fn decrease_validation_idx(&self, target_idx: TxnIndex) -> Wave {
        let mut current = self.validation_idx.load(Ordering::SeqCst);
        loop {
            let (idx, wave) = unpack_cursor(current);
            if idx <= target_idx {
                return wave;
            }
            match self.validation_idx.compare_exchange(
                current,
                pack_cursor(target_idx, wave + 1),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.decrease_cnt.increment();
                    return wave + 1;
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// The current `(index, wave)` of the validation cursor.
    fn validation_cursor(&self) -> (usize, Wave) {
        unpack_cursor(self.validation_idx.load(Ordering::SeqCst))
    }

    /// Completion check. With the commit ladder enabled, completion is *derived from
    /// the ladder*: the block is done exactly when the committed prefix covers it,
    /// so this simply attempts a ladder advance (which raises the done marker at the
    /// end). With the ladder disabled, this is the paper's double-collect
    /// (`check_done`, Lines 106–109).
    fn check_done(&self) {
        if self.done_marker.load() {
            return;
        }
        if self.rolling_commit {
            self.advance_commit_ladder();
        } else if self.cursors_exhausted() {
            self.done_marker.store(true);
        }
    }

    /// The legacy double-collect completion condition (Theorem 1): both cursors ran
    /// past the block, no task is in flight, and no cursor was lowered between the
    /// two collects. With the commit ladder enabled this is exposed for diagnostics
    /// and the termination-agreement test only.
    pub fn cursors_exhausted(&self) -> bool {
        let observed_cnt = self.decrease_cnt.load();
        let execution_idx = self.execution_idx.load();
        let (validation_idx, _) = self.validation_cursor();
        let active = self.num_active_tasks.load();
        execution_idx.min(validation_idx) >= self.block_size
            && active == 0
            && observed_cnt == self.decrease_cnt.load()
    }

    /// The post-validation commit hook: advances the commit ladder while the lowest
    /// uncommitted transaction has a sufficiently fresh passing validation.
    ///
    /// A transaction `k` commits when, under its status lock:
    ///
    /// 1. its status is `Validated` for the current incarnation, with the passing
    ///    validation's wave `w_V = validated_wave`;
    /// 2. `w_V >= max(max_triggered_wave, required_wave)` — no newer sweep has
    ///    reached the transaction, and the validation handed back after its last
    ///    execution (if any) has completed;
    /// 3. the validation cursor `(idx, wave)` satisfies `idx > k || wave <= w_V` — a
    ///    sweep that could carry an unseen invalidation is not still below `k`.
    ///
    /// See the crate docs for why 1–3 imply the incarnation's reads equal the final
    /// committed state (the safety argument).
    fn advance_commit_ladder(&self) {
        debug_assert!(self.rolling_commit);
        let mut next = self.commit_cursor.lock();
        loop {
            if !self.commit_gate_open.load() {
                // Chained execution: the predecessor block has not fully
                // committed, so nothing here may commit yet (and the done
                // marker stays down). The gate owner re-attempts the ladder
                // when it opens the gate.
                return;
            }
            if *next == self.block_size {
                self.done_marker.store(true);
                return;
            }
            if self.halted.load() {
                // A halt freezes the ladder at the current boundary; the executor
                // decides what to keep.
                return;
            }
            let mut entry = self.txn_status[*next].lock();
            let committable = entry.status == TxnStatus::Validated
                && match entry.validated_wave {
                    Some(validated) => {
                        let fresh_enough =
                            validated >= entry.max_triggered_wave.max(entry.required_wave);
                        let (cursor_idx, cursor_wave) = self.validation_cursor();
                        fresh_enough && (cursor_idx > *next || cursor_wave <= validated)
                    }
                    None => false,
                };
            if !committable {
                return;
            }
            entry.status = TxnStatus::Committed;
            drop(entry);
            *next += 1;
            self.commit_watermark.store(*next);
        }
    }

    /// `try_incarnate` (Lines 110–117): claims the next incarnation of `txn_idx` for
    /// execution if (and only if) the transaction is `READY_TO_EXECUTE`.
    ///
    /// Unlike the paper's pseudo-code, the active-task accounting on failure is done by
    /// the callers, which keeps the increment/decrement pairs visible at a single
    /// level of the call stack.
    fn try_incarnate(&self, txn_idx: TxnIndex) -> Option<Version> {
        if txn_idx < self.block_size {
            let mut entry = self.txn_status[txn_idx].lock();
            if entry.status == TxnStatus::ReadyToExecute {
                entry.status = TxnStatus::Executing;
                return Some(Version::new(txn_idx, entry.incarnation));
            }
        }
        None
    }

    /// `next_version_to_execute` (Lines 118–124).
    fn next_version_to_execute(&self) -> Option<Version> {
        if self.execution_idx.load() >= self.block_size {
            self.check_done();
            return None;
        }
        self.num_active_tasks.increment();
        let idx_to_execute = self.txn_at_position(self.execution_idx.fetch_and_increment());
        match self.try_incarnate(idx_to_execute) {
            Some(version) => Some(version),
            None => {
                self.num_active_tasks.decrement();
                None
            }
        }
    }

    /// `next_version_to_validate` (Lines 125–136). Claims the next validatable
    /// transaction under the cursor and stamps the cursor's wave into both the
    /// returned task and the transaction's `max_triggered_wave` (the commit ladder's
    /// freshness floor). Committed transactions are never validatable: the committed
    /// prefix is permanently exempt from re-validation.
    ///
    /// The wave is stamped *before* the cursor advances, under the transaction's
    /// status lock, with the advance itself a CAS performed while the lock is
    /// still held. This ordering is load-bearing for the commit ladder's rule 2:
    /// the ladder's rule 3 treats `cursor > k` as proof that the cursor's wave
    /// has been stamped into `max_triggered_wave[k]` (or that `k` needs no
    /// stamp). A simple `fetch_add` claim would open a window — cursor already
    /// past `k`, stamp not yet taken — in which the ladder can commit `k`
    /// against a stale older-wave validation; the claimer then finds `k`
    /// `Committed`, discards the fresh validation that would have caught the
    /// stale read, and the miscommit stands.
    fn next_version_to_validate(&self) -> Option<Task> {
        let (idx, _) = self.validation_cursor();
        if idx >= self.block_size {
            self.check_done();
            return None;
        }
        self.num_active_tasks.increment();
        let mut current = self.validation_idx.load(Ordering::SeqCst);
        loop {
            let (idx_to_validate, wave) = unpack_cursor(current);
            if idx_to_validate >= self.block_size {
                break;
            }
            let entry_guard = &mut *self.txn_status[idx_to_validate].lock();
            let validatable = entry_guard.status.is_validatable();
            if validatable {
                entry_guard.max_triggered_wave = entry_guard.max_triggered_wave.max(wave);
            }
            match self.validation_idx.compare_exchange(
                current,
                pack_cursor(idx_to_validate + 1, wave),
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    if validatable {
                        return Some(Task::validation(
                            Version::new(idx_to_validate, entry_guard.incarnation),
                            wave,
                        ));
                    }
                    // Claimed a transaction with nothing to validate right now
                    // (not yet executed, aborting, or already committed); its
                    // freshness is covered by `required_wave` at hand-back or
                    // by a later sweep.
                    break;
                }
                Err(observed) => {
                    // Lost the claim (another claimer advanced, or a decrease
                    // started a new wave). The stamp taken above is at most
                    // conservative — it can only demand a fresher validation.
                    current = observed;
                }
            }
        }
        self.num_active_tasks.decrement();
        None
    }

    /// `next_task` (Lines 137–146): hands the calling thread the lowest-indexed ready
    /// task, preferring validation when the validation cursor is behind the execution
    /// cursor. (With a hinted initial order the execution counter counts
    /// *positions*, so the comparison degrades to a heuristic — either branch
    /// is correct, it only biases which task kind is tried first.)
    pub fn next_task(&self) -> Option<Task> {
        let (validation_idx, _) = self.validation_cursor();
        if validation_idx < self.execution_idx.load() {
            self.next_version_to_validate()
        } else {
            self.next_version_to_execute().map(Task::execution)
        }
    }

    /// `add_dependency` (Lines 147–154): records that `txn_idx` must wait for
    /// `blocking_txn_idx` to finish its next incarnation (because `txn_idx` read an
    /// ESTIMATE written by it).
    ///
    /// Returns `false` when the race described in §3.3 is detected: the blocking
    /// transaction finished executing before the dependency could be registered — the
    /// caller should simply re-execute immediately.
    pub fn add_dependency(&self, txn_idx: TxnIndex, blocking_txn_idx: TxnIndex) -> bool {
        debug_assert!(
            blocking_txn_idx < txn_idx,
            "dependencies point to lower txns"
        );
        // Lock order: dependency list of the blocking transaction first, then statuses.
        // This is the only place two locks are held simultaneously (Claim 5).
        let mut dependency_guard = self.txn_dependency[blocking_txn_idx].lock();
        if self.txn_status[blocking_txn_idx]
            .lock()
            .status
            .writes_settled()
        {
            // Dependency resolved before locking: the caller re-executes immediately.
            // (`Executed`, `Validated` or `Committed` — the blocker's writes are in
            // place. Registering on a `Committed` blocker in particular would park
            // the caller forever: committed transactions never resume dependents.)
            return false;
        }
        {
            let mut entry = self.txn_status[txn_idx].lock();
            debug_assert_eq!(entry.status, TxnStatus::Executing);
            entry.status = TxnStatus::Aborting;
        }
        dependency_guard.push(txn_idx);
        drop(dependency_guard);
        // The execution task ended without producing an output.
        self.num_active_tasks.decrement();
        true
    }

    /// `set_ready_status` (Lines 155–158): moves an `ABORTING(i)` transaction to
    /// `READY_TO_EXECUTE(i + 1)`, invalidating any recorded passing validation.
    fn set_ready_status(&self, txn_idx: TxnIndex) {
        let mut entry = self.txn_status[txn_idx].lock();
        debug_assert_eq!(entry.status, TxnStatus::Aborting);
        entry.incarnation += 1;
        entry.status = TxnStatus::ReadyToExecute;
        entry.validated_wave = None;
    }

    /// `resume_dependencies` (Lines 159–164): wakes every transaction that was waiting
    /// on the just-finished one and makes sure the execution cursor will revisit them.
    fn resume_dependencies(&self, dependent_txn_indices: &[TxnIndex]) {
        for &dep_txn_idx in dependent_txn_indices {
            self.set_ready_status(dep_txn_idx);
        }
        // The execution counter is in position space: lower it to the earliest
        // *dispensed position* among the woken transactions (identical to the
        // minimum index without a hinted order).
        if let Some(&first_dependency) = dependent_txn_indices
            .iter()
            .min_by_key(|&&dep| self.position_of(dep))
        {
            self.decrease_execution_idx(first_dependency);
        }
    }

    /// `finish_execution` (Lines 165–175): called after an incarnation's effects were
    /// recorded in the multi-version memory.
    ///
    /// When the validation cursor has already run past the transaction, its (re-)
    /// validation is handed straight back to the caller (the paper's case 1(b)
    /// optimization), stamped with the wave it must satisfy; if the incarnation
    /// wrote a location its predecessor did not, the cursor is additionally lowered
    /// to `txn_idx + 1` so every higher transaction re-validates on a fresh wave.
    pub fn finish_execution(
        &self,
        txn_idx: TxnIndex,
        incarnation: Incarnation,
        wrote_new_path: bool,
    ) -> Option<Task> {
        {
            let mut entry = self.txn_status[txn_idx].lock();
            debug_assert_eq!(entry.status, TxnStatus::Executing);
            debug_assert_eq!(entry.incarnation, incarnation);
            entry.status = TxnStatus::Executed;
        }
        let mut drained = std::mem::take(&mut *self.txn_dependency[txn_idx].lock());
        self.resume_dependencies(&drained);
        if drained.capacity() > 0 {
            // Return the drained buffer to its slot so steady-state wake cycles
            // allocate nothing. If a new dependency raced in meanwhile (the slot
            // has its own buffer again), keep that one.
            drained.clear();
            let mut slot = self.txn_dependency[txn_idx].lock();
            if slot.capacity() == 0 {
                *slot = drained;
            }
        }

        let (validation_idx, current_wave) = self.validation_cursor();
        if validation_idx > txn_idx {
            // Higher transactions have already been (or are being) validated against a
            // state that did not include this incarnation's writes.
            if self.task_return_optimization {
                let wave = if wrote_new_path {
                    // Re-validate the whole suffix on a fresh wave; this
                    // transaction itself is covered by the task handed back.
                    self.decrease_validation_idx(txn_idx + 1)
                } else {
                    current_wave
                };
                self.txn_status[txn_idx].lock().required_wave = wave;
                return Some(Task::validation(Version::new(txn_idx, incarnation), wave));
            }
            // Optimization disabled: route everything through the shared cursor.
            self.decrease_validation_idx(txn_idx);
        }
        self.num_active_tasks.decrement();
        None
    }

    /// `try_validation_abort` (Lines 176–181): claims the right to abort incarnation
    /// `incarnation` of `txn_idx`. Only the first failing validation per incarnation
    /// succeeds; committed transactions can never be aborted.
    pub fn try_validation_abort(&self, txn_idx: TxnIndex, incarnation: Incarnation) -> bool {
        let mut entry = self.txn_status[txn_idx].lock();
        if entry.incarnation == incarnation && entry.status.is_validatable() {
            entry.status = TxnStatus::Aborting;
            true
        } else {
            false
        }
    }

    /// `finish_validation` (Lines 182–191): called after a validation task completes.
    ///
    /// On abort, schedules the re-execution (possibly returning it directly to the
    /// caller) and re-validation of higher transactions. On a pass, records the
    /// validation's wave, promotes the incarnation to `Validated`, and — when the
    /// transaction sits at the commit boundary — runs the commit ladder.
    pub fn finish_validation(
        &self,
        txn_idx: TxnIndex,
        incarnation: Incarnation,
        wave: Wave,
        aborted: bool,
    ) -> Option<Task> {
        if aborted {
            self.set_ready_status(txn_idx);
            self.decrease_validation_idx(txn_idx + 1);
            if self.execution_idx.load() > self.position_of(txn_idx) {
                if self.task_return_optimization {
                    if let Some(version) = self.try_incarnate(txn_idx) {
                        return Some(Task::execution(version));
                    }
                } else {
                    self.decrease_execution_idx(txn_idx);
                }
            }
        } else {
            let mut entry = self.txn_status[txn_idx].lock();
            // Stale validations (a different incarnation, or a transaction that
            // committed or aborted meanwhile) record nothing.
            if entry.incarnation == incarnation && entry.status.is_validatable() {
                entry.status = TxnStatus::Validated;
                entry.validated_wave =
                    Some(entry.validated_wave.map_or(wave, |prev| prev.max(wave)));
                let at_commit_boundary = self.commit_watermark.load() == txn_idx;
                drop(entry);
                if self.rolling_commit && at_commit_boundary {
                    self.advance_commit_ladder();
                }
            }
        }
        self.num_active_tasks.decrement();
        None
    }

    /// Test/diagnostic helper: number of in-flight tasks.
    pub fn active_tasks(&self) -> usize {
        self.num_active_tasks.load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;
    use std::collections::HashMap;
    use std::sync::Arc;

    /// `next_task` may legitimately return `None` a few times while the validation
    /// cursor runs ahead of transactions that have not executed yet (the paper's run
    /// loop simply retries); this helper retries a bounded number of times.
    fn claim(scheduler: &Scheduler) -> Task {
        for _ in 0..100 {
            if let Some(task) = scheduler.next_task() {
                return task;
            }
        }
        panic!("no task became available");
    }

    /// Finishes a validation task as passing, passing its version/wave through.
    fn pass_validation(scheduler: &Scheduler, task: Task) -> Option<Task> {
        assert!(task.is_validation());
        scheduler.finish_validation(
            task.version.txn_idx,
            task.version.incarnation,
            task.wave,
            false,
        )
    }

    #[test]
    fn initial_tasks_are_executions_in_order() {
        let scheduler = Scheduler::new(3);
        let t0 = claim(&scheduler);
        assert_eq!(t0, Task::execution(Version::new(0, 0)));
        let t1 = claim(&scheduler);
        assert_eq!(t1, Task::execution(Version::new(1, 0)));
        assert_eq!(scheduler.active_tasks(), 2);
    }

    #[test]
    fn empty_block_terminates_immediately() {
        let scheduler = Scheduler::new(0);
        assert!(!scheduler.done());
        assert!(scheduler.next_task().is_none());
        assert!(scheduler.done());
        assert_eq!(scheduler.committed_prefix(), 0);
    }

    #[test]
    fn simple_block_runs_to_completion_single_threaded() {
        let n = 4;
        let scheduler = Scheduler::new(n);
        let mut executed = vec![0usize; n];
        let mut validated = vec![0usize; n];
        let mut pending: Option<Task> = None;
        let mut steps = 0;
        while !scheduler.done() {
            steps += 1;
            assert!(steps < 1_000, "scheduler did not terminate");
            let task = match pending.take() {
                Some(task) => Some(task),
                None => scheduler.next_task(),
            };
            let Some(task) = task else { continue };
            match task.kind {
                TaskKind::Execution => {
                    executed[task.version.txn_idx] += 1;
                    pending = scheduler.finish_execution(
                        task.version.txn_idx,
                        task.version.incarnation,
                        true,
                    );
                }
                TaskKind::Validation => {
                    validated[task.version.txn_idx] += 1;
                    pending = pass_validation(&scheduler, task);
                }
            }
        }
        assert!(executed.iter().all(|&count| count == 1));
        assert!(validated.iter().all(|&count| count >= 1));
        assert_eq!(scheduler.active_tasks(), 0);
        // The commit ladder committed the whole block, in order.
        assert_eq!(scheduler.committed_prefix(), n);
        for txn_idx in 0..n {
            assert_eq!(scheduler.status_of(txn_idx), TxnStatus::Committed);
        }
    }

    #[test]
    fn finish_execution_without_new_path_returns_validation_task() {
        let scheduler = Scheduler::new(2);
        // Claiming the second execution task makes the validation cursor attempt (and
        // skip) transaction 0, leaving validation_idx == 1.
        let e0 = claim(&scheduler);
        let e1 = claim(&scheduler);
        assert_eq!(e0, Task::execution(Version::new(0, 0)));
        assert_eq!(e1, Task::execution(Version::new(1, 0)));
        // txn 1: validation cursor (1) is not strictly above it, so nothing is handed
        // back — its validation will be claimed through next_task later.
        assert_eq!(scheduler.finish_execution(1, 0, false), None);
        // txn 0: the validation cursor already ran past it and no new location was
        // written, so its validation task is handed straight back to the caller
        // (case 1(b) of the paper), stamped with the current wave (0).
        let handed_back = scheduler.finish_execution(0, 0, false);
        assert_eq!(handed_back, Some(Task::validation(Version::new(0, 0), 0)));
        assert_eq!(pass_validation(&scheduler, handed_back.unwrap()), None);
        assert_eq!(scheduler.committed_prefix(), 1);
        // The remaining validation (txn 1) is claimed through the shared cursor.
        let v1 = claim(&scheduler);
        assert_eq!(v1, Task::validation(Version::new(1, 0), 0));
        assert_eq!(pass_validation(&scheduler, v1), None);
        assert!(scheduler.done(), "last commit raises the done marker");
        assert_eq!(scheduler.committed_prefix(), 2);
    }

    #[test]
    fn wrote_new_path_hands_back_validation_and_sweeps_suffix() {
        let scheduler = Scheduler::new(3);
        let executions: Vec<Task> = (0..3).map(|_| claim(&scheduler)).collect();
        assert!(executions.iter().all(|task| task.is_execution()));
        // All three claimed: the validation cursor sits at 2 (it skipped 0 and 1).
        // txn 0 wrote a new location: its own validation is handed back on the new
        // wave and the cursor is lowered to 1 for the suffix.
        let handed_back = scheduler.finish_execution(0, 0, true).unwrap();
        assert_eq!(handed_back, Task::validation(Version::new(0, 0), 1));
        assert_eq!(scheduler.validation_cursor(), (1, 1));
        scheduler.finish_execution(1, 0, false);
        scheduler.finish_execution(2, 0, false);
        assert_eq!(pass_validation(&scheduler, handed_back), None);
        // Suffix validations are claimed on wave 1.
        let v1 = claim(&scheduler);
        assert_eq!(v1, Task::validation(Version::new(1, 0), 1));
        let v2 = claim(&scheduler);
        assert_eq!(v2, Task::validation(Version::new(2, 0), 1));
        pass_validation(&scheduler, v1);
        pass_validation(&scheduler, v2);
        assert!(scheduler.done());
        assert_eq!(scheduler.committed_prefix(), 3);
    }

    #[test]
    fn failed_validation_returns_re_execution_task_and_bumps_incarnation() {
        let scheduler = Scheduler::new(3);
        // Claim all executions first (so no validation task interleaves), then finish
        // them without new paths so no validation is handed back for txns 1 and 2.
        let executions: Vec<Task> = (0..3).map(|_| claim(&scheduler)).collect();
        assert!(executions.iter().all(|task| task.is_execution()));
        let v0 = scheduler.finish_execution(0, 0, false).unwrap();
        assert_eq!(v0, Task::validation(Version::new(0, 0), 0));
        // The cursor (at 2) ran past txn 1 as well: its validation comes back too.
        let _v1 = scheduler.finish_execution(1, 0, false).unwrap();
        assert_eq!(scheduler.finish_execution(2, 0, false), None);
        // The handed-back validation of txn 0 fails.
        assert!(scheduler.try_validation_abort(0, 0));
        // Second abort attempt for the same incarnation must fail.
        assert!(!scheduler.try_validation_abort(0, 0));
        let followup = scheduler.finish_validation(0, 0, v0.wave, true).unwrap();
        assert_eq!(followup, Task::execution(Version::new(0, 1)));
        assert_eq!(scheduler.incarnation_of(0), 1);
        assert_eq!(scheduler.status_of(0), TxnStatus::Executing);
    }

    #[test]
    fn failed_validation_schedules_revalidation_of_higher_transactions() {
        let scheduler = Scheduler::new(3);
        let executions: Vec<Task> = (0..3).map(|_| claim(&scheduler)).collect();
        assert!(executions.iter().all(|task| task.is_execution()));
        let v0 = scheduler.finish_execution(0, 0, false).unwrap();
        // The validation cursor (at 2) already ran past txn 1 too, so its validation
        // is handed back as well; txn 2's is claimed through the cursor.
        let v1 = scheduler.finish_execution(1, 0, false).unwrap();
        assert_eq!(v1, Task::validation(Version::new(1, 0), 0));
        assert_eq!(scheduler.finish_execution(2, 0, false), None);
        let v2 = claim(&scheduler);
        assert_eq!(v2, Task::validation(Version::new(2, 0), 0));
        // txn 1's validation fails.
        assert!(scheduler.try_validation_abort(1, 0));
        let reexec = scheduler
            .finish_validation(1, 0, v1.wave, true)
            .expect("re-execution comes straight back");
        assert_eq!(reexec, Task::execution(Version::new(1, 1)));
        // The abort lowered the validation cursor to 2 on a fresh wave.
        assert_eq!(scheduler.validation_cursor(), (2, 1));
        // The other validations pass (txn 2's is now stale in wave terms).
        assert_eq!(pass_validation(&scheduler, v0), None);
        assert_eq!(pass_validation(&scheduler, v2), None);
        assert_eq!(scheduler.committed_prefix(), 1, "only txn 0 commits so far");
        // txn 1 re-executes without a new path: its validation is handed back on the
        // current wave.
        let v1_again = scheduler
            .finish_execution(1, 1, false)
            .expect("validation task should be returned to the caller");
        assert_eq!(v1_again, Task::validation(Version::new(1, 1), 1));
        assert_eq!(pass_validation(&scheduler, v1_again), None);
        assert_eq!(scheduler.committed_prefix(), 2);
        // txn 2 must re-validate on wave 1 before it can commit: the wave-0 pass
        // recorded above is too old (a fresh sweep covers it).
        let v2_again = claim(&scheduler);
        assert_eq!(v2_again, Task::validation(Version::new(2, 0), 1));
        assert_eq!(pass_validation(&scheduler, v2_again), None);
        assert!(scheduler.done());
        assert_eq!(scheduler.committed_prefix(), 3);
    }

    #[test]
    fn stale_wave_validation_does_not_commit() {
        // The commit ladder's freshness rule in isolation: a passing validation from
        // an old wave must not commit a transaction a newer sweep has reached.
        let scheduler = Scheduler::new(2);
        let _e0 = claim(&scheduler);
        let _e1 = claim(&scheduler);
        let v0 = scheduler.finish_execution(0, 0, false).unwrap();
        scheduler.finish_execution(1, 0, false);
        pass_validation(&scheduler, v0);
        assert_eq!(scheduler.committed_prefix(), 1);
        // txn 1's validation is claimed on wave 0 ...
        let v1 = claim(&scheduler);
        assert_eq!(v1, Task::validation(Version::new(1, 0), 0));
        // ... but before it reports, something lowers the cursor (as a lower txn's
        // re-execution with a new write path would).
        assert_eq!(scheduler.decrease_validation_idx(1), 1);
        // The wave-0 pass is recorded but does not commit: max_triggered_wave will
        // reach 1 when the new sweep claims txn 1.
        let v1_swept = claim(&scheduler);
        assert_eq!(v1_swept, Task::validation(Version::new(1, 0), 1));
        pass_validation(&scheduler, v1);
        assert_eq!(
            scheduler.committed_prefix(),
            1,
            "wave-0 validation is stale once the wave-1 sweep claimed the txn"
        );
        assert!(!scheduler.done());
        // The fresh validation commits it.
        pass_validation(&scheduler, v1_swept);
        assert_eq!(scheduler.committed_prefix(), 2);
        assert!(scheduler.done());
    }

    #[test]
    fn committed_transactions_are_exempt_from_revalidation_and_abort() {
        let scheduler = Scheduler::new(2);
        let _e0 = claim(&scheduler);
        let _e1 = claim(&scheduler);
        let v0 = scheduler.finish_execution(0, 0, false).unwrap();
        scheduler.finish_execution(1, 0, false);
        pass_validation(&scheduler, v0);
        assert_eq!(scheduler.status_of(0), TxnStatus::Committed);
        // A stale validation of the committed incarnation can neither abort it ...
        assert!(!scheduler.try_validation_abort(0, 0));
        // ... nor is it ever claimed again: lowering the cursor to 0 sweeps over the
        // committed transaction without producing a task for it.
        scheduler.decrease_validation_idx(0);
        let swept = claim(&scheduler);
        assert_eq!(
            swept.version.txn_idx, 1,
            "the sweep skips the committed transaction"
        );
        assert_eq!(scheduler.status_of(0), TxnStatus::Committed);
    }

    #[test]
    fn closed_commit_gate_freezes_ladder_and_done_marker() {
        let scheduler = Scheduler::new(2);
        scheduler.set_commit_gate(false);
        assert!(!scheduler.commit_gate_open());
        let _e0 = claim(&scheduler);
        let _e1 = claim(&scheduler);
        assert_eq!(scheduler.finish_execution(1, 0, false), None);
        let v0 = scheduler.finish_execution(0, 0, false).unwrap();
        pass_validation(&scheduler, v0);
        let v1 = claim(&scheduler);
        pass_validation(&scheduler, v1);
        // Fully executed and validated, but the gate holds everything back:
        // nothing commits and the done marker stays down (chained workers must
        // keep serving this block's tasks).
        assert_eq!(scheduler.committed_prefix(), 0);
        assert!(!scheduler.done());
        assert_eq!(scheduler.status_of(0), TxnStatus::Validated);
        // Opening the gate re-attempts the ladder: the validated prefix commits
        // without any further validation event.
        scheduler.set_commit_gate(true);
        assert_eq!(scheduler.committed_prefix(), 2);
        assert!(scheduler.done());
    }

    #[test]
    fn gate_open_after_full_revalidation_rejects_stale_validations() {
        // The chain protocol: sweep *then* open. Validations that predate the
        // sweep must not commit, even though they passed.
        let scheduler = Scheduler::new(2);
        scheduler.set_commit_gate(false);
        let _e0 = claim(&scheduler);
        let _e1 = claim(&scheduler);
        assert_eq!(scheduler.finish_execution(1, 0, false), None);
        let v0 = scheduler.finish_execution(0, 0, false).unwrap();
        pass_validation(&scheduler, v0);
        let v1 = claim(&scheduler);
        pass_validation(&scheduler, v1);
        // Frontier froze: start the mandatory fresh wave, then open the gate.
        let wave = scheduler.trigger_full_revalidation();
        assert!(wave >= 1);
        scheduler.set_commit_gate(true);
        assert_eq!(
            scheduler.committed_prefix(),
            0,
            "wave-stale validations must not commit after the sweep"
        );
        // Only validations claimed at (or after) the sweep's wave commit.
        let v0_fresh = claim(&scheduler);
        assert_eq!(v0_fresh, Task::validation(Version::new(0, 0), wave));
        pass_validation(&scheduler, v0_fresh);
        assert_eq!(scheduler.committed_prefix(), 1);
        let v1_fresh = claim(&scheduler);
        assert_eq!(v1_fresh, Task::validation(Version::new(1, 0), wave));
        pass_validation(&scheduler, v1_fresh);
        assert_eq!(scheduler.committed_prefix(), 2);
        assert!(scheduler.done());
    }

    #[test]
    fn reset_reopens_the_commit_gate() {
        let mut scheduler = Scheduler::new(1);
        scheduler.set_commit_gate(false);
        scheduler.reset(1);
        assert!(scheduler.commit_gate_open());
    }

    #[test]
    fn add_dependency_registers_and_resumes() {
        let scheduler = Scheduler::new(3);
        let e0 = claim(&scheduler);
        let e1 = claim(&scheduler);
        let e2 = claim(&scheduler);
        assert!(e0.is_execution() && e1.is_execution() && e2.is_execution());
        // txn2 discovers a dependency on txn0 (still executing): must register.
        assert!(scheduler.add_dependency(2, 0));
        assert_eq!(scheduler.status_of(2), TxnStatus::Aborting);
        // txn0 finishes: txn2 must be resumed with incarnation 1. txn0's own
        // (re-)validation comes straight back because the cursor had run past it.
        let v0 = scheduler
            .finish_execution(0, 0, true)
            .expect("validation handed back");
        assert_eq!(scheduler.status_of(2), TxnStatus::ReadyToExecute);
        assert_eq!(scheduler.incarnation_of(2), 1);
        // txn1 finishes too (the cursor was lowered to 1, so nothing is handed back).
        assert_eq!(scheduler.finish_execution(1, 0, true), None);
        // Remaining work completes: validations of 0 and 1, then execution of 2, etc.
        let mut pending: Option<Task> = Some(v0);
        let mut guard = 0;
        let mut executed_txn2_again = false;
        while !scheduler.done() {
            guard += 1;
            assert!(guard < 100);
            let task = pending.take().or_else(|| scheduler.next_task());
            let Some(task) = task else { continue };
            match task.kind {
                TaskKind::Execution => {
                    if task.version.txn_idx == 2 {
                        executed_txn2_again = true;
                        assert_eq!(task.version.incarnation, 1);
                    }
                    pending = scheduler.finish_execution(
                        task.version.txn_idx,
                        task.version.incarnation,
                        false,
                    );
                }
                TaskKind::Validation => {
                    pending = pass_validation(&scheduler, task);
                }
            }
        }
        assert!(executed_txn2_again);
        assert_eq!(scheduler.committed_prefix(), 3);
    }

    #[test]
    fn add_dependency_refuses_committed_blockers() {
        // Regression: a committed blocker never calls finish_execution again, so
        // registering a dependency on it would park the caller forever. The §3.3
        // race check must treat Committed (not just Executed/Validated) as
        // "writes are in place — re-execute immediately".
        let scheduler = Scheduler::new(2);
        let _e0 = claim(&scheduler);
        let e1 = claim(&scheduler);
        assert_eq!(e1, Task::execution(Version::new(1, 0)));
        // txn 0 executes, validates and commits while txn 1 is still executing.
        let v0 = scheduler.finish_execution(0, 0, false).unwrap();
        pass_validation(&scheduler, v0);
        assert_eq!(scheduler.status_of(0), TxnStatus::Committed);
        // txn 1 read txn 0's ESTIMATE earlier and only now reports the dependency:
        // it must be refused (caller re-executes), not registered.
        assert!(!scheduler.add_dependency(1, 0));
        assert_eq!(scheduler.status_of(1), TxnStatus::Executing);
        scheduler.finish_execution(1, 0, false);
    }

    #[test]
    fn add_dependency_detects_race_with_finished_blocking_txn() {
        let scheduler = Scheduler::new(2);
        let e0 = claim(&scheduler);
        let e1 = claim(&scheduler);
        assert!(e0.is_execution() && e1.is_execution());
        // txn0 finishes before txn1 can register its dependency.
        scheduler.finish_execution(0, 0, true);
        assert!(!scheduler.add_dependency(1, 0));
        // txn1 is still executing and can finish normally.
        assert_eq!(scheduler.status_of(1), TxnStatus::Executing);
        scheduler.finish_execution(1, 0, true);
    }

    #[test]
    fn dependency_wake_cycles_reuse_the_drained_vector() {
        // Satellite: resume_dependencies/add_dependency must not allocate a fresh
        // Vec per wake cycle in steady state. The drained buffer is handed back to
        // its slot after the wake, so after the first cycle the capacity is stable
        // and non-zero across arbitrarily many cycles (and survives reset()).
        let mut scheduler = Scheduler::new(2);
        assert_eq!(scheduler.dependency_capacity(0), 0);
        let mut stable_capacity = None;
        for cycle in 0..50 {
            let e0 = claim(&scheduler);
            assert_eq!(e0.version.txn_idx, 0, "cycle {cycle}");
            let e1 = claim(&scheduler);
            assert_eq!(e1.version.txn_idx, 1, "cycle {cycle}");
            assert!(scheduler.add_dependency(1, 0));
            // Waking txn 1 drains the dependency list and must return the buffer.
            let followup = scheduler.finish_execution(0, 0, true);
            let capacity = scheduler.dependency_capacity(0);
            assert!(capacity > 0, "buffer was not returned on cycle {cycle}");
            match stable_capacity {
                None => stable_capacity = Some(capacity),
                Some(expected) => assert_eq!(
                    capacity, expected,
                    "steady-state capacity changed on cycle {cycle}"
                ),
            }
            // Unwind the block: validate txn 0, execute + validate txn 1, then
            // reset for the next cycle.
            let mut pending = followup;
            let mut guard = 0;
            while !scheduler.done() {
                guard += 1;
                assert!(guard < 100);
                let Some(task) = pending.take().or_else(|| scheduler.next_task()) else {
                    continue;
                };
                pending = match task.kind {
                    TaskKind::Execution => scheduler.finish_execution(
                        task.version.txn_idx,
                        task.version.incarnation,
                        false,
                    ),
                    TaskKind::Validation => pass_validation(&scheduler, task),
                };
            }
            scheduler.reset(2);
            // reset() clears the lists but keeps their buffers.
            assert_eq!(
                scheduler.dependency_capacity(0),
                stable_capacity.unwrap(),
                "reset dropped the dependency buffer on cycle {cycle}"
            );
        }
    }

    #[test]
    fn try_validation_abort_rejects_stale_incarnations() {
        let scheduler = Scheduler::new(1);
        let e0 = claim(&scheduler);
        assert!(e0.is_execution());
        scheduler.finish_execution(0, 0, true);
        // Wrong incarnation number: no abort.
        assert!(!scheduler.try_validation_abort(0, 1));
        // Correct incarnation: abort succeeds exactly once.
        assert!(scheduler.try_validation_abort(0, 0));
        assert!(!scheduler.try_validation_abort(0, 0));
    }

    #[test]
    fn without_task_return_optimization_still_completes() {
        let n = 5;
        let scheduler = Scheduler::with_options(
            n,
            SchedulerOptions {
                task_return_optimization: false,
                ..SchedulerOptions::default()
            },
        );
        let mut executed = vec![0usize; n];
        let mut steps = 0;
        while !scheduler.done() {
            steps += 1;
            assert!(steps < 10_000);
            let Some(task) = scheduler.next_task() else {
                continue;
            };
            match task.kind {
                TaskKind::Execution => {
                    executed[task.version.txn_idx] += 1;
                    let followup = scheduler.finish_execution(
                        task.version.txn_idx,
                        task.version.incarnation,
                        false,
                    );
                    assert!(followup.is_none(), "optimization disabled: no direct tasks");
                }
                TaskKind::Validation => {
                    let followup = pass_validation(&scheduler, task);
                    assert!(followup.is_none());
                }
            }
        }
        assert!(executed.iter().all(|&count| count == 1));
        assert_eq!(scheduler.committed_prefix(), n);
    }

    #[test]
    fn rolling_commit_disabled_restores_double_collect_termination() {
        let n = 6;
        let scheduler = Scheduler::with_options(
            n,
            SchedulerOptions {
                rolling_commit: false,
                ..SchedulerOptions::default()
            },
        );
        assert!(!scheduler.rolling_commit_enabled());
        let executed = drive_to_completion(&scheduler);
        assert!(executed.iter().all(|&count| count == 1));
        // Without the ladder nothing commits; termination came from the legacy
        // double-collect and every transaction parks at Validated.
        assert_eq!(scheduler.committed_prefix(), 0);
        assert!(scheduler.cursors_exhausted());
        for txn_idx in 0..n {
            assert_eq!(scheduler.status_of(txn_idx), TxnStatus::Validated);
        }
    }

    #[test]
    fn multithreaded_happy_path_executes_every_txn_exactly_once() {
        let n = 200;
        let scheduler = Arc::new(Scheduler::new(n));
        let executions = Arc::new(Mutex::new(HashMap::<usize, usize>::new()));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let scheduler = Arc::clone(&scheduler);
                let executions = Arc::clone(&executions);
                std::thread::spawn(move || {
                    let mut task: Option<Task> = None;
                    while !scheduler.done() {
                        match task.take() {
                            Some(t) if t.is_execution() => {
                                *executions.lock().entry(t.version.txn_idx).or_insert(0) += 1;
                                task = scheduler.finish_execution(
                                    t.version.txn_idx,
                                    t.version.incarnation,
                                    false,
                                );
                            }
                            Some(t) => {
                                task = scheduler.finish_validation(
                                    t.version.txn_idx,
                                    t.version.incarnation,
                                    t.wave,
                                    false,
                                );
                            }
                            None => {
                                task = scheduler.next_task();
                                if task.is_none() {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                    // Drain a task claimed right before the done marker rose, so the
                    // active-task accounting balances.
                    if let Some(t) = task {
                        if t.is_validation() {
                            scheduler.finish_validation(
                                t.version.txn_idx,
                                t.version.incarnation,
                                t.wave,
                                false,
                            );
                        }
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        let executions = executions.lock();
        assert_eq!(executions.len(), n);
        assert!(executions.values().all(|&count| count == 1));
        assert_eq!(scheduler.active_tasks(), 0);
        assert_eq!(scheduler.committed_prefix(), n);
    }

    #[test]
    fn status_walks_the_lattice_through_the_public_api() {
        // Drive one transaction through the full lifecycle using only scheduler
        // entry points, asserting the observable status after each step:
        // READY_TO_EXECUTE(0) -> EXECUTING(0) -> EXECUTED(0) -> ABORTING(0)
        // -> READY_TO_EXECUTE(1) -> EXECUTING(1) -> EXECUTED(1) -> VALIDATED(1)
        // -> COMMITTED(1).
        let scheduler = Scheduler::new(1);
        assert_eq!(scheduler.status_of(0), TxnStatus::ReadyToExecute);
        assert_eq!(scheduler.incarnation_of(0), 0);

        let task = claim(&scheduler);
        assert_eq!(task, Task::execution(Version::new(0, 0)));
        assert_eq!(scheduler.status_of(0), TxnStatus::Executing);

        assert!(scheduler.finish_execution(0, 0, true).is_none());
        assert_eq!(scheduler.status_of(0), TxnStatus::Executed);

        // Its validation is claimed through the cursor and fails: only the first
        // abort claim for the incarnation wins.
        let v0 = claim(&scheduler);
        assert_eq!(v0, Task::validation(Version::new(0, 0), 0));
        assert!(scheduler.try_validation_abort(0, 0));
        assert_eq!(scheduler.status_of(0), TxnStatus::Aborting);
        assert!(
            !scheduler.try_validation_abort(0, 0),
            "an incarnation can only be aborted once"
        );

        // finish_validation schedules the re-execution; with the task-return
        // optimization the next incarnation comes straight back.
        let requeued = scheduler.finish_validation(0, 0, v0.wave, true);
        assert_eq!(requeued, Some(Task::execution(Version::new(0, 1))));
        assert_eq!(scheduler.incarnation_of(0), 1);
        assert_eq!(scheduler.status_of(0), TxnStatus::Executing);

        // The second incarnation executes, validates and commits. The validation
        // cursor already ran past the transaction, so its re-validation is handed
        // straight back.
        let v = scheduler
            .finish_execution(0, 1, false)
            .expect("validation handed back");
        assert_eq!(scheduler.status_of(0), TxnStatus::Executed);
        assert_eq!(v, Task::validation(Version::new(0, 1), 0));
        pass_validation(&scheduler, v);
        assert_eq!(scheduler.status_of(0), TxnStatus::Committed);
        assert!(scheduler.done());
    }

    #[test]
    fn add_dependency_aborts_executing_txn_until_blocker_finishes() {
        let scheduler = Scheduler::new(3);
        let e0 = claim(&scheduler);
        let e1 = claim(&scheduler);
        assert_eq!(e0, Task::execution(Version::new(0, 0)));
        assert_eq!(e1, Task::execution(Version::new(1, 0)));

        // txn 1 read an ESTIMATE of txn 0: it suspends (EXECUTING -> ABORTING).
        assert!(scheduler.add_dependency(1, 0));
        assert_eq!(scheduler.status_of(1), TxnStatus::Aborting);

        // When txn 0 finishes, txn 1 is resumed as READY_TO_EXECUTE(1).
        scheduler.finish_execution(0, 0, true);
        assert_eq!(scheduler.status_of(1), TxnStatus::ReadyToExecute);
        assert_eq!(scheduler.incarnation_of(1), 1);

        // Once the blocker has already executed, add_dependency refuses and
        // the caller re-executes immediately (the §3.3 race). Pending
        // validations come first (the cursor prefers the lowest index); drain
        // them until txn 1's re-execution is handed out.
        let e1_again = loop {
            let task = claim(&scheduler);
            match task.kind {
                TaskKind::Validation => {
                    pass_validation(&scheduler, task);
                }
                TaskKind::Execution => break task,
            }
        };
        assert_eq!(e1_again, Task::execution(Version::new(1, 1)));
        assert!(!scheduler.add_dependency(1, 0));
        assert_eq!(scheduler.status_of(1), TxnStatus::Executing);
    }

    /// Drives a scheduler to completion single-threaded, counting executions.
    fn drive_to_completion(scheduler: &Scheduler) -> Vec<usize> {
        let mut executed = vec![0usize; scheduler.block_size()];
        let mut pending: Option<Task> = None;
        let mut steps = 0;
        while !scheduler.done() {
            steps += 1;
            assert!(steps < 10_000, "scheduler did not terminate");
            let Some(task) = pending.take().or_else(|| scheduler.next_task()) else {
                continue;
            };
            pending = match task.kind {
                TaskKind::Execution => {
                    executed[task.version.txn_idx] += 1;
                    scheduler.finish_execution(task.version.txn_idx, task.version.incarnation, true)
                }
                TaskKind::Validation => scheduler.finish_validation(
                    task.version.txn_idx,
                    task.version.incarnation,
                    task.wave,
                    false,
                ),
            };
        }
        executed
    }

    #[test]
    fn check_done_and_commit_ladder_agree_on_termination() {
        // Satellite: with the ladder on, the done marker must rise exactly when the
        // committed prefix covers the block — and at that point the legacy
        // double-collect condition holds as well (single-threaded, so no task can
        // be in flight when the ladder finishes).
        for n in [1usize, 2, 5, 17] {
            let scheduler = Scheduler::new(n);
            assert!(scheduler.rolling_commit_enabled(), "ladder is the default");
            assert!(!scheduler.cursors_exhausted());
            drive_to_completion(&scheduler);
            assert!(scheduler.done());
            assert_eq!(scheduler.committed_prefix(), n);
            assert!(
                scheduler.cursors_exhausted(),
                "ladder termination implies the double-collect condition (n = {n})"
            );
            assert!(!scheduler.halted());
        }
    }

    #[test]
    fn reset_rearms_for_a_new_block_reusing_arrays() {
        let mut scheduler = Scheduler::new(3);
        let executed = drive_to_completion(&scheduler);
        assert!(executed.iter().all(|&count| count == 1));
        assert!(scheduler.done());
        assert_eq!(scheduler.committed_prefix(), 3);

        // Same size: statuses, cursors, commit ladder and the done marker all re-arm.
        scheduler.reset(3);
        assert!(!scheduler.done());
        assert_eq!(scheduler.active_tasks(), 0);
        assert_eq!(scheduler.committed_prefix(), 0);
        for txn_idx in 0..3 {
            assert_eq!(scheduler.status_of(txn_idx), TxnStatus::ReadyToExecute);
            assert_eq!(scheduler.incarnation_of(txn_idx), 0);
        }
        let executed = drive_to_completion(&scheduler);
        assert!(executed.iter().all(|&count| count == 1));

        // Growing and shrinking across resets works too.
        scheduler.reset(7);
        assert_eq!(scheduler.block_size(), 7);
        assert_eq!(drive_to_completion(&scheduler).len(), 7);
        assert_eq!(scheduler.committed_prefix(), 7);
        scheduler.reset(1);
        assert_eq!(scheduler.block_size(), 1);
        assert_eq!(drive_to_completion(&scheduler), vec![1]);
    }

    #[test]
    fn reset_preserves_options() {
        let mut scheduler = Scheduler::with_options(
            2,
            SchedulerOptions {
                task_return_optimization: false,
                ..SchedulerOptions::default()
            },
        );
        scheduler.reset(2);
        // With the optimization disabled, a failed validation never hands the
        // re-execution straight back.
        let executions: Vec<Task> = (0..2).map(|_| claim(&scheduler)).collect();
        for task in &executions {
            scheduler.finish_execution(task.version.txn_idx, 0, true);
        }
        let v0 = claim(&scheduler);
        assert_eq!(v0.version, Version::new(0, 0));
        assert!(scheduler.try_validation_abort(0, 0));
        assert_eq!(scheduler.finish_validation(0, 0, v0.wave, true), None);
    }

    #[test]
    fn halt_releases_the_run_loop_and_freezes_the_ladder() {
        let scheduler = Scheduler::new(100);
        let _claimed = claim(&scheduler);
        assert!(!scheduler.done());
        scheduler.halt();
        assert!(scheduler.done());
        assert!(scheduler.halted());
        // The committed prefix stays where the halt found it.
        assert_eq!(scheduler.committed_prefix(), 0);
        // After a reset, the scheduler is fully usable again.
        let mut scheduler = scheduler;
        scheduler.reset(2);
        assert!(!scheduler.done());
        assert!(!scheduler.halted());
        assert!(drive_to_completion(&scheduler).iter().all(|&c| c == 1));
    }

    #[test]
    fn halt_mid_block_keeps_the_committed_prefix() {
        let scheduler = Scheduler::new(3);
        let _e0 = claim(&scheduler);
        let _e1 = claim(&scheduler);
        let v0 = scheduler.finish_execution(0, 0, false).unwrap();
        pass_validation(&scheduler, v0);
        assert_eq!(scheduler.committed_prefix(), 1);
        scheduler.halt();
        assert!(scheduler.done());
        // Committed prefix survives the halt; nothing further commits.
        assert_eq!(scheduler.committed_prefix(), 1);
        assert_eq!(scheduler.status_of(0), TxnStatus::Committed);
    }

    #[test]
    fn multithreaded_with_random_aborts_commits_every_txn() {
        // Validations randomly abort (once per incarnation, bounded by a per-txn cap)
        // to exercise the re-execution, re-validation and commit-ladder paths under
        // concurrency.
        let n = 120;
        let scheduler = Arc::new(Scheduler::new(n));
        let abort_budget: Arc<Vec<PaddedAtomicUsize>> =
            Arc::new((0..n).map(|_| PaddedAtomicUsize::new(2)).collect());
        let threads: Vec<_> = (0..8)
            .map(|seed| {
                let scheduler = Arc::clone(&scheduler);
                let abort_budget = Arc::clone(&abort_budget);
                std::thread::spawn(move || {
                    let mut rng_state: u64 = 0x1234_5678 + seed as u64;
                    let mut task: Option<Task> = None;
                    while !scheduler.done() {
                        match task.take() {
                            Some(t) if t.is_execution() => {
                                task = scheduler.finish_execution(
                                    t.version.txn_idx,
                                    t.version.incarnation,
                                    (t.version.txn_idx + t.version.incarnation) % 3 == 0,
                                );
                            }
                            Some(t) => {
                                rng_state ^= rng_state << 13;
                                rng_state ^= rng_state >> 7;
                                rng_state ^= rng_state << 17;
                                let idx = t.version.txn_idx;
                                let want_abort =
                                    rng_state.is_multiple_of(4) && abort_budget[idx].load() > 0;
                                let aborted = want_abort
                                    && scheduler.try_validation_abort(idx, t.version.incarnation);
                                if aborted {
                                    abort_budget[idx].decrement();
                                }
                                task = scheduler.finish_validation(
                                    idx,
                                    t.version.incarnation,
                                    t.wave,
                                    aborted,
                                );
                            }
                            None => {
                                task = scheduler.next_task();
                                if task.is_none() {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        assert!(scheduler.done());
        assert_eq!(scheduler.committed_prefix(), n);
        // Every transaction must have finished in the COMMITTED state.
        for txn_idx in 0..n {
            assert_eq!(scheduler.status_of(txn_idx), TxnStatus::Committed);
        }
    }

    #[test]
    fn initial_order_dispenses_executions_in_hinted_order() {
        let mut scheduler = Scheduler::new(4);
        scheduler.set_initial_order(vec![2, 0, 3, 1]);
        let claimed: Vec<usize> = (0..4).map(|_| claim(&scheduler).version.txn_idx).collect();
        assert_eq!(claimed, vec![2, 0, 3, 1]);
    }

    #[test]
    fn initial_order_block_completes_and_commits_in_preset_order() {
        // Run the single-threaded drive loop under a reversed initial order:
        // the block must still commit 0..n in preset order.
        let n = 6;
        let mut scheduler = Scheduler::new(n);
        scheduler.set_initial_order((0..n).rev().collect());
        let executed = drive_to_completion(&scheduler);
        assert!(executed.iter().all(|&count| count == 1));
        assert_eq!(scheduler.committed_prefix(), n);
        for txn_idx in 0..n {
            assert_eq!(scheduler.status_of(txn_idx), TxnStatus::Committed);
        }
    }

    #[test]
    fn reset_clears_the_initial_order() {
        let mut scheduler = Scheduler::new(3);
        scheduler.set_initial_order(vec![2, 1, 0]);
        scheduler.reset(3);
        let claimed: Vec<usize> = (0..3).map(|_| claim(&scheduler).version.txn_idx).collect();
        assert_eq!(claimed, vec![0, 1, 2], "reset restores index order");
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn initial_order_rejects_non_permutations() {
        let mut scheduler = Scheduler::new(3);
        scheduler.set_initial_order(vec![0, 0, 1]);
    }

    #[test]
    fn preregistered_dependency_parks_until_blocker_finishes() {
        let mut scheduler = Scheduler::new(3);
        assert!(scheduler.preregister_dependency(2, 0));
        // Only one pre-dependency per transaction: the second refuses.
        assert!(!scheduler.preregister_dependency(2, 1));
        // txn 2 is parked: the dispenser skips it (claims 0 then 1, never 2).
        let e0 = claim(&scheduler);
        let e1 = claim(&scheduler);
        assert_eq!(e0.version.txn_idx, 0);
        assert_eq!(e1.version.txn_idx, 1);
        assert_eq!(scheduler.status_of(2), TxnStatus::Aborting);
        // The blocker finishing execution wakes txn 2 through the ordinary
        // resume path, at incarnation 1.
        scheduler.finish_execution(0, 0, false);
        assert_eq!(scheduler.status_of(2), TxnStatus::ReadyToExecute);
        assert_eq!(scheduler.incarnation_of(2), 1);
        let woken = claim(&scheduler);
        assert!(woken.is_execution());
        assert_eq!(woken.version, Version::new(2, 1));
    }

    #[test]
    fn preregistration_composes_with_initial_order_under_concurrency() {
        // A dependency chain pre-registered on top of a reversed initial order,
        // driven by 4 threads: every transaction still commits exactly once in
        // preset order. This is the hinted configuration the core engine uses.
        let n = 64;
        let mut scheduler = Scheduler::new(n);
        scheduler.set_initial_order((0..n).rev().collect());
        for txn_idx in (1..n).step_by(2) {
            assert!(scheduler.preregister_dependency(txn_idx, txn_idx - 1));
        }
        let scheduler = Arc::new(scheduler);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let scheduler = Arc::clone(&scheduler);
                std::thread::spawn(move || {
                    let mut task: Option<Task> = None;
                    while !scheduler.done() {
                        match task.take() {
                            Some(t) if t.is_execution() => {
                                task = scheduler.finish_execution(
                                    t.version.txn_idx,
                                    t.version.incarnation,
                                    false,
                                );
                            }
                            Some(t) => {
                                task = scheduler.finish_validation(
                                    t.version.txn_idx,
                                    t.version.incarnation,
                                    t.wave,
                                    false,
                                );
                            }
                            None => {
                                task = scheduler.next_task();
                                if task.is_none() {
                                    std::hint::spin_loop();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        assert_eq!(scheduler.committed_prefix(), n);
        for txn_idx in 0..n {
            assert_eq!(scheduler.status_of(txn_idx), TxnStatus::Committed);
        }
    }
}
