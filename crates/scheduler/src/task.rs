//! Scheduler task descriptors.

use block_stm_vm::Version;

/// Monotone counter of validation-cursor decreases ("waves"). Every time the
/// validation cursor is lowered, the wave increments; a validation task carries the
/// wave it was claimed (or handed back) at, and the commit ladder only commits a
/// transaction whose latest incarnation was validated at a sufficiently recent wave.
pub type Wave = usize;

/// What kind of work a [`Task`] asks a thread to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Execute the incarnation identified by the task's version.
    Execution,
    /// Validate the (already executed) incarnation identified by the task's version.
    Validation,
}

/// A unit of work handed to a worker thread by the scheduler: execute or validate a
/// specific incarnation of a specific transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Which incarnation of which transaction.
    pub version: Version,
    /// Execute or validate.
    pub kind: TaskKind,
    /// The validation wave this task was issued at (always `0` for executions).
    /// Passed back to [`finish_validation`](crate::Scheduler::finish_validation) so
    /// the commit ladder can tell fresh validations from stale ones.
    pub wave: Wave,
}

impl Task {
    /// Creates an execution task.
    pub fn execution(version: Version) -> Self {
        Self {
            version,
            kind: TaskKind::Execution,
            wave: 0,
        }
    }

    /// Creates a validation task issued at `wave`.
    pub fn validation(version: Version, wave: Wave) -> Self {
        Self {
            version,
            kind: TaskKind::Validation,
            wave,
        }
    }

    /// Returns `true` if this is an execution task.
    pub fn is_execution(&self) -> bool {
        self.kind == TaskKind::Execution
    }

    /// Returns `true` if this is a validation task.
    pub fn is_validation(&self) -> bool {
        self.kind == TaskKind::Validation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind_and_wave() {
        let v = Version::new(3, 1);
        assert!(Task::execution(v).is_execution());
        assert!(!Task::execution(v).is_validation());
        assert_eq!(Task::execution(v).wave, 0);
        assert!(Task::validation(v, 2).is_validation());
        assert_eq!(Task::validation(v, 2).version, v);
        assert_eq!(Task::validation(v, 2).wave, 2);
    }
}
