//! Scheduler task descriptors.

use block_stm_vm::Version;

/// What kind of work a [`Task`] asks a thread to perform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskKind {
    /// Execute the incarnation identified by the task's version.
    Execution,
    /// Validate the (already executed) incarnation identified by the task's version.
    Validation,
}

/// A unit of work handed to a worker thread by the scheduler: execute or validate a
/// specific incarnation of a specific transaction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Task {
    /// Which incarnation of which transaction.
    pub version: Version,
    /// Execute or validate.
    pub kind: TaskKind,
}

impl Task {
    /// Creates an execution task.
    pub fn execution(version: Version) -> Self {
        Self {
            version,
            kind: TaskKind::Execution,
        }
    }

    /// Creates a validation task.
    pub fn validation(version: Version) -> Self {
        Self {
            version,
            kind: TaskKind::Validation,
        }
    }

    /// Returns `true` if this is an execution task.
    pub fn is_execution(&self) -> bool {
        self.kind == TaskKind::Execution
    }

    /// Returns `true` if this is a validation task.
    pub fn is_validation(&self) -> bool {
        self.kind == TaskKind::Validation
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_set_kind() {
        let v = Version::new(3, 1);
        assert!(Task::execution(v).is_execution());
        assert!(!Task::execution(v).is_validation());
        assert!(Task::validation(v).is_validation());
        assert_eq!(Task::validation(v).version, v);
    }
}
