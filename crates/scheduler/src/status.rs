//! Per-transaction incarnation status: the paper's Figure 2 lattice extended with
//! the commit ladder's `Validated` and `Committed` states.

/// The lifecycle status of a transaction's current incarnation.
///
/// Valid transitions (Figure 2 of the paper, plus the commit ladder):
///
/// ```text
/// READY_TO_EXECUTE(i) --try_incarnate--> EXECUTING(i)
/// EXECUTING(i) --finish_execution--> EXECUTED(i)
/// EXECUTING(i) --add_dependency--> ABORTING(i)        (read hit an ESTIMATE)
/// EXECUTED(i)  --finish_validation(pass)--> VALIDATED(i)
/// EXECUTED(i)  --try_validation_abort--> ABORTING(i)  (validation failed)
/// VALIDATED(i) --try_validation_abort--> ABORTING(i)  (later re-validation failed)
/// VALIDATED(i) --commit ladder--> COMMITTED(i)        (lowest uncommitted, wave ok)
/// ABORTING(i)  --set_ready_status/resume--> READY_TO_EXECUTE(i + 1)
/// ```
///
/// A status never returns to `READY_TO_EXECUTE(i)` for the same incarnation `i`, which
/// is what guarantees each incarnation is executed at most once (Corollary 1).
/// `COMMITTED` is terminal: once the rolling commit ladder commits a transaction it is
/// permanently exempt from re-validation and re-execution, and its multi-version
/// entries are final.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnStatus {
    /// The next incarnation is ready to be picked up by a thread.
    ReadyToExecute,
    /// Some thread is currently executing this incarnation.
    Executing,
    /// The incarnation finished executing and recorded its effects.
    Executed,
    /// A validation of this incarnation passed; the incarnation is committable once
    /// every lower transaction has committed (and its validation wave is recent
    /// enough — see the scheduler docs).
    Validated,
    /// The incarnation was committed by the rolling commit ladder. Terminal.
    Committed,
    /// The incarnation is being aborted (failed validation or hit a dependency);
    /// it will become `ReadyToExecute` for the next incarnation.
    Aborting,
}

impl TxnStatus {
    /// Returns `true` if the transition `self -> next` is allowed by the lattice.
    pub fn can_transition_to(&self, next: TxnStatus) -> bool {
        use TxnStatus::*;
        matches!(
            (self, next),
            (ReadyToExecute, Executing)
                | (Executing, Executed)
                | (Executing, Aborting)
                | (Executed, Validated)
                | (Executed, Aborting)
                | (Validated, Aborting)
                | (Validated, Committed)
                | (Aborting, ReadyToExecute)
        )
    }

    /// Returns `true` if a validation task may be claimed for (or abort) this status:
    /// the incarnation has executed and is not yet committed.
    pub fn is_validatable(&self) -> bool {
        matches!(self, TxnStatus::Executed | TxnStatus::Validated)
    }

    /// Returns `true` if the transaction's writes are currently in place in the
    /// multi-version memory: the incarnation executed (and possibly validated) or
    /// the transaction committed. A reader that hit this transaction's ESTIMATE can
    /// simply re-execute instead of registering a dependency — committed blockers in
    /// particular will never resume anyone again.
    pub fn writes_settled(&self) -> bool {
        matches!(
            self,
            TxnStatus::Executed | TxnStatus::Validated | TxnStatus::Committed
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TxnStatus::*;

    #[test]
    fn legal_transitions_follow_the_lattice() {
        assert!(ReadyToExecute.can_transition_to(Executing));
        assert!(Executing.can_transition_to(Executed));
        assert!(Executing.can_transition_to(Aborting));
        assert!(Executed.can_transition_to(Validated));
        assert!(Executed.can_transition_to(Aborting));
        assert!(Validated.can_transition_to(Aborting));
        assert!(Validated.can_transition_to(Committed));
        assert!(Aborting.can_transition_to(ReadyToExecute));
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        assert!(!ReadyToExecute.can_transition_to(Executed));
        assert!(!ReadyToExecute.can_transition_to(Aborting));
        assert!(!Executing.can_transition_to(ReadyToExecute));
        assert!(!Executing.can_transition_to(Validated));
        assert!(!Executed.can_transition_to(Executing));
        assert!(!Executed.can_transition_to(ReadyToExecute));
        assert!(
            !Executed.can_transition_to(Committed),
            "commit requires a passed validation"
        );
        assert!(!Aborting.can_transition_to(Executing));
        assert!(!Aborting.can_transition_to(Executed));
        // Committed is terminal.
        for next in [ReadyToExecute, Executing, Executed, Validated, Aborting] {
            assert!(!Committed.can_transition_to(next));
        }
        // Self transitions are never legal.
        for status in [
            ReadyToExecute,
            Executing,
            Executed,
            Validated,
            Committed,
            Aborting,
        ] {
            assert!(!status.can_transition_to(status));
        }
    }

    #[test]
    fn validatable_statuses() {
        assert!(Executed.is_validatable());
        assert!(Validated.is_validatable());
        for status in [ReadyToExecute, Executing, Committed, Aborting] {
            assert!(!status.is_validatable());
        }
    }
}
