//! Per-transaction incarnation status (Figure 2 of the paper).

/// The lifecycle status of a transaction's current incarnation.
///
/// Valid transitions (Figure 2):
///
/// ```text
/// READY_TO_EXECUTE(i) --try_incarnate--> EXECUTING(i)
/// EXECUTING(i) --finish_execution--> EXECUTED(i)
/// EXECUTING(i) --add_dependency--> ABORTING(i)        (read hit an ESTIMATE)
/// EXECUTED(i)  --try_validation_abort--> ABORTING(i)  (validation failed)
/// ABORTING(i)  --set_ready_status/resume--> READY_TO_EXECUTE(i + 1)
/// ```
///
/// A status never returns to `READY_TO_EXECUTE(i)` for the same incarnation `i`, which
/// is what guarantees each incarnation is executed at most once (Corollary 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TxnStatus {
    /// The next incarnation is ready to be picked up by a thread.
    ReadyToExecute,
    /// Some thread is currently executing this incarnation.
    Executing,
    /// The incarnation finished executing and recorded its effects.
    Executed,
    /// The incarnation is being aborted (failed validation or hit a dependency);
    /// it will become `ReadyToExecute` for the next incarnation.
    Aborting,
}

impl TxnStatus {
    /// Returns `true` if the transition `self -> next` is allowed by Figure 2.
    pub fn can_transition_to(&self, next: TxnStatus) -> bool {
        use TxnStatus::*;
        matches!(
            (self, next),
            (ReadyToExecute, Executing)
                | (Executing, Executed)
                | (Executing, Aborting)
                | (Executed, Aborting)
                | (Aborting, ReadyToExecute)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use TxnStatus::*;

    #[test]
    fn legal_transitions_follow_figure_2() {
        assert!(ReadyToExecute.can_transition_to(Executing));
        assert!(Executing.can_transition_to(Executed));
        assert!(Executing.can_transition_to(Aborting));
        assert!(Executed.can_transition_to(Aborting));
        assert!(Aborting.can_transition_to(ReadyToExecute));
    }

    #[test]
    fn illegal_transitions_are_rejected() {
        assert!(!ReadyToExecute.can_transition_to(Executed));
        assert!(!ReadyToExecute.can_transition_to(Aborting));
        assert!(!Executing.can_transition_to(ReadyToExecute));
        assert!(!Executed.can_transition_to(Executing));
        assert!(!Executed.can_transition_to(ReadyToExecute));
        assert!(!Aborting.can_transition_to(Executing));
        assert!(!Aborting.can_transition_to(Executed));
        // Self transitions are never legal.
        for status in [ReadyToExecute, Executing, Executed, Aborting] {
            assert!(!status.can_transition_to(status));
        }
    }
}
