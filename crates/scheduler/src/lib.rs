//! The Block-STM collaborative scheduler (Algorithms 4 and 5 of the paper) with a
//! **rolling commit ladder**.
//!
//! # Task dispensing (Algorithms 4–5)
//!
//! The scheduler coordinates execution and validation tasks among worker threads while
//! preserving the preset serialization order. Conceptually it maintains two ordered
//! sets — pending *executions* `E` and pending *validations* `V` — and always hands a
//! thread the task with the smallest transaction index. Because concurrent priority
//! queues are hard to scale, both ordered sets are realized as a single atomic counter
//! (`execution_idx` / `validation_idx`) combined with a per-transaction status array:
//! a thread claims an index with `fetch_and_increment` and then checks whether that
//! transaction actually has a ready task; adding a task for transaction `i` lowers the
//! counter back to `i`.
//!
//! # The status lattice
//!
//! Each transaction's current incarnation walks this lattice (the paper's Figure 2
//! extended with the two commit states):
//!
//! ```text
//!                      (read hit an ESTIMATE)
//!          +--------------- ABORTING(i) <--------------------+
//!          |                   ^      ^                      |
//!          v                   |      | (validation failed)  |
//!  READY_TO_EXECUTE(i+1)       |      |                      |
//!                              |      |                      |
//!  READY_TO_EXECUTE(i) --> EXECUTING(i) --> EXECUTED(i) --> VALIDATED(i)
//!                                                                |
//!                                             (lowest uncommitted, fresh wave)
//!                                                                v
//!                                                          COMMITTED(i)   [terminal]
//! ```
//!
//! `VALIDATED` records that a validation of the current incarnation passed (at a
//! particular *wave*, see below); `COMMITTED` is terminal — a committed transaction is
//! permanently exempt from re-validation and re-execution, its output is final, and
//! its multi-version entries can be frozen for direct reads.
//!
//! # The commit ladder
//!
//! Instead of the block "finishing" only when the paper's double-collect `check_done`
//! fires, a `commit` cursor walks the block front to back: whenever the lowest
//! uncommitted transaction holds a sufficiently fresh passing validation, it is
//! committed and the cursor advances ([`Scheduler::committed_prefix`]). Block
//! completion is *derived* from the ladder — `done()` rises exactly when
//! `committed_prefix() == block_size()` — and downstream consumers can stream the
//! committed prefix while the tail of the block still speculates.
//!
//! ## Waves
//!
//! The validation cursor is packed as `(wave, index)`: every decrease of the cursor
//! starts a new **wave**, and a claimed validation task is stamped with the wave it
//! was claimed at. The per-transaction bookkeeping records
//!
//! * `max_triggered_wave` — the newest wave whose sweep claimed this transaction,
//! * `required_wave` — the wave of the validation task last handed directly back by
//!   `finish_execution` (the cursor never revisits the transaction for it), and
//! * `validated_wave` — the newest wave at which a validation of the current
//!   incarnation passed (cleared on abort).
//!
//! ## Safety argument (why committing is sound)
//!
//! Transaction `k` commits only when, atomically under its status lock:
//!
//! 1. `status == VALIDATED` with `validated_wave = Some(w_V)` (a validation of the
//!    *current* incarnation passed; aborts clear the field),
//! 2. `w_V >= max(max_triggered_wave, required_wave)`, and
//! 3. the validation cursor `(idx, wave)` satisfies `idx > k || wave <= w_V`.
//!
//! Every event that can invalidate `k`'s reads — a lower transaction aborting (its
//! writes become ESTIMATEs) or re-executing (new versions, possibly at new locations)
//! — is followed, before the responsible thread does anything else, by a cursor
//! decrease to a target `<= k`, creating a fresh wave `w`. The decrease is a SeqCst
//! RMW on the cursor, and the invalidating stores happen before it; therefore any
//! validation *claimed at wave `>= w`* observes the event when it re-reads, and
//! cannot pass while `k`'s recorded reads are stale. So a *passing* validation at
//! wave `>= w` certifies freshness with respect to every invalidation up to `w`.
//!
//! Now suppose `k` satisfies 1–3 but some invalidating decrease `D` (target `<= k`,
//! wave `w > w_V`) exists. By 3, either the cursor's wave is `<= w_V < w` —
//! impossible, waves are monotone — or the cursor index is past `k`, so after `D`
//! the cursor swept from `D`'s target up through `k` and *claimed* index `k` at some
//! wave `>= w`. If `k` was validatable at that claim, `max_triggered_wave >= w > w_V`
//! contradicts 2. If it was not, `k`'s current incarnation finished executing only
//! after that sweep passed, so its `finish_execution` saw the cursor above `k` and
//! either stamped `required_wave >= w` (contradicting 2) or — with the task-return
//! optimization off — lowered the cursor below `k` again, contradicting 3 (any
//! later re-sweep re-enters the previous cases). Hence no such `D` exists, `w_V`
//! certifies freshness against every invalidation, and since the ladder commits in
//! index order, all lower transactions are already committed and can never create new
//! invalidations: `k`'s reads equal the final committed state. ∎
//!
//! Liveness: the cursor only moves forward between decreases, idle workers keep
//! claiming until it passes the block, and every claim either produces a validation
//! (whose completion raises `validated_wave` to the claim's wave) or proves the
//! transaction is mid-transition (whose completion schedules a fresh validation); the
//! ladder therefore always advances eventually. With the ladder disabled
//! ([`SchedulerOptions::rolling_commit`]), completion falls back to the paper's
//! double-collect (`check_done`, Theorem 1), which is retained (and cross-checked in
//! tests) as [`Scheduler::cursors_exhausted`].
//!
//! # Chained execution: the commit gate and the cross-block frontier
//!
//! A `ChainExecutor` (in `block-stm-core`) runs a *stream* of blocks on one worker
//! pool: block `N+1` starts speculating while block `N` is still committing. Two
//! scheduler primitives make that safe:
//!
//! * [`Scheduler::set_commit_gate`] — while the gate is closed, the commit ladder
//!   is frozen: tasks are dispensed normally (the block executes and validates at
//!   full speed) but nothing commits and `done()` stays down.
//! * [`Scheduler::trigger_full_revalidation`] — lowers the validation cursor to 0,
//!   starting a fresh wave that covers the whole block.
//!
//! ## Chain-serializability safety argument
//!
//! Claim: the concatenated committed output stream of the chain equals a
//! sequential execution of the concatenated blocks.
//!
//! Block `N+1` reads locations its own multi-version map cannot serve from the
//! **frontier overlay** — the committed writes of blocks `<= N`, published in
//! commit order by the predecessor's drain — falling through to the immutable
//! pre-chain storage below it. Such a read records a *stamped* frontier
//! descriptor (`ReadOrigin::Frontier` in `block-stm-mvmemory`): the overlay
//! assigns every published key a fresh stamp from a monotone counter, and
//! validation passes only if the key still carries exactly the observed stamp.
//! Stamps are unique per publication and keys are never removed, so **stamp
//! equality implies the read observed the value a fresh read would observe**.
//!
//! The gate turns that per-read check into a commit-time guarantee. The
//! protocol is: block `N+1`'s gate stays closed while block `N` runs; when
//! block `N` has fully committed (the overlay now holds the final frontier for
//! `N+1`), the chain executor first calls `trigger_full_revalidation` on
//! `N+1` and only then opens its gate. Consider any transaction `k` of `N+1`
//! that commits. By commit rule 2 above, `validated_wave >= max_triggered_wave`,
//! and the pre-open sweep raised `max_triggered_wave` (or `required_wave`, by
//! the same case analysis as the ladder argument) for every transaction to at
//! least the sweep's wave — so the validation backing `k`'s commit was *claimed
//! at or after the sweep*, i.e. it re-checked `k`'s frontier stamps strictly
//! after the overlay froze. A passing check against the frozen overlay means
//! `k` read exactly the final committed state of blocks `<= N`; the ladder
//! argument above then gives, by induction over blocks, that `k`'s reads equal
//! the state a sequential execution of the concatenated blocks would present.
//! Publications *during* block `N`'s drain can additionally trigger
//! intermediate sweeps — that is purely a liveness/performance measure (it
//! re-executes doomed speculation early); soundness needs only the final,
//! mandatory sweep-then-open ordering. ∎
//!
//! # Hint-guided scheduling: the hint-safety argument
//!
//! Declared access hints ([`AccessHints`](https://docs.rs/block-stm) on the
//! transaction trait) enter the scheduler through exactly two primitives, and
//! both are confined to the *dispensing* side of the scheduler — neither
//! touches the validation cursor, the wave bookkeeping or the commit rule:
//!
//! * [`Scheduler::set_initial_order`] permutes which transaction the execution
//!   counter dispenses at each position (low-declared-conflict first). The
//!   status lattice, validation sweeps and the commit ladder all operate on
//!   **transaction indices**; a permuted *execution* order only changes which
//!   speculation runs first, and a mis-ordered speculation that read too early
//!   is caught by validation like any other stale read.
//! * [`Scheduler::preregister_dependency`] parks a hinted reader on its
//!   declared writer before the block starts. This is precisely the state the
//!   pair would reach organically if the reader had executed, observed an
//!   ESTIMATE of the writer and aborted — minus the doomed execution. The
//!   parked transaction re-enters through the ordinary `resume_dependencies`
//!   wake path, executes a fresh incarnation, and that incarnation validates
//!   and commits under the unmodified ladder rules.
//!
//! Hence the safety argument above goes through **verbatim** with hints on:
//! every invalidating event still lowers the validation cursor, every commit
//! still requires a sufficiently-fresh passing validation, and the ladder
//! still commits in index order. Stale, partial or adversarially wrong hints
//! can only (a) pick a worse initial order, or (b) park a transaction behind a
//! writer it never actually conflicts with — both cost performance, never
//! correctness. A hinted reader parked behind the *wrong* writer is woken when
//! that writer finishes and then validates against what it actually read; a
//! conflict the hints *missed* is simply discovered at run time exactly as in
//! the unhinted engine. Wake-ups are why liveness is also preserved: parking
//! only ever moves a transaction into the `ABORTING` → resume path that
//! organic ESTIMATE reads already exercise, and at most one pre-dependency is
//! installed per transaction, on a lower-indexed blocker, so no cycle can be
//! declared.
//!
//! The one hint consumer that *does* carry correctness weight lives outside
//! the scheduler: when every hint in the block is `exact`, the core engine
//! skips multi-version **validation descriptors** for reads the hints prove
//! private. That optimization leans on the exactness promise (declared writes
//! are a superset of actual writes), so the engine enforces the promise at
//! record time — a transaction writing outside its declared exact write-set
//! fails the whole block with a typed `UndeclaredWrite` error before the
//! undeclared version can enter the multi-version map. Advisory hints never
//! enable that path.
//!
//! The public API mirrors the paper's function names one-to-one so the correctness
//! argument of Appendix A maps directly onto this code:
//! [`Scheduler::next_task`], [`Scheduler::add_dependency`],
//! [`Scheduler::finish_execution`], [`Scheduler::try_validation_abort`],
//! [`Scheduler::finish_validation`], [`Scheduler::done`] — plus the ladder's
//! [`Scheduler::committed_prefix`] and [`Scheduler::halt`] (early halt at a committed
//! boundary).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scheduler;
mod status;
mod task;

pub use scheduler::{Scheduler, SchedulerOptions};
pub use status::TxnStatus;
pub use task::{Task, TaskKind, Wave};
