//! The Block-STM collaborative scheduler (Algorithms 4 and 5 of the paper).
//!
//! The scheduler coordinates execution and validation tasks among worker threads while
//! preserving the preset serialization order. Conceptually it maintains two ordered
//! sets — pending *executions* `E` and pending *validations* `V` — and always hands a
//! thread the task with the smallest transaction index. Because concurrent priority
//! queues are hard to scale, both ordered sets are realized as a single atomic counter
//! (`execution_idx` / `validation_idx`) combined with a per-transaction status array:
//! a thread claims an index with `fetch_and_increment` and then checks whether that
//! transaction actually has a ready task; adding a task for transaction `i` lowers the
//! counter back to `i`.
//!
//! Completion is detected lazily (the "commit rule" of §2): when both counters have run
//! past the end of the block, no tasks are in flight (`num_active_tasks == 0`), and a
//! double-collect over `decrease_cnt` shows neither counter was lowered concurrently,
//! the whole block is committed and the `done_marker` is raised.
//!
//! The public API mirrors the paper's function names one-to-one so the correctness
//! argument of Appendix A maps directly onto this code:
//! [`Scheduler::next_task`], [`Scheduler::add_dependency`],
//! [`Scheduler::finish_execution`], [`Scheduler::try_validation_abort`],
//! [`Scheduler::finish_validation`], [`Scheduler::done`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod scheduler;
mod status;
mod task;

pub use scheduler::{Scheduler, SchedulerOptions};
pub use status::TxnStatus;
pub use task::{Task, TaskKind};
