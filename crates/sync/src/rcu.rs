//! RCU-style snapshot cells.
//!
//! The `MVMemory` module of Block-STM keeps, per transaction, the set of memory
//! locations written by its last finished incarnation (`last_written_locations`) and
//! the read-set of that incarnation (`last_read_set`). The paper assumes "that these
//! sets are loaded and stored atomically, which can be accomplished by storing a
//! pointer to the set and accessing the pointer atomically, i.e. via the
//! read-copy-update" (§3.2).
//!
//! [`RcuCell`] provides exactly that contract: readers obtain an `Arc` snapshot of the
//! current value with a short read-locked critical section (no allocation, no copying
//! of the underlying data), and writers publish a brand-new snapshot by swapping the
//! `Arc`. Readers holding an old snapshot keep it alive until they drop it, which is
//! the RCU grace-period property we need.

use parking_lot::RwLock;
use std::sync::Arc;

/// An atomically replaceable snapshot of a value.
///
/// `load` returns an [`Arc`] to the current snapshot; `store` publishes a new snapshot.
/// Readers never block writers for longer than the duration of a pointer swap, and
/// snapshots observed by readers are immutable.
#[derive(Debug)]
pub struct RcuCell<T> {
    current: RwLock<Arc<T>>,
}

impl<T> RcuCell<T> {
    /// Creates a cell holding `value` as the initial snapshot.
    pub fn new(value: T) -> Self {
        Self {
            current: RwLock::new(Arc::new(value)),
        }
    }

    /// Returns the current snapshot.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.read())
    }

    /// Publishes `value` as the new snapshot and returns the previous one.
    pub fn store(&self, value: T) -> Arc<T> {
        let mut guard = self.current.write();
        std::mem::replace(&mut *guard, Arc::new(value))
    }

    /// Publishes an already-shared snapshot (avoids re-allocating when the caller has
    /// built the new value inside an `Arc` already).
    pub fn store_arc(&self, value: Arc<T>) -> Arc<T> {
        let mut guard = self.current.write();
        std::mem::replace(&mut *guard, value)
    }

    /// Atomically replaces the snapshot with the result of `f(current)` and returns
    /// the new snapshot. The update closure runs under the write lock, so it must be
    /// short; Block-STM only uses this for small set manipulations.
    pub fn update<F>(&self, f: F) -> Arc<T>
    where
        F: FnOnce(&T) -> T,
    {
        let mut guard = self.current.write();
        let next = Arc::new(f(&guard));
        *guard = Arc::clone(&next);
        next
    }
}

impl<T: Default> Default for RcuCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::thread;

    #[test]
    fn load_returns_latest_store() {
        let cell = RcuCell::new(vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![1, 2, 3]);
        let old = cell.store(vec![4]);
        assert_eq!(*old, vec![1, 2, 3]);
        assert_eq!(*cell.load(), vec![4]);
    }

    #[test]
    fn old_snapshots_survive_replacement() {
        let cell = RcuCell::new(String::from("first"));
        let snapshot = cell.load();
        cell.store(String::from("second"));
        assert_eq!(*snapshot, "first");
        assert_eq!(*cell.load(), "second");
    }

    #[test]
    fn update_applies_closure_to_current() {
        let cell = RcuCell::new(10u64);
        let new = cell.update(|v| v + 5);
        assert_eq!(*new, 15);
        assert_eq!(*cell.load(), 15);
    }

    #[test]
    fn store_arc_reuses_allocation() {
        let cell = RcuCell::new(1u32);
        let shared = Arc::new(7u32);
        cell.store_arc(Arc::clone(&shared));
        assert!(Arc::ptr_eq(&cell.load(), &shared));
    }

    #[test]
    fn concurrent_readers_see_some_published_value() {
        let cell = Arc::new(RcuCell::new(0usize));
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for i in 1..=1_000usize {
                    cell.store(i);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    let mut seen = BTreeSet::new();
                    for _ in 0..2_000 {
                        seen.insert(*cell.load());
                    }
                    seen
                })
            })
            .collect();
        writer.join().unwrap();
        for reader in readers {
            let seen = reader.join().unwrap();
            // Every observed value must be one that was actually published.
            assert!(seen.iter().all(|v| *v <= 1_000));
            assert!(!seen.is_empty());
        }
        assert_eq!(*cell.load(), 1_000);
    }
}
