//! Exponential spin/yield backoff.
//!
//! Block-STM itself never busy-waits on data (a transaction that hits an unresolved
//! dependency aborts its incarnation and the thread moves on to other work), but two
//! places in this reproduction do wait:
//!
//! * the **Bohm baseline**, where a read of a placeholder version blocks until the
//!   owning transaction produces the value (Bohm's design point: perfect write-sets
//!   mean the value *will* arrive);
//! * tests that wait for a concurrent condition to become visible.
//!
//! [`Backoff`] implements the usual strategy: a few busy-spin rounds with
//! `core::hint::spin_loop`, escalating to `std::thread::yield_now` once spinning is
//! unlikely to be productive.

/// Exponential backoff helper for short waits.
#[derive(Debug, Default)]
pub struct Backoff {
    step: u32,
}

impl Backoff {
    /// Spin rounds double until this exponent, after which [`snooze`](Self::snooze)
    /// starts yielding to the OS scheduler.
    const SPIN_LIMIT: u32 = 6;
    /// Upper bound on the exponent so the spin count stays bounded.
    const YIELD_LIMIT: u32 = 10;

    /// Creates a fresh backoff state.
    pub fn new() -> Self {
        Self { step: 0 }
    }

    /// Resets the backoff to its initial (cheapest) state.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Backs off in a spin loop; suitable when the awaited condition is expected to
    /// change within a few hundred cycles.
    pub fn spin(&mut self) {
        for _ in 0..(1u32 << self.step.min(Self::SPIN_LIMIT)) {
            core::hint::spin_loop();
        }
        if self.step <= Self::SPIN_LIMIT {
            self.step += 1;
        }
    }

    /// Backs off, yielding the thread once the spin budget is exhausted. This is what
    /// blocking readers should call in a loop.
    pub fn snooze(&mut self) {
        if self.step <= Self::SPIN_LIMIT {
            self.spin();
        } else {
            std::thread::yield_now();
            if self.step <= Self::YIELD_LIMIT {
                self.step += 1;
            }
        }
    }

    /// Returns `true` once the spin budget is exhausted, i.e. the next
    /// [`snooze`](Self::snooze) will yield to the OS scheduler instead of spinning.
    /// Callers that track how often polling degrades to yielding (the Block-STM
    /// worker loop records this in its metrics) check this before snoozing.
    pub fn will_yield(&self) -> bool {
        self.step > Self::SPIN_LIMIT
    }

    /// Returns `true` once the caller should consider parking / switching strategy
    /// instead of spinning (the wait has become long).
    pub fn is_completed(&self) -> bool {
        self.step > Self::YIELD_LIMIT
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn backoff_escalates_and_completes() {
        let mut backoff = Backoff::new();
        assert!(!backoff.is_completed());
        for _ in 0..32 {
            backoff.snooze();
        }
        assert!(backoff.is_completed());
        backoff.reset();
        assert!(!backoff.is_completed());
    }

    #[test]
    fn spin_never_panics_and_stays_bounded() {
        let mut backoff = Backoff::new();
        for _ in 0..100 {
            backoff.spin();
        }
    }

    #[test]
    fn spin_exponent_saturates_at_spin_limit() {
        // `spin` alone must never escalate past the spin budget: the exponent
        // saturates at SPIN_LIMIT + 1, so each call spins at most
        // 2^SPIN_LIMIT rounds and the backoff never reports completion.
        let mut backoff = Backoff::new();
        for _ in 0..10_000 {
            backoff.spin();
            assert!(
                !backoff.is_completed(),
                "pure spinning must not exhaust the yield budget"
            );
        }
        // Only snoozing (which yields) walks the exponent to completion, and
        // it does so within a small, bounded number of calls.
        let mut snoozes = 0;
        while !backoff.is_completed() {
            backoff.snooze();
            snoozes += 1;
            assert!(snoozes <= 16, "snooze escalation must be bounded");
        }
    }

    #[test]
    fn snooze_wait_for_flag() {
        let flag = Arc::new(AtomicBool::new(false));
        let setter = {
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                flag.store(true, Ordering::Release);
            })
        };
        let mut backoff = Backoff::new();
        while !flag.load(Ordering::Acquire) {
            backoff.snooze();
        }
        setter.join().unwrap();
        assert!(flag.load(Ordering::Acquire));
    }
}
