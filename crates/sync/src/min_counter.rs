//! An atomic counter with `fetch_and_increment` and decrease-to-target semantics.
//!
//! The Block-STM scheduler (Algorithm 4) drives task selection with two indices,
//! `execution_idx` and `validation_idx`. Threads claim work by `fetch_and_increment`
//! (Lines 123 and 130 of the paper) and the scheduler *lowers* an index when new work
//! appears for an already-passed transaction (`decrease_execution_idx` /
//! `decrease_validation_idx`, Lines 99 and 104, which set the index to
//! `min(index, target)`).
//!
//! [`AtomicMinCounter`] packages exactly those two operations, plus a monotonically
//! increasing `decrease_cnt`-style event counter hook is left to the caller (the
//! scheduler owns `decrease_cnt` because it must be incremented *after* the index is
//! lowered, see the `check_done` double-collect).

use crate::padded::CachePadded;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A cache-padded atomic counter used as an ordered-set cursor.
///
/// Supports the three operations the collaborative scheduler needs:
/// [`load`](Self::load), [`fetch_and_increment`](Self::fetch_and_increment) and
/// [`decrease`](Self::decrease) (atomic `min`).
#[derive(Debug, Default)]
pub struct AtomicMinCounter {
    value: CachePadded<AtomicUsize>,
}

impl AtomicMinCounter {
    /// Creates a new counter starting at `initial`.
    pub const fn new(initial: usize) -> Self {
        Self {
            value: CachePadded::new(AtomicUsize::new(initial)),
        }
    }

    /// Returns the current value.
    pub fn load(&self) -> usize {
        self.value.load(Ordering::SeqCst)
    }

    /// Atomically increments the counter and returns the value it held before the
    /// increment (the claimed index).
    pub fn fetch_and_increment(&self) -> usize {
        self.value.fetch_add(1, Ordering::SeqCst)
    }

    /// Atomically lowers the counter to `min(current, target)`.
    ///
    /// Returns `true` if the counter was actually lowered (i.e. `target` was strictly
    /// smaller than the previously stored value), `false` if it already was at or
    /// below `target`.
    pub fn decrease(&self, target: usize) -> bool {
        let prev = self.value.fetch_min(target, Ordering::SeqCst);
        prev > target
    }

    /// Stores an exact value. Only used by tests and by executors that reuse a
    /// scheduler across blocks.
    pub fn store(&self, value: usize) {
        self.value.store(value, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fetch_and_increment_returns_previous() {
        let counter = AtomicMinCounter::new(0);
        assert_eq!(counter.fetch_and_increment(), 0);
        assert_eq!(counter.fetch_and_increment(), 1);
        assert_eq!(counter.load(), 2);
    }

    #[test]
    fn decrease_reports_whether_it_lowered() {
        let counter = AtomicMinCounter::new(10);
        assert!(counter.decrease(4));
        assert_eq!(counter.load(), 4);
        assert!(!counter.decrease(4));
        assert!(!counter.decrease(7));
        assert_eq!(counter.load(), 4);
    }

    #[test]
    fn store_overwrites() {
        let counter = AtomicMinCounter::new(3);
        counter.store(99);
        assert_eq!(counter.load(), 99);
    }

    #[test]
    fn concurrent_claims_are_unique() {
        let counter = Arc::new(AtomicMinCounter::new(0));
        let per_thread = 5_000usize;
        let threads = 8usize;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut claimed = Vec::with_capacity(per_thread);
                    for _ in 0..per_thread {
                        claimed.push(counter.fetch_and_increment());
                    }
                    claimed
                })
            })
            .collect();
        let mut all: Vec<usize> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        all.dedup();
        assert_eq!(all.len(), per_thread * threads, "claims must never repeat");
        assert_eq!(counter.load(), per_thread * threads);
    }

    #[test]
    fn concurrent_decrease_never_raises() {
        let counter = Arc::new(AtomicMinCounter::new(1_000));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for i in (0..500).rev() {
                        counter.decrease(i * 2 + t);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(
            counter.load() <= 3,
            "final value {} too high",
            counter.load()
        );
    }

    #[test]
    fn decrease_is_monotone_over_any_interleaving() {
        // The counter must always equal the running minimum of its history:
        // a decrease to a higher target is a no-op and reports `false`.
        let counter = AtomicMinCounter::new(100);
        let targets = [70usize, 90, 40, 40, 65, 12, 99, 12];
        let mut running_min = 100usize;
        for target in targets {
            let lowered = counter.decrease(target);
            assert_eq!(
                lowered,
                target < running_min,
                "decrease({target}) from {running_min} misreported"
            );
            running_min = running_min.min(target);
            assert_eq!(counter.load(), running_min);
        }
        // Claims resume from the lowered value.
        assert_eq!(counter.fetch_and_increment(), 12);
        assert_eq!(counter.load(), 13);
    }

    #[test]
    fn mixed_claims_and_decreases_stay_above_lowest_target() {
        // 4 claimer threads race 4 decreasing threads; whatever the
        // interleaving, the counter can never end below the lowest decrease
        // target (decrease is min, never subtraction).
        let counter = Arc::new(AtomicMinCounter::new(10_000));
        let lowest_target = 100usize;
        let mut handles = Vec::new();
        for _ in 0..4 {
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1_000 {
                    counter.fetch_and_increment();
                }
            }));
        }
        for t in 0..4usize {
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    counter.decrease(lowest_target + t * 97 + i);
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert!(
            counter.load() >= lowest_target,
            "counter {} fell below the lowest decrease target",
            counter.load()
        );
    }
}
