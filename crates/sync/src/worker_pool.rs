//! A persistent, parking worker pool for scoped block execution.
//!
//! Production Block-STM deployments (Aptos' executor, pevm) keep a long-lived
//! rayon-style thread pool and dispatch every block onto it, because at small block
//! sizes the per-block cost of spawning and joining OS threads dominates execution
//! itself. [`WorkerPool`] provides that shape for this workspace: `new(n)` spawns `n`
//! threads once, the threads **park on a condvar between blocks**, and
//! [`WorkerPool::run`] wakes a chosen number of them to execute one borrowed job,
//! returning only when every participant has finished.
//!
//! # Why this module contains `unsafe`
//!
//! The job is a *borrowed* closure (`&dyn Fn(usize)`) over per-block data — the block
//! slice, the storage reference, the multi-version memory. Safe Rust can hand such
//! non-`'static` borrows to other threads only through `std::thread::scope`, which
//! spawns and joins threads per call — exactly the overhead a persistent pool exists
//! to remove. Every production scoped pool (rayon, crossbeam, scoped_threadpool)
//! therefore erases the job's lifetime behind a raw pointer and re-establishes safety
//! with a completion protocol. This module does the same, and is the **only**
//! unsafe-bearing code in the workspace.
//!
//! # Soundness argument
//!
//! The lifetime of the job reference is erased when it is stored as a raw pointer in
//! [`JobHandle`]. The pointer is dereferenced only by participating workers, and:
//!
//! 1. A worker dereferences the pointer only between observing a fresh epoch (while
//!    holding the state lock) and decrementing the completion latch. The decrement
//!    happens strictly *after* the last use of the job reference.
//! 2. [`WorkerPool::run`] returns only after the completion latch reaches zero, i.e.
//!    after every participating worker has performed its decrement. The borrow that
//!    produced the pointer is therefore live for every dereference.
//! 3. Non-participating workers (index ≥ `participants`) never read the job pointer.
//! 4. Dispatches are serialized by an internal lock, so a second `run` cannot
//!    overwrite the pointer while workers of the previous epoch still use it, and
//!    `Drop` (which requires `&mut self`) cannot race a `run` (which holds `&self`).
//!
//! Worker panics are caught with `catch_unwind`, counted, and reported to the caller
//! as [`JobPanics`]; a panicking job still decrements the latch, so the pool never
//! deadlocks and remains usable for subsequent blocks.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;

/// Error returned by [`WorkerPool::run`] when one or more invocations of the job
/// panicked. The pool itself stays healthy: the panic is contained to the incarnation
/// that raised it and the pool can keep executing blocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobPanics {
    /// Number of job invocations (including the caller's, index 0) that panicked.
    pub panicked: usize,
}

impl std::fmt::Display for JobPanics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} worker job invocation(s) panicked", self.panicked)
    }
}

impl std::error::Error for JobPanics {}

/// A lifetime-erased reference to the current job. The `'static` is a lie told once,
/// in [`WorkerPool::run`]'s transmute; the module-level soundness argument explains
/// why every use of this handle happens while the real borrow is still live. Being a
/// `&'static (dyn ... + Sync)`, the handle is automatically `Send` + `Copy`.
#[derive(Copy, Clone)]
struct JobHandle {
    job: &'static (dyn Fn(usize) + Sync),
}

/// Dispatch state: which job (if any) is current, and which epoch it belongs to.
struct DispatchState {
    /// Incremented once per dispatch; workers detect new work by comparing against
    /// the last epoch they served.
    epoch: u64,
    /// Worker indices `1..participants` run the current job (index 0 is the caller).
    participants: usize,
    /// The current job; `Some` exactly while an epoch is in flight.
    job: Option<JobHandle>,
    /// Set once, on drop: workers exit their loop.
    shutdown: bool,
}

/// Completion state: how many participating workers have not finished yet.
struct LatchState {
    remaining: usize,
    panicked: usize,
}

struct Shared {
    dispatch: Mutex<DispatchState>,
    /// Signals workers that `dispatch` changed (new epoch or shutdown).
    work_cv: Condvar,
    latch: Mutex<LatchState>,
    /// Signals the caller that `latch.remaining` reached zero.
    done_cv: Condvar,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // A panic while holding these locks is impossible by construction (the critical
    // sections below contain no user code), but recover from poisoning anyway so a
    // bug cannot cascade into an unrelated panic.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// A fixed-size pool of persistent worker threads executing borrowed jobs.
///
/// The pool's threads are spawned once and parked between jobs; a job is a
/// `&(dyn Fn(usize) + Sync)` closure invoked with a distinct worker index per
/// participant. Index 0 always runs on the calling thread (the caller participates,
/// like rayon's `in_place_scope`, so a pool of size `n - 1` saturates `n` cores).
pub struct WorkerPool {
    shared: Arc<Shared>,
    threads: Vec<JoinHandle<()>>,
    /// Serializes dispatches from multiple threads sharing the pool by reference.
    dispatch_guard: Mutex<()>,
    /// Total dispatches served (diagnostics / tests).
    epochs_run: AtomicU64,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.threads.len())
            .field("epochs_run", &self.epochs_run.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool of `threads` parked worker threads. `0` is valid and means every
    /// job runs inline on the caller only.
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            dispatch: Mutex::new(DispatchState {
                epoch: 0,
                participants: 0,
                job: None,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            latch: Mutex::new(LatchState {
                remaining: 0,
                panicked: 0,
            }),
            done_cv: Condvar::new(),
        });
        let threads = (1..=threads)
            .map(|index| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("block-stm-worker-{index}"))
                    .spawn(move || worker_loop(&shared, index))
                    .expect("spawning a worker thread failed")
            })
            .collect();
        Self {
            shared,
            threads,
            dispatch_guard: Mutex::new(()),
            epochs_run: AtomicU64::new(0),
        }
    }

    /// Number of pool threads (excluding the participating caller).
    pub fn thread_count(&self) -> usize {
        self.threads.len()
    }

    /// Number of jobs dispatched so far (diagnostics).
    pub fn epochs_run(&self) -> u64 {
        self.epochs_run.load(Ordering::Relaxed)
    }

    /// Runs `job` on `participants` workers: the calling thread as index 0, plus up to
    /// `participants - 1` pool threads as indices `1..participants`. Blocks until all
    /// participants have returned.
    ///
    /// If the pool has fewer threads than `participants - 1`, the job simply runs on
    /// every available pool thread; it must not rely on an exact participant count.
    /// Panics inside `job` are caught and reported as [`JobPanics`]; the pool stays
    /// usable afterwards.
    pub fn run(&self, participants: usize, job: &(dyn Fn(usize) + Sync)) -> Result<(), JobPanics> {
        let participants = participants.max(1);
        let pool_workers = (participants - 1).min(self.threads.len());
        self.epochs_run.fetch_add(1, Ordering::Relaxed);
        if pool_workers == 0 {
            // Caller-only: no pointer erasure, no wakeups.
            return match catch_unwind(AssertUnwindSafe(|| job(0))) {
                Ok(()) => Ok(()),
                Err(_) => Err(JobPanics { panicked: 1 }),
            };
        }

        let _serialized = lock(&self.dispatch_guard);
        {
            let mut latch = lock(&self.shared.latch);
            latch.remaining = pool_workers;
            latch.panicked = 0;
        }
        // SAFETY: the ONLY unsafe in this workspace — erases the job borrow's
        // lifetime so parked persistent threads can call it. Sound because `run`
        // does not return until the completion latch proves every participant has
        // finished its last call through this reference, and the handle is retired
        // (set to `None`) before `run` returns (module-level argument, points 1–4).
        let erased: &'static (dyn Fn(usize) + Sync) =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), _>(job) };
        {
            let mut dispatch = lock(&self.shared.dispatch);
            dispatch.job = Some(JobHandle { job: erased });
            // `pool_workers` threads have indices 1..=pool_workers; they participate
            // when their index is strictly below this bound.
            dispatch.participants = pool_workers + 1;
            dispatch.epoch += 1;
            self.shared.work_cv.notify_all();
        }

        // The caller is participant 0.
        let caller_panicked = catch_unwind(AssertUnwindSafe(|| job(0))).is_err();

        let worker_panics = {
            let mut latch = lock(&self.shared.latch);
            while latch.remaining > 0 {
                latch = self
                    .shared
                    .done_cv
                    .wait(latch)
                    .unwrap_or_else(PoisonError::into_inner);
            }
            latch.panicked
        };
        // Retire the pointer: after this, no copy of it will ever be dereferenced
        // again (workers only read it when a *new* epoch begins).
        lock(&self.shared.dispatch).job = None;

        let panicked = worker_panics + usize::from(caller_panicked);
        if panicked > 0 {
            Err(JobPanics { panicked })
        } else {
            Ok(())
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut dispatch = lock(&self.shared.dispatch);
            dispatch.shutdown = true;
            self.shared.work_cv.notify_all();
        }
        for handle in self.threads.drain(..) {
            // A worker thread can only terminate via the shutdown flag; if it somehow
            // panicked outside a job (a pool bug), surface that during drop.
            if handle.join().is_err() {
                // Never unwind out of drop: report and continue joining the rest.
                eprintln!("block-stm worker thread panicked outside a job");
            }
        }
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut seen_epoch = 0u64;
    loop {
        // Park until a new epoch (that includes this worker) or shutdown.
        let job = {
            let mut dispatch = lock(&shared.dispatch);
            loop {
                if dispatch.shutdown {
                    return;
                }
                if dispatch.epoch != seen_epoch {
                    seen_epoch = dispatch.epoch;
                    if index < dispatch.participants {
                        if let Some(handle) = dispatch.job {
                            break handle;
                        }
                    }
                    // Not a participant this epoch: fall through and keep waiting.
                }
                dispatch = shared
                    .work_cv
                    .wait(dispatch)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        };

        // The caller blocks in `run` until this worker decrements the latch below,
        // which happens strictly after this call returns, so the borrow behind the
        // handle is still live here (module-level soundness argument).
        let panicked = catch_unwind(AssertUnwindSafe(|| (job.job)(index))).is_err();

        let mut latch = lock(&shared.latch);
        latch.remaining -= 1;
        if panicked {
            latch.panicked += 1;
        }
        if latch.remaining == 0 {
            shared.done_cv.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_job_on_all_participants_with_distinct_indices() {
        let pool = WorkerPool::new(3);
        let indices = Mutex::new(BTreeSet::new());
        pool.run(4, &|idx| {
            indices.lock().unwrap().insert(idx);
        })
        .unwrap();
        assert_eq!(indices.into_inner().unwrap(), BTreeSet::from([0, 1, 2, 3]));
    }

    #[test]
    fn zero_thread_pool_runs_inline() {
        let pool = WorkerPool::new(0);
        let counter = AtomicUsize::new(0);
        pool.run(8, &|idx| {
            assert_eq!(idx, 0);
            counter.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn participants_below_pool_size_leave_extra_workers_parked() {
        let pool = WorkerPool::new(7);
        let max_index = AtomicUsize::new(0);
        let calls = AtomicUsize::new(0);
        pool.run(2, &|idx| {
            max_index.fetch_max(idx, Ordering::SeqCst);
            calls.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(calls.load(Ordering::SeqCst), 2);
        assert!(max_index.load(Ordering::SeqCst) <= 1);
    }

    #[test]
    fn borrowed_state_is_visible_and_mutations_are_not_lost() {
        // The whole point of the pool: jobs borrow non-'static data.
        let pool = WorkerPool::new(4);
        let cells: Vec<AtomicUsize> = (0..64).map(|_| AtomicUsize::new(0)).collect();
        let next = AtomicUsize::new(0);
        pool.run(5, &|_| loop {
            let i = next.fetch_add(1, Ordering::SeqCst);
            if i >= cells.len() {
                break;
            }
            cells[i].fetch_add(i + 1, Ordering::SeqCst);
        })
        .unwrap();
        for (i, cell) in cells.iter().enumerate() {
            assert_eq!(cell.load(Ordering::SeqCst), i + 1);
        }
    }

    #[test]
    fn pool_is_reusable_across_many_dispatches() {
        let pool = WorkerPool::new(2);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(3, &|_| {
                total.fetch_add(1, Ordering::SeqCst);
            })
            .unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 600);
        assert_eq!(pool.epochs_run(), 200);
    }

    #[test]
    fn worker_panics_are_reported_and_pool_survives() {
        let pool = WorkerPool::new(3);
        let err = pool
            .run(4, &|idx| {
                if idx % 2 == 1 {
                    panic!("boom {idx}");
                }
            })
            .unwrap_err();
        assert_eq!(err.panicked, 2);
        // The pool still works after the panic.
        let counter = AtomicUsize::new(0);
        pool.run(4, &|_| {
            counter.fetch_add(1, Ordering::SeqCst);
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn caller_panic_is_contained_and_counted() {
        let pool = WorkerPool::new(1);
        let err = pool
            .run(2, &|idx| {
                if idx == 0 {
                    panic!("caller job panics");
                }
            })
            .unwrap_err();
        assert_eq!(err.panicked, 1);
        assert_eq!(format!("{err}"), "1 worker job invocation(s) panicked");
    }

    #[test]
    fn concurrent_runs_from_multiple_threads_are_serialized() {
        let pool = Arc::new(WorkerPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        pool.run(3, &|_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        })
                        .unwrap();
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 50 * 3);
    }

    #[test]
    fn drop_joins_all_threads() {
        let pool = WorkerPool::new(4);
        pool.run(5, &|_| {}).unwrap();
        drop(pool); // must not hang
    }
}
