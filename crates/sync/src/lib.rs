//! Concurrency substrate for the Block-STM reproduction.
//!
//! The production Block-STM implementation inside `aptos-core` relies on a handful of
//! low-level concurrency building blocks: cache-padded atomic counters (to avoid false
//! sharing between the scheduler's hot counters), a concurrent hash map over access
//! paths (the `data` map of the `MVMemory` module), and RCU-style atomically swappable
//! snapshots for per-transaction read-sets and written-location sets.
//!
//! This crate provides those building blocks from scratch, on top of `std::sync::atomic`
//! and `parking_lot` locks only. Everything here is safe Rust **except** the
//! [`worker_pool`] module, which contains the workspace's single audited `unsafe`
//! block: the lifetime erasure every persistent scoped thread pool (rayon,
//! crossbeam) needs to run borrowed jobs on long-lived threads. See that module's
//! soundness argument.
//!
//! Modules:
//!
//! * [`padded`] — [`CachePadded`](padded::CachePadded) wrapper and padded atomic counters.
//! * [`sharded_map`] — [`ShardedMap`](sharded_map::ShardedMap), a lock-sharded hash map
//!   used by `MVMemory` as the concurrent map over access paths.
//! * [`rcu`] — [`RcuCell`](rcu::RcuCell), an atomically replaceable `Arc` snapshot cell
//!   (the paper's "loaded/stored atomically via RCU" arrays).
//! * [`backoff`] — [`Backoff`](backoff::Backoff), exponential spin/yield backoff for
//!   bounded busy-waiting (used by the Bohm baseline when a read blocks on a
//!   not-yet-produced version).
//! * [`min_counter`] — [`AtomicMinCounter`](min_counter::AtomicMinCounter), an atomic
//!   counter supporting `fetch_add` and decrease-to-minimum, the primitive behind the
//!   scheduler's `execution_idx` / `validation_idx`.
//! * [`worker_pool`] — [`WorkerPool`](worker_pool::WorkerPool), a persistent pool of
//!   parked worker threads that executes one borrowed job per block (the thread pool
//!   behind the `BlockStm` engine).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod min_counter;
pub mod padded;
pub mod rcu;
pub mod sharded_map;
pub mod worker_pool;

pub use backoff::Backoff;
pub use min_counter::AtomicMinCounter;
pub use padded::{CachePadded, PaddedAtomicBool, PaddedAtomicU64, PaddedAtomicUsize};
pub use rcu::RcuCell;
pub use sharded_map::ShardedMap;
pub use worker_pool::{JobPanics, WorkerPool};
