//! Concurrency substrate for the Block-STM reproduction.
//!
//! The production Block-STM implementation inside `aptos-core` relies on a handful of
//! low-level concurrency building blocks: cache-padded atomic counters (to avoid false
//! sharing between the scheduler's hot counters), a concurrent hash map over access
//! paths (the `data` map of the `MVMemory` module), and RCU-style atomically swappable
//! snapshots for per-transaction read-sets and written-location sets.
//!
//! This crate provides those building blocks from scratch, on top of `std::sync::atomic`
//! and `parking_lot` locks only. Everything here is safe Rust **except** two audited
//! `unsafe` modules: [`worker_pool`] (the lifetime erasure every persistent scoped
//! thread pool — rayon, crossbeam — needs to run borrowed jobs on long-lived
//! threads) and [`snapshot_ptr`] (the RCU pointer with quiescence-deferred
//! reclamation behind the multi-version memory's lock-free read path). Each module
//! carries its own soundness argument.
//!
//! Modules:
//!
//! * [`padded`] — [`CachePadded`](padded::CachePadded) wrapper and padded atomic counters.
//! * [`fxhash`] — [`FxBuildHasher`](fxhash::FxBuildHasher), the fast multiply-xor
//!   hasher used for shard selection and the per-worker location caches.
//! * [`sharded_map`] — [`ShardedMap`](sharded_map::ShardedMap), a lock-sharded hash map
//!   used by `MVMemory` as the concurrent map over access paths (interning only on
//!   the current hot path; steady-state accesses go through per-worker caches).
//! * [`rcu`] — [`RcuCell`](rcu::RcuCell), an atomically replaceable `Arc` snapshot cell
//!   (the paper's "loaded/stored atomically via RCU" arrays).
//! * [`snapshot_ptr`] — [`SnapshotPtr`](snapshot_ptr::SnapshotPtr), a wait-free-read
//!   RCU pointer whose replaced snapshots are parked until a quiescent point.
//! * [`versioned_cell`] — [`VersionedCell`](versioned_cell::VersionedCell), the
//!   lock-free per-location multi-version cell (RCU slot array + single-writer
//!   seqlock slots) that replaces the paper's lock-protected search trees.
//! * [`backoff`] — [`Backoff`](backoff::Backoff), exponential spin/yield backoff for
//!   bounded busy-waiting (used by the Bohm baseline when a read blocks on a
//!   not-yet-produced version).
//! * [`min_counter`] — [`AtomicMinCounter`](min_counter::AtomicMinCounter), an atomic
//!   counter supporting `fetch_add` and decrease-to-minimum, the primitive behind the
//!   scheduler's `execution_idx` / `validation_idx`.
//! * [`worker_pool`] — [`WorkerPool`](worker_pool::WorkerPool), a persistent pool of
//!   parked worker threads that executes one borrowed job per block (the thread pool
//!   behind the `BlockStm` engine).

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod backoff;
pub mod fxhash;
pub mod min_counter;
pub mod padded;
pub mod rcu;
pub mod sharded_map;
pub mod snapshot_ptr;
pub mod versioned_cell;
pub mod worker_pool;

pub use backoff::Backoff;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use min_counter::AtomicMinCounter;
pub use padded::{CachePadded, PaddedAtomicBool, PaddedAtomicU64, PaddedAtomicUsize};
pub use rcu::RcuCell;
pub use sharded_map::ShardedMap;
pub use snapshot_ptr::SnapshotPtr;
pub use versioned_cell::{CellRead, VersionedCell};
pub use worker_pool::{JobPanics, WorkerPool};
