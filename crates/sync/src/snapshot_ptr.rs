//! Lock-free RCU snapshot pointers with quiescence-deferred reclamation.
//!
//! [`SnapshotPtr`] is the read-side primitive behind the multi-version memory's
//! lock-free hot path: a pointer to an immutable snapshot that readers load with a
//! single `Acquire` atomic load (no lock, no reference-count traffic) and writers
//! replace by publishing a freshly built snapshot. It is the "RCU" of the paper's §3.2
//! ("storing a pointer to the set and accessing the pointer atomically, i.e. via
//! read-copy-update") taken to its logical conclusion — where [`RcuCell`](crate::RcuCell)
//! trades a lock acquisition per `load` for `Arc` convenience, `SnapshotPtr` makes the
//! read side entirely wait-free.
//!
//! # Reclamation model
//!
//! Classic RCU needs a grace period before a retired snapshot can be freed. This
//! workspace has a natural one: the per-block data structures are drained between
//! blocks, when the executor holds `&mut` access (see `MVMemory::reset`). `SnapshotPtr`
//! therefore *parks* replaced snapshots on an internal lock-free stack instead of
//! freeing them, and reclaims the whole stack in [`quiesce`](SnapshotPtr::quiesce) /
//! [`set`](SnapshotPtr::set) / `Drop` — all of which require exclusive access.
//! Garbage is bounded by the number of publishes within one block, which Block-STM
//! already bounds by the number of incarnations.
//!
//! Snapshots live in intrusive nodes: the `next` link used by the retired stack is
//! allocated together with the value, so parking a replaced snapshot is a pointer
//! push, not an allocation. Quiescing does not return nodes to the allocator either:
//! it drops the parked *values* in place and moves the nodes onto a **free pool**,
//! from which later publishes pop their node instead of calling `malloc`. In steady
//! state (block after block through `MVMemory::reset`) the hot path therefore
//! allocates only while a block sets a new high-water mark of publishes, and the
//! per-block quiesce is pointer relinking plus `drop` of the values — not a burst
//! of scattered frees. This matters most on the re-execution path, where every
//! re-record republishes slot values.
//!
//! # Why this module contains `unsafe`
//!
//! Safe Rust cannot hand out `&T` borrows of a value owned behind an `AtomicPtr`;
//! crates like `arc-swap` exist precisely because this requires a reclamation
//! protocol. The protocol here is deliberately the simplest sound one (defer until
//! exclusive access) rather than hazard pointers or epochs.
//!
//! # Soundness argument
//!
//! 1. `current` always points to a live `Node<T>` allocation with an **initialized**
//!    value: it is initialized from an allocation holding a just-written value and
//!    only ever replaced by another such pointer (`publish`, `set`). Nodes on the
//!    `retired` stack are likewise initialized; nodes on the `free` pool have had
//!    their value dropped and hold only spare capacity.
//! 2. A replaced `current` node is never freed (or reused) by `&self` methods:
//!    `publish` pushes it onto the `retired` stack through the node's own atomic
//!    `next` link, where it stays alive and initialized. The push writes only the
//!    `next` field — the `value` field readers borrow is untouched (and `next` is an
//!    atomic, so the store is defined even while other threads hold references into
//!    the node).
//! 3. References returned by [`load`](SnapshotPtr::load) borrow `self`. The only
//!    operations that drop parked values or free memory — [`quiesce`](SnapshotPtr::quiesce),
//!    [`set`](SnapshotPtr::set) and `Drop` — take `&mut self` (or ownership), so the
//!    borrow checker proves no `load` reference is alive when values die.
//! 4. The Treiber push CAS loop owns the retired node until the CAS succeeds; a
//!    successful CAS transfers ownership to the stack. Concurrent pushes are
//!    linearized by the CAS on `retired`. The `free` pool is push-only under
//!    `&mut self` and pop-only under `&self`: pops never race a push, so the classic
//!    Treiber ABA window (a popped node re-pushed mid-CAS) cannot occur.
//! 5. `Send`/`Sync`: `SnapshotPtr<T>` owns `T` values and hands out `&T` to other
//!    threads, so it is `Sync` iff `T: Send + Sync` and `Send` iff `T: Send`, the
//!    same bounds an `RwLock<T>`-based design would impose.

#![allow(unsafe_code)]

use std::fmt;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, Ordering};

/// An intrusive snapshot node: the published value plus the link the retired stack
/// and free pool reuse once the node is replaced.
///
/// `value` is initialized for the current node and every retired node, and
/// uninitialized (dropped) for nodes on the free pool — see the module's soundness
/// argument, point 1.
struct Node<T> {
    value: MaybeUninit<T>,
    /// Null while the node is current; the retired/free stack link afterwards.
    /// Atomic so pushes can store through a shared reference while readers hold
    /// `&value`.
    next: AtomicPtr<Node<T>>,
}

impl<T> Node<T> {
    fn boxed(value: T) -> *mut Node<T> {
        Box::into_raw(Box::new(Node {
            value: MaybeUninit::new(value),
            next: AtomicPtr::new(ptr::null_mut()),
        }))
    }
}

/// An atomically replaceable, lock-free-readable snapshot pointer.
///
/// `load` is a single `Acquire` pointer load; `publish` swaps in a new heap snapshot
/// and parks the old one until [`quiesce`](Self::quiesce) (or drop) frees it under
/// exclusive access. See the module docs for the full reclamation contract.
pub struct SnapshotPtr<T> {
    current: AtomicPtr<Node<T>>,
    /// Parked snapshots (initialized values) awaiting the next quiescent point.
    retired: AtomicPtr<Node<T>>,
    /// Spare node allocations (values dropped); popped by `publish`.
    free: AtomicPtr<Node<T>>,
}

// SAFETY: see soundness argument point 5 in the module docs.
unsafe impl<T: Send + Sync> Sync for SnapshotPtr<T> {}
unsafe impl<T: Send> Send for SnapshotPtr<T> {}

impl<T> SnapshotPtr<T> {
    /// Creates a pointer whose initial snapshot is `value`.
    pub fn new(value: T) -> Self {
        Self {
            current: AtomicPtr::new(Node::boxed(value)),
            retired: AtomicPtr::new(ptr::null_mut()),
            free: AtomicPtr::new(ptr::null_mut()),
        }
    }

    /// Returns a reference to the current snapshot.
    ///
    /// Wait-free: one `Acquire` load. The reference stays valid for the lifetime of
    /// the `&self` borrow even if another thread publishes a replacement concurrently
    /// (the replaced snapshot is parked, not freed).
    #[inline]
    pub fn load(&self) -> &T {
        // SAFETY: `current` is always a live node with an initialized value (module
        // docs, points 1–3), and the returned borrow cannot outlive `self` while
        // any value-dropping operation requires `&mut self`.
        unsafe {
            (*self.current.load(Ordering::Acquire))
                .value
                .assume_init_ref()
        }
    }

    /// Publishes `value` as the new snapshot; the previous snapshot is parked until
    /// the next quiescent point. Reuses a pooled node when one is available —
    /// steady-state publishes are allocation-free — and parking never allocates.
    /// Callers that race publish full snapshots each; the last swap wins and every
    /// loser is parked, never leaked or double-freed.
    pub fn publish(&self, value: T) {
        let new = match self.pop_free() {
            Some(node) => {
                // SAFETY: free-pool nodes are exclusively owned by this thread after
                // a successful pop and their value slot is uninitialized (module
                // docs, points 1 and 4): writing a fresh value is a plain init.
                unsafe {
                    (*node).value.write(value);
                    (*node).next.store(ptr::null_mut(), Ordering::Relaxed);
                }
                node
            }
            None => Node::boxed(value),
        };
        let old = self.current.swap(new, Ordering::AcqRel);
        self.park(old);
    }

    /// Pops a spare node from the free pool. Pops never race pushes (pushes require
    /// `&mut self`), so the CAS loop is ABA-free.
    fn pop_free(&self) -> Option<*mut Node<T>> {
        loop {
            let head = self.free.load(Ordering::Acquire);
            if head.is_null() {
                return None;
            }
            // SAFETY: nodes on the free pool are live allocations; `next` is only
            // written by pushes, which cannot run concurrently (they take `&mut`).
            let next = unsafe { (*head).next.load(Ordering::Relaxed) };
            if self
                .free
                .compare_exchange_weak(head, next, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                return Some(head);
            }
        }
    }

    /// Pushes a replaced node onto the retired stack (Treiber push).
    fn park(&self, node: *mut Node<T>) {
        // SAFETY: `node` was just detached from `current` by this thread, which now
        // owns it exclusively apart from readers' `&value` borrows; storing to the
        // atomic `next` field does not touch `value` (module docs, point 2).
        let next = unsafe { &(*node).next };
        loop {
            let head = self.retired.load(Ordering::Relaxed);
            next.store(head, Ordering::Relaxed);
            if self
                .retired
                .compare_exchange_weak(head, node, Ordering::Release, Ordering::Relaxed)
                .is_ok()
            {
                break;
            }
        }
    }

    /// Mutable access to the current snapshot under exclusive access (readers
    /// cannot exist). Does not free parked garbage; pair with
    /// [`quiesce`](Self::quiesce).
    pub fn get_mut(&mut self) -> &mut T {
        // SAFETY: `current` is a live `Box<Node<T>>` and `&mut self` excludes all
        // concurrent loads and publishes.
        unsafe {
            (*self.current.load(Ordering::Acquire))
                .value
                .assume_init_mut()
        }
    }

    /// Replaces the snapshot under exclusive access, dropping the previous value
    /// and retiring all parked garbage to the free pool (no readers can exist).
    pub fn set(&mut self, value: T) {
        let new = Node::boxed(value);
        let old = self.current.swap(new, Ordering::AcqRel);
        // SAFETY: `&mut self` proves no outstanding `load` borrows; `old` is a live
        // node with an initialized value, owned solely by us after the swap.
        unsafe {
            (*old).value.assume_init_drop();
            self.push_free(old);
        }
        self.quiesce();
    }

    /// Drops every parked snapshot **value** and moves the nodes to the free pool
    /// for reuse; no memory is returned to the allocator. Requires `&mut self`,
    /// which proves no reader holds a reference into the garbage (all `load`
    /// borrows have ended).
    pub fn quiesce(&mut self) {
        let mut head = self.retired.swap(ptr::null_mut(), Ordering::Acquire);
        while !head.is_null() {
            // SAFETY: retired nodes are exclusively owned by the stack, initialized,
            // and `&mut self` excludes concurrent pushes, pops and readers.
            unsafe {
                let next = (*head).next.load(Ordering::Relaxed);
                (*head).value.assume_init_drop();
                self.push_free(head);
                head = next;
            }
        }
    }

    /// Pushes a value-dropped node onto the free pool. Only callable with exclusive
    /// access (all callers hold `&mut self`), upholding the pop-only-vs-push-only
    /// split of the pool.
    fn push_free(&mut self, node: *mut Node<T>) {
        let head = self.free.load(Ordering::Relaxed);
        // SAFETY: `node` is exclusively owned and its value slot is uninitialized.
        unsafe { (*node).next.store(head, Ordering::Relaxed) };
        self.free.store(node, Ordering::Release);
    }

    /// Number of parked snapshots (diagnostics/tests only; takes `&mut self` so the
    /// count is exact).
    pub fn retired_len(&mut self) -> usize {
        let mut count = 0;
        let mut head = self.retired.load(Ordering::Acquire);
        while !head.is_null() {
            count += 1;
            // SAFETY: `&mut self` excludes concurrent pushes/pops; nodes are live
            // until quiesced.
            head = unsafe { (*head).next.load(Ordering::Relaxed) };
        }
        count
    }

    /// Number of pooled spare nodes (diagnostics/tests only).
    pub fn pooled_len(&mut self) -> usize {
        let mut count = 0;
        let mut head = self.free.load(Ordering::Acquire);
        while !head.is_null() {
            count += 1;
            // SAFETY: `&mut self` excludes concurrent pops; nodes are live.
            head = unsafe { (*head).next.load(Ordering::Relaxed) };
        }
        count
    }
}

impl<T> Drop for SnapshotPtr<T> {
    fn drop(&mut self) {
        // Retired values must be dropped; quiesce moves the nodes to the pool so a
        // single pool walk can free everything.
        self.quiesce();
        let current = self.current.load(Ordering::Acquire);
        // SAFETY: owning drop; `current` is initialized with no outstanding
        // borrows, and pooled nodes hold no live values.
        unsafe {
            (*current).value.assume_init_drop();
            drop(Box::from_raw(current));
        }
        let mut head = self.free.load(Ordering::Acquire);
        while !head.is_null() {
            // SAFETY: pooled nodes are exclusively owned, values already dropped;
            // `MaybeUninit` performs no drop of its contents.
            unsafe {
                let node = Box::from_raw(head);
                head = node.next.load(Ordering::Relaxed);
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for SnapshotPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("SnapshotPtr").field(self.load()).finish()
    }
}

impl<T: Default> Default for SnapshotPtr<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn load_returns_latest_exclusive_set() {
        let mut ptr = SnapshotPtr::new(vec![1, 2]);
        assert_eq!(*ptr.load(), vec![1, 2]);
        ptr.set(vec![3]);
        assert_eq!(*ptr.load(), vec![3]);
        assert_eq!(ptr.retired_len(), 0);
    }

    #[test]
    fn get_mut_edits_in_place() {
        let mut ptr = SnapshotPtr::new(vec![1u32]);
        ptr.get_mut().push(2);
        assert_eq!(*ptr.load(), vec![1, 2]);
        assert_eq!(ptr.retired_len(), 0);
    }

    #[test]
    fn publish_parks_old_snapshots_until_quiesce() {
        let mut ptr = SnapshotPtr::new(0u64);
        for i in 1..=10 {
            ptr.publish(i);
        }
        assert_eq!(*ptr.load(), 10);
        assert_eq!(ptr.retired_len(), 10);
        ptr.quiesce();
        assert_eq!(ptr.retired_len(), 0);
        assert_eq!(*ptr.load(), 10);
    }

    #[test]
    fn reader_survives_concurrent_publish() {
        let ptr = SnapshotPtr::new(String::from("first"));
        let snapshot = ptr.load();
        ptr.publish(String::from("second"));
        // The old snapshot is parked, not freed: the borrow is still valid.
        assert_eq!(snapshot, "first");
        assert_eq!(ptr.load(), "second");
    }

    #[test]
    fn drop_frees_current_and_garbage() {
        struct CountsDrops(Arc<AtomicUsize>);
        impl Drop for CountsDrops {
            fn drop(&mut self) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let drops = Arc::new(AtomicUsize::new(0));
        let ptr = SnapshotPtr::new(CountsDrops(Arc::clone(&drops)));
        for _ in 0..5 {
            ptr.publish(CountsDrops(Arc::clone(&drops)));
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(ptr);
        assert_eq!(drops.load(Ordering::SeqCst), 6);
    }

    #[test]
    fn concurrent_publishers_and_readers_never_tear() {
        // Snapshots are (a, b) pairs with b == a * 7; readers must never observe a
        // torn pair, and parked garbage must keep old borrows valid.
        let ptr = Arc::new(SnapshotPtr::new((0u64, 0u64)));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let ptr = Arc::clone(&ptr);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let a = t * 10_000 + i;
                        ptr.publish((a, a * 7));
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let ptr = Arc::clone(&ptr);
                std::thread::spawn(move || {
                    for _ in 0..20_000 {
                        let (a, b) = *ptr.load();
                        assert_eq!(b, a * 7, "torn snapshot ({a}, {b})");
                    }
                })
            })
            .collect();
        for handle in writers.into_iter().chain(readers) {
            handle.join().unwrap();
        }
        let mut ptr = Arc::into_inner(ptr).expect("all clones joined");
        assert_eq!(ptr.retired_len(), 8_000);
        ptr.quiesce();
        assert_eq!(ptr.retired_len(), 0);
    }
}
