//! Lock-free multi-version cells: one per memory location.
//!
//! The paper describes MVMemory's data map as "a concurrent hashmap over access
//! paths, with lock-protected search trees for efficient txn_idx-based look-ups"
//! (§4). [`VersionedCell`] replaces the lock-protected search tree with a lock-free
//! design tuned for Block-STM's actual access pattern:
//!
//! * **Reads dominate** and must find the highest writer below a transaction index:
//!   the cell publishes an immutable, sorted slot array via [`SnapshotPtr`], so a
//!   read is an atomic pointer load plus a binary search — no lock, no allocation,
//!   no reference-count traffic.
//! * **Re-execution rewrites the same slots**: a transaction that re-executes after
//!   an abort almost always writes the same locations again. Rewriting an owned slot
//!   is an in-place publish of the new value plus one `Release` store of the slot's
//!   packed `(incarnation, tag)` state word — the slot array is untouched.
//! * **ESTIMATE marking and removal are flag stores**, not tree mutations: aborting
//!   an incarnation flips the owned slots' tag to `ESTIMATE`; an incarnation that
//!   stops writing a location tombstones its slot with the `EMPTY` tag.
//! * Only a **structural insert** — the first time a transaction ever writes the
//!   location — takes the cell's short mutex, and even then it almost never
//!   rebuilds the array: the published snapshot is a sorted **base** array plus a
//!   small append-only **tail** of [`OnceLock`] cells, and an insert just fills
//!   the next free tail cell (readers observe it through the `OnceLock`'s own
//!   release/acquire pairing, no array republish). Only a *full* tail triggers a
//!   merge-rebuild into a new base. Slots are `Arc`-shared between array
//!   versions, so concurrent in-place writes through an older array are never
//!   lost. Rebuilds **compact**: tombstoned slots are dropped, so array length
//!   (and rebuild cost) tracks the number of *live* writers of the location, not
//!   the all-time churn of write-sets — and the tail amortizes the rebuilds
//!   themselves, so a write-set that shifts every incarnation (fresh
//!   `(txn, location)` pairs each round, the `mvbench write-heavy` pattern) costs
//!   one array copy per `TAIL_CAPACITY` (8) inserts instead of one per
//!   insert.
//!
//! # Concurrency contract
//!
//! Per slot there is at most one mutator at a time: Block-STM's scheduler serializes
//! the incarnations of one transaction, and only the thread that executed (or
//! aborted) incarnation `i` touches transaction `i`'s entries. Readers are
//! unrestricted. Each slot is a single-writer seqlock over the packed state word
//! `(incarnation << 2) | tag`. A write publishes in three steps — state to
//! `(incarnation, WRITING)`, value pointer, state to `(incarnation, VALUE)` with
//! `Release` — and a reader loads the state, the value, then the state again,
//! accepting only two identical non-`WRITING` states. That pairing is exact:
//!
//! * every value publish is sandwiched between two stores of its own incarnation's
//!   state words, and incarnations never repeat within a block, so a reader that
//!   loaded a *newer* value than its state claims must observe a different state on
//!   the re-check (the value load's `Acquire` makes the preceding `WRITING` store
//!   visible) and retries;
//! * conversely, an accepted state word's `Release` store makes its own value
//!   publish visible, so the loaded value is never *older* than the state claims;
//! * a reader retries only while a writer is mid-publish on that very slot, which the
//!   single-writer rule makes rare and short.
//!
//! Replaced slot arrays and values are parked inside their [`SnapshotPtr`]s and freed
//! at the block boundary ([`VersionedCell::reset`], `&mut self`), so readers never
//! dereference freed memory — see `snapshot_ptr`'s soundness argument.

use crate::snapshot_ptr::SnapshotPtr;
use parking_lot::Mutex;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Structural inserts between two array rebuilds: each insert lands in a free
/// tail cell; the array is merged and republished only when the tail is full.
const TAIL_CAPACITY: usize = 8;

/// Tag bits of the packed slot state word.
const TAG_MASK: usize = 0b11;
/// The slot holds a value written by the tagged incarnation.
const TAG_VALUE: usize = 0;
/// The slot is an ESTIMATE marker left by an aborted incarnation.
const TAG_ESTIMATE: usize = 1;
/// The slot was tombstoned: a later incarnation stopped writing the location.
const TAG_EMPTY: usize = 2;
/// A value publish is in flight (seqlock in-progress marker); readers retry.
const TAG_WRITING: usize = 3;

#[inline]
const fn pack(incarnation: usize, tag: usize) -> usize {
    (incarnation << 2) | tag
}

/// One `(transaction, location)` entry: a single-writer seqlock over an RCU value.
struct Slot<V> {
    txn_idx: usize,
    /// `(incarnation << 2) | tag`; strictly monotonic, written with `Release`.
    state: AtomicUsize,
    value: SnapshotPtr<V>,
}

impl<V> Slot<V> {
    #[inline]
    fn state(&self) -> usize {
        self.state.load(Ordering::Acquire)
    }

    #[inline]
    fn publish_state(&self, state: usize) {
        self.state.store(state, Ordering::Release);
    }

    /// The seqlock write protocol: in-progress marker, value, final state word.
    /// The `WRITING` store is what lets readers reject a newer value paired with an
    /// older state when two writes follow each other with no estimate in between.
    #[inline]
    fn publish_in_place(&self, incarnation: usize, value: V) {
        self.publish_state(pack(incarnation, TAG_WRITING));
        self.value.publish(value);
        self.publish_state(pack(incarnation, TAG_VALUE));
    }
}

/// Result of [`VersionedCell::read`]: the highest live entry strictly below the
/// requested transaction index.
#[derive(Debug, PartialEq, Eq)]
pub enum CellRead<'a, V> {
    /// The highest lower entry is a value written by `(txn_idx, incarnation)`.
    Value {
        /// Index of the writing transaction.
        txn_idx: usize,
        /// Incarnation that produced the value.
        incarnation: usize,
        /// The written value, borrowed from the cell (valid for the cell borrow).
        value: &'a V,
    },
    /// The highest lower entry is an ESTIMATE marker left by `txn_idx`.
    Estimate {
        /// Index of the transaction whose abort left the marker.
        txn_idx: usize,
    },
    /// No transaction below the bound currently writes this location.
    Missing,
}

/// A slot reference with its owner's index **inlined**: `find`, the reads'
/// descending merge and the base's binary search compare `txn_idx` without
/// dereferencing the `Arc` — one cache line instead of a pointer chase per
/// probe. The inlined copy is written under exclusive slot ownership only
/// (insert and pooled reuse both hold the structural mutex with
/// `strong_count == 1`), so it always agrees with `slot.txn_idx`.
struct Keyed<V> {
    txn_idx: usize,
    slot: Arc<Slot<V>>,
}

impl<V> Keyed<V> {
    fn new(slot: Arc<Slot<V>>) -> Self {
        Self {
            txn_idx: slot.txn_idx,
            slot,
        }
    }
}

/// The RCU-published snapshot: a sorted base array plus a small append-only
/// overflow tail. The tail lets a structural insert publish a new slot without
/// copying the base — each `OnceLock` cell is written once (under the
/// structural mutex) and read lock-free; its release/acquire pairing hands a
/// fully initialized slot to every reader that observes it.
struct SlotArray<V> {
    /// Sorted (by `txn_idx`) array of `Arc`-shared slots.
    base: Vec<Keyed<V>>,
    /// Unsorted overflow, filled left to right; disjoint from `base` by
    /// `txn_idx`. Scanned linearly by readers (at most `TAIL_CAPACITY`).
    tail: [OnceLock<Keyed<V>>; TAIL_CAPACITY],
}

impl<V> SlotArray<V> {
    fn empty() -> Self {
        Self {
            base: Vec::new(),
            tail: Default::default(),
        }
    }

    fn with_base(base: Vec<Keyed<V>>) -> Self {
        Self {
            base,
            tail: Default::default(),
        }
    }

    /// Filled tail cells, in fill order.
    fn tail_slots(&self) -> impl Iterator<Item = &Keyed<V>> {
        self.tail.iter().map_while(|cell| cell.get())
    }

    /// Every slot, base then tail (no particular overall order).
    fn all_slots(&self) -> impl Iterator<Item = &Arc<Slot<V>>> {
        self.base
            .iter()
            .chain(self.tail_slots())
            .map(|keyed| &keyed.slot)
    }

    /// The slot owned by `txn_idx`, if any: binary search in the base, linear
    /// scan of the (tiny) tail — both over inlined indices, no `Arc` derefs.
    fn find(&self, txn_idx: usize) -> Option<&Arc<Slot<V>>> {
        self.base
            .binary_search_by(|keyed| keyed.txn_idx.cmp(&txn_idx))
            .ok()
            .map(|pos| &self.base[pos].slot)
            .or_else(|| {
                self.tail_slots()
                    .find(|keyed| keyed.txn_idx == txn_idx)
                    .map(|keyed| &keyed.slot)
            })
    }
}

/// A lock-free multi-version cell for one memory location. See the module docs for
/// the design and the single-writer-per-slot contract.
pub struct VersionedCell<V> {
    /// The published base-plus-tail slot snapshot.
    slots: SnapshotPtr<SlotArray<V>>,
    /// Serializes structural inserts (tail fills and array replacement) and
    /// holds the **slot pool**: slots whose transactions stopped writing the
    /// location by the end of a block are recycled here at [`reset`], and a
    /// later structural insert pops one instead of allocating — the slot's
    /// `Arc` and its value's `SnapshotPtr` node both get reused, so the
    /// write-set-churn worst case (`mvbench write-heavy`) runs allocation-free
    /// in steady state.
    ///
    /// [`reset`]: VersionedCell::reset
    structural: Mutex<Vec<Arc<Slot<V>>>>,
}

impl<V> Default for VersionedCell<V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<V> VersionedCell<V> {
    /// Creates an empty cell.
    pub fn new() -> Self {
        Self {
            slots: SnapshotPtr::new(SlotArray::empty()),
            structural: Mutex::new(Vec::new()),
        }
    }

    /// Builds a new sorted base from `snapshot`'s base, tail and `insert`,
    /// dropping tombstoned slots (compaction). Dropping an `EMPTY` slot cannot
    /// lose a write: only the slot's own transaction can revive it, and
    /// revivals take the structural mutex (see [`write`](Self::write)), so they
    /// are serialized with this rebuild.
    fn rebuilt_with(snapshot: &SlotArray<V>, insert: Keyed<V>) -> Vec<Keyed<V>> {
        let mut new = Vec::with_capacity(snapshot.base.len() + TAIL_CAPACITY + 1);
        new.push(insert);
        for keyed in snapshot.base.iter().chain(snapshot.tail_slots()) {
            debug_assert_ne!(keyed.txn_idx, new[0].txn_idx);
            if keyed.slot.state() & TAG_MASK != TAG_EMPTY {
                new.push(Keyed {
                    txn_idx: keyed.txn_idx,
                    slot: Arc::clone(&keyed.slot),
                });
            }
        }
        new.sort_unstable_by_key(|keyed| keyed.txn_idx);
        new
    }

    /// Publishes `value` as the write of `(txn_idx, incarnation)`.
    ///
    /// Callers must publish **at most once per `(txn_idx, incarnation)`** (dedup
    /// write-sets first): a second publish would repeat an identical state word and
    /// reopen the seqlock pairing ambiguity the `WRITING` marker closes.
    ///
    /// One audited exception: a **refining** republish — replacing the payload
    /// with a semantically equivalent one (the commit drain folding a committed
    /// delta entry into its resolved concrete value) — is permitted. The
    /// ambiguity the rule guards against is a reader pairing an old state word
    /// with a *different-meaning* newer value; when both payloads resolve
    /// identically for every reader, either pairing is correct. The refiner must
    /// be the slot's sole remaining mutator (true after commit: the scheduler
    /// never re-executes a committed transaction).
    ///
    /// In-place (lock-free) when the transaction already owns a **live** slot — the
    /// common re-execution case. Reviving a tombstoned slot or inserting a new one
    /// takes the structural mutex: a compacting rebuild may only drop `EMPTY`
    /// slots, and the mutex serializes it against the one thread (the slot's own
    /// transaction) that could concurrently flip that slot live again — without
    /// it, a rebuild could capture the slot as `EMPTY`, race the revival, and
    /// publish an array that silently drops the revived write. An insert fills
    /// the next free tail cell when one exists; only a full tail pays for a
    /// merge-rebuild of the array. Returns `true` if a structural insert was
    /// performed.
    pub fn write(&self, txn_idx: usize, incarnation: usize, value: V) -> bool {
        let snapshot = self.slots.load();
        if let Some(slot) = snapshot.find(txn_idx) {
            // Only this transaction tombstones or revives its slot, so the tag
            // observed here is stable until we act on it.
            if slot.state() & TAG_MASK != TAG_EMPTY {
                slot.publish_in_place(incarnation, value);
                return false;
            }
        }
        let mut pool = self.structural.lock();
        // Re-load under the lock: a structural rebuild may have republished (or
        // compacted the tombstoned slot out of) the array.
        let snapshot = self.slots.load();
        if let Some(slot) = snapshot.find(txn_idx) {
            // Revival (or a slot that appeared since the optimistic check):
            // in place, serialized with rebuilds by the mutex.
            slot.publish_in_place(incarnation, value);
            return false;
        }
        let slot = match pool.pop() {
            Some(mut recycled) => {
                // Pooled slots are exclusively owned (checked at reset, and the
                // pool is only touched under this mutex), so re-targeting the
                // slot to a new transaction is plain mutation — no allocation
                // for the slot, none for its value node.
                let inner = Arc::get_mut(&mut recycled).expect("pooled slots have no other owners");
                inner.txn_idx = txn_idx;
                *inner.state.get_mut() = pack(incarnation, TAG_VALUE);
                *inner.value.get_mut() = value;
                recycled
            }
            None => Arc::new(Slot {
                txn_idx,
                state: AtomicUsize::new(pack(incarnation, TAG_VALUE)),
                value: SnapshotPtr::new(value),
            }),
        };
        if let Some(free) = snapshot.tail.iter().find(|cell| cell.get().is_none()) {
            // The cheap structural insert: publish through the tail cell, no
            // array copy. Setting cannot fail — fills are serialized by the
            // structural mutex held here.
            free.set(Keyed::new(slot))
                .ok()
                .expect("tail fills hold the mutex");
        } else {
            let new = Self::rebuilt_with(snapshot, Keyed::new(slot));
            self.slots.publish(SlotArray::with_base(new));
        }
        true
    }

    /// Flips `txn_idx`'s slot to an ESTIMATE marker (dependency hint for readers).
    /// Returns `false` if the transaction holds no slot (callers treat that as an
    /// accounting bug and `debug_assert` on it).
    pub fn mark_estimate(&self, txn_idx: usize) -> bool {
        match self.slots.load().find(txn_idx) {
            Some(slot) => {
                // Single mutator per slot: plain read-modify-write is race-free.
                let state = slot.state();
                slot.publish_state((state & !TAG_MASK) | TAG_ESTIMATE);
                true
            }
            None => false,
        }
    }

    /// Tombstones `txn_idx`'s slot: incarnation `removing_incarnation` of the same
    /// transaction no longer writes this location. Returns `false` if no slot exists.
    ///
    /// The tombstone carries the *removing* incarnation so the state word stays
    /// monotonic (`pack(k, ESTIMATE) < pack(k + 1, EMPTY) < pack(k + 2, VALUE)`).
    pub fn remove(&self, txn_idx: usize, removing_incarnation: usize) -> bool {
        match self.slots.load().find(txn_idx) {
            Some(slot) => {
                slot.publish_state(pack(removing_incarnation, TAG_EMPTY));
                true
            }
            None => false,
        }
    }

    /// Returns the highest live entry strictly below `bound` (Algorithm 2's `read`):
    /// a value, an ESTIMATE dependency, or [`CellRead::Missing`].
    ///
    /// Lock-free and allocation-free: snapshot load, binary search in the base,
    /// a sort of the (at most `TAIL_CAPACITY`) tail candidates on the stack,
    /// then a descending merge; per candidate slot a seqlock read that retries
    /// only while that slot's single writer is mid-publish.
    pub fn read(&self, bound: usize) -> CellRead<'_, V> {
        let snapshot = self.slots.load();
        let mut cursor = DescendingSlots::below(snapshot, bound);
        while let Some(slot) = cursor.next_highest() {
            loop {
                let s1 = slot.state();
                match s1 & TAG_MASK {
                    TAG_EMPTY => break, // tombstone: fall through to the next lower slot
                    TAG_ESTIMATE => {
                        return CellRead::Estimate {
                            txn_idx: slot.txn_idx,
                        }
                    }
                    TAG_WRITING => {
                        // The slot's writer is mid-publish; its store is a handful
                        // of instructions away.
                        std::hint::spin_loop();
                    }
                    _ => {
                        let value = slot.value.load();
                        if slot.state() == s1 {
                            return CellRead::Value {
                                txn_idx: slot.txn_idx,
                                incarnation: s1 >> 2,
                                value,
                            };
                        }
                        // A writer replaced the value mid-read: retry this slot.
                    }
                }
            }
        }
        CellRead::Missing
    }

    /// Like [`read`](Self::read), for callers that know every transaction below
    /// `bound` has **committed** (the rolling commit ladder's frozen prefix): no
    /// writer below the bound can ever touch its slot again, so the seqlock
    /// re-check is skipped — a committed read is one state load, one value load.
    ///
    /// ESTIMATE markers and in-flight publishes are impossible below a committed
    /// bound; encountering one is an accounting bug upstream (`debug_assert`), and
    /// release builds fall back to the full seqlock read for safety.
    pub fn read_committed(&self, bound: usize) -> CellRead<'_, V> {
        let snapshot = self.slots.load();
        let mut cursor = DescendingSlots::below(snapshot, bound);
        while let Some(slot) = cursor.next_highest() {
            let state = slot.state();
            match state & TAG_MASK {
                TAG_EMPTY => continue, // old tombstone of a committed txn
                TAG_VALUE => {
                    return CellRead::Value {
                        txn_idx: slot.txn_idx,
                        incarnation: state >> 2,
                        value: slot.value.load(),
                    };
                }
                _ => {
                    debug_assert!(
                        false,
                        "estimate/in-flight publish below a committed bound ({bound})"
                    );
                    return self.read(bound);
                }
            }
        }
        CellRead::Missing
    }

    /// Number of live (non-tombstoned) entries; used by tests and metrics.
    pub fn live_entries(&self) -> usize {
        self.slots
            .load()
            .all_slots()
            .filter(|slot| slot.state() & TAG_MASK != TAG_EMPTY)
            .count()
    }

    /// Current slot count (base plus tail) including tombstones (diagnostics).
    pub fn slot_count(&self) -> usize {
        self.slots.load().all_slots().count()
    }

    /// Re-arms the cell for the next block and frees all parked garbage. `&mut
    /// self` is the quiescent point: no reader can hold a borrow into the cell.
    ///
    /// The slot array is **kept** and every slot tombstoned in place: the next
    /// block's transactions overwhelmingly write the same locations, and a write
    /// into a kept slot is an in-place revival — it briefly takes the structural
    /// mutex (as every revival does) but performs no array rebuild and no slot
    /// allocation. (Resetting a state word downwards is safe only here, where
    /// `&mut` guarantees no concurrent reader — the per-slot state ordering the
    /// seqlock relies on is a per-epoch property.) Slots pinned by a leaked
    /// external reference force a full rebuild of the array instead.
    pub fn reset(&mut self) {
        self.slots.quiesce();
        let pool = self.structural.get_mut();
        let snapshot = self.slots.get_mut();
        // Fold the tail into the base so the next block's revivals all take the
        // cheap binary-search path and the tail is free again.
        for cell in snapshot.tail.iter_mut() {
            if let Some(keyed) = cell.take() {
                snapshot.base.push(keyed);
            }
        }
        let all_exclusive = snapshot
            .base
            .iter()
            .all(|keyed| Arc::strong_count(&keyed.slot) == 1);
        if !all_exclusive {
            // Slots pinned by a leaked external reference: rebuild from scratch
            // (rare; only tests that squirrel away handles hit this).
            self.slots.set(SlotArray::empty());
            pool.clear();
            return;
        }
        // Split the slots by how the block left them. A slot still LIVE at the
        // block boundary marks a `(txn, location)` pair that tends to repeat in
        // the next block (re-executed identical blocks, hot locations): keep it
        // in place, tombstoned, so the next write is an in-place revival. A
        // slot already TOMBSTONED marks write-set churn — its transaction
        // stopped writing the location — so its pair is unlikely to recur:
        // recycle it through the pool, where the next structural insert (for
        // whatever transaction) reuses the allocation.
        snapshot.base.retain_mut(|keyed| {
            let slot = Arc::get_mut(&mut keyed.slot).expect("strong_count checked above");
            let dead = *slot.state.get_mut() & TAG_MASK == TAG_EMPTY;
            *slot.state.get_mut() = pack(0, TAG_EMPTY);
            // The last block's value stays allocated (recycled storage, never
            // readable behind the EMPTY tag); parked replacements are freed.
            slot.value.quiesce();
            if dead {
                pool.push(Arc::clone(&keyed.slot));
            }
            !dead
        });
        snapshot.base.sort_unstable_by_key(|keyed| keyed.txn_idx);
    }
}

/// Descending-by-`txn_idx` cursor over a snapshot's slots strictly below a
/// bound: the binary-searched base prefix walked right to left, merged on the
/// fly with the tail candidates (sorted once into a stack array — at most
/// `TAIL_CAPACITY` entries, so no allocation). Base and tail are disjoint by
/// `txn_idx`, so the merge never ties.
struct DescendingSlots<'a, V> {
    base: &'a [Keyed<V>],
    tail: [Option<&'a Keyed<V>>; TAIL_CAPACITY],
    tail_pos: usize,
}

impl<'a, V> DescendingSlots<'a, V> {
    fn below(snapshot: &'a SlotArray<V>, bound: usize) -> Self {
        let base_end = snapshot.base.partition_point(|keyed| keyed.txn_idx < bound);
        let mut tail: [Option<&'a Keyed<V>>; TAIL_CAPACITY] = [None; TAIL_CAPACITY];
        let mut tail_len = 0;
        for keyed in snapshot.tail_slots() {
            if keyed.txn_idx < bound {
                tail[tail_len] = Some(keyed);
                tail_len += 1;
            }
        }
        tail[..tail_len]
            .sort_unstable_by_key(|keyed| std::cmp::Reverse(keyed.expect("filled above").txn_idx));
        Self {
            base: &snapshot.base[..base_end],
            tail,
            tail_pos: 0,
        }
    }

    fn next_highest(&mut self) -> Option<&'a Slot<V>> {
        let base_top = self.base.split_last();
        let tail_top = self.tail.get(self.tail_pos).copied().flatten();
        match (base_top, tail_top) {
            (None, None) => None,
            (Some((keyed, rest)), tail) if tail.is_none_or(|t| keyed.txn_idx > t.txn_idx) => {
                self.base = rest;
                Some(keyed.slot.as_ref())
            }
            (_, Some(keyed)) => {
                self.tail_pos += 1;
                Some(keyed.slot.as_ref())
            }
            (_, None) => unreachable!("covered by the first two arms"),
        }
    }
}

impl<V: fmt::Debug> fmt::Debug for VersionedCell<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let slots = self.slots.load();
        let mut map = f.debug_map();
        for slot in slots.all_slots() {
            let state = slot.state();
            let tag = match state & TAG_MASK {
                TAG_VALUE => "value",
                TAG_ESTIMATE => "estimate",
                TAG_WRITING => "writing",
                _ => "empty",
            };
            map.entry(&slot.txn_idx, &format_args!("inc {} {tag}", state >> 2));
        }
        map.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};

    #[test]
    fn empty_cell_reads_missing() {
        let cell: VersionedCell<u64> = VersionedCell::new();
        assert_eq!(cell.read(5), CellRead::Missing);
        assert_eq!(cell.live_entries(), 0);
    }

    #[test]
    fn read_returns_highest_lower_entry() {
        let cell = VersionedCell::new();
        assert!(cell.write(1, 0, 100u64));
        assert!(cell.write(3, 0, 300));
        assert!(cell.write(6, 0, 600));
        match cell.read(5) {
            CellRead::Value {
                txn_idx,
                incarnation,
                value,
            } => {
                assert_eq!((txn_idx, incarnation, *value), (3, 0, 300));
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cell.read(1), CellRead::Missing);
        assert!(matches!(
            cell.read(usize::MAX),
            CellRead::Value { txn_idx: 6, .. }
        ));
    }

    #[test]
    fn rewrite_is_in_place_and_bumps_incarnation() {
        let cell = VersionedCell::new();
        assert!(cell.write(2, 0, 10u64)); // structural
        assert!(!cell.write(2, 1, 11)); // in place
        match cell.read(4) {
            CellRead::Value {
                incarnation, value, ..
            } => {
                assert_eq!(incarnation, 1);
                assert_eq!(*value, 11);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cell.slot_count(), 1);
    }

    #[test]
    fn estimate_and_tombstone_transitions() {
        let cell = VersionedCell::new();
        cell.write(2, 0, 20u64);
        assert!(cell.mark_estimate(2));
        assert_eq!(cell.read(5), CellRead::Estimate { txn_idx: 2 });
        // The writer itself looks below its own index: no entry.
        assert_eq!(cell.read(2), CellRead::Missing);
        // Next incarnation stops writing the location.
        assert!(cell.remove(2, 1));
        assert_eq!(cell.read(5), CellRead::Missing);
        assert_eq!(cell.live_entries(), 0);
        // A later incarnation writes it again: in place, no structural churn.
        assert!(!cell.write(2, 2, 22));
        assert!(matches!(
            cell.read(5),
            CellRead::Value { incarnation: 2, .. }
        ));
    }

    #[test]
    fn read_committed_matches_read_on_settled_prefixes() {
        let cell = VersionedCell::new();
        cell.write(0, 0, 5u64);
        cell.write(2, 1, 25);
        cell.write(4, 0, 45);
        cell.remove(2, 2); // txn 2's final incarnation stopped writing
        for bound in [1usize, 3, 5, 8] {
            assert_eq!(
                cell.read_committed(bound),
                cell.read(bound),
                "bound {bound}"
            );
        }
        assert_eq!(cell.read_committed(0), CellRead::Missing);
        match cell.read_committed(3) {
            CellRead::Value { txn_idx, value, .. } => assert_eq!((txn_idx, *value), (0, 5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn tombstones_are_skipped_during_reads() {
        let cell = VersionedCell::new();
        cell.write(1, 0, 1u64);
        cell.write(4, 0, 4);
        cell.remove(4, 1);
        match cell.read(6) {
            CellRead::Value { txn_idx, value, .. } => {
                assert_eq!((txn_idx, *value), (1, 1));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn missing_slots_reject_estimate_and_remove() {
        let cell: VersionedCell<u64> = VersionedCell::new();
        assert!(!cell.mark_estimate(3));
        assert!(!cell.remove(3, 1));
    }

    #[test]
    fn reset_clears_slots() {
        let mut cell = VersionedCell::new();
        for txn in 0..8 {
            cell.write(txn, 0, txn as u64);
        }
        assert_eq!(cell.slot_count(), 8);
        cell.reset();
        // Slots are kept (tombstoned) so the next block revives them in place.
        assert_eq!(cell.slot_count(), 8);
        assert_eq!(cell.live_entries(), 0);
        assert_eq!(cell.read(8), CellRead::Missing);
        assert!(!cell.write(1, 0, 9), "revival is in place, not structural");
        assert_eq!(cell.live_entries(), 1);
        match cell.read(5) {
            CellRead::Value {
                txn_idx,
                incarnation,
                value,
            } => assert_eq!((txn_idx, incarnation, *value), (1, 0, 9)),
            other => panic!("unexpected {other:?}"),
        }
    }

    /// The satellite stress test: 8 threads (4 single-writer mutators, 4 readers)
    /// race publishes, estimates, tombstones and reads. Readers assert the seqlock
    /// invariant — an observed `(incarnation, value)` pair is always consistent —
    /// which fails loudly if value/state publication ever tears.
    #[test]
    fn eight_thread_publish_read_races_stay_consistent() {
        const TXNS_PER_WRITER: usize = 4;
        const ROUNDS: usize = 300;
        let cell: Arc<VersionedCell<u64>> = Arc::new(VersionedCell::new());
        let stop = Arc::new(AtomicBool::new(false));

        // value = txn * 1_000_000 + incarnation: readers can re-derive the expected
        // value from the version they observed.
        let writers: Vec<_> = (0..4usize)
            .map(|w| {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || {
                    // Writer w exclusively owns transactions w, 4+w, 8+w, 12+w —
                    // the module's single-mutator-per-slot contract.
                    for round in 0..ROUNDS {
                        for t in 0..TXNS_PER_WRITER {
                            let txn = t * 4 + w;
                            let incarnation = round * 3;
                            cell.write(txn, incarnation, (txn * 1_000_000 + incarnation) as u64);
                            cell.mark_estimate(txn);
                            let next = incarnation + 1;
                            if round % 5 == w % 5 {
                                cell.remove(txn, next);
                            } else {
                                cell.write(txn, next, (txn * 1_000_000 + next) as u64);
                            }
                        }
                    }
                })
            })
            .collect();
        let readers: Vec<_> = (0..4usize)
            .map(|r| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut observed = 0u64;
                    let mut bound = r + 1;
                    while !stop.load(Ordering::Relaxed) {
                        match cell.read(bound) {
                            CellRead::Value {
                                txn_idx,
                                incarnation,
                                value,
                            } => {
                                assert!(txn_idx < bound);
                                assert_eq!(
                                    *value,
                                    (txn_idx * 1_000_000 + incarnation) as u64,
                                    "torn (version, value) pair"
                                );
                                observed += 1;
                            }
                            CellRead::Estimate { txn_idx } => assert!(txn_idx < bound),
                            CellRead::Missing => {}
                        }
                        bound = bound % 16 + 1;
                    }
                    observed
                })
            })
            .collect();
        for writer in writers {
            writer.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let mut total_observed = 0;
        for reader in readers {
            total_observed += reader.join().unwrap();
        }
        assert!(total_observed > 0, "readers never observed a value");
        // Final state is deterministic per txn: last round had incarnation 3*(ROUNDS-1)+1
        // either written or tombstoned.
        let final_inc = (ROUNDS - 1) * 3 + 1;
        for txn in 0..16 {
            let w = txn % 4;
            let removed = (ROUNDS - 1) % 5 == w % 5;
            match cell.read(txn + 1) {
                CellRead::Value {
                    txn_idx,
                    incarnation,
                    value,
                } => {
                    if removed {
                        // Tombstoned: the read falls through to a lower live slot.
                        assert!(txn_idx < txn, "txn {txn} should be tombstoned");
                        assert_eq!(*value, (txn_idx * 1_000_000 + incarnation) as u64);
                    } else {
                        assert_eq!(txn_idx, txn);
                        assert_eq!(incarnation, final_inc);
                        assert_eq!(*value, (txn * 1_000_000 + final_inc) as u64);
                    }
                }
                CellRead::Missing => {
                    assert!(removed, "txn {txn} should hold its final write");
                }
                other => panic!("txn {txn}: unexpected final state {other:?}"),
            }
        }
    }
}
