//! Cache-line padding to avoid false sharing.
//!
//! The Block-STM scheduler keeps several very hot atomic counters (`execution_idx`,
//! `validation_idx`, `decrease_cnt`, `num_active_tasks`) that are updated by every
//! worker thread. Placing them on the same cache line would serialize those updates
//! through cache-coherence traffic; the paper explicitly mentions using "the standard
//! cache padding technique to mitigate false sharing" (§4). [`CachePadded`] aligns its
//! contents to a 128-byte boundary (two 64-byte lines, matching the prefetcher pair on
//! most x86-64 and Apple silicon parts) and pads the value out to that size.

use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// Pads and aligns a value to 128 bytes so that two [`CachePadded`] values never share
/// a cache line (nor a spatial-prefetch pair of lines).
#[derive(Default, Debug)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line padded cell.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

impl<T: Clone> Clone for CachePadded<T> {
    fn clone(&self) -> Self {
        Self::new(self.value.clone())
    }
}

/// A cache-padded `AtomicUsize` with convenience accessors.
///
/// All operations use [`Ordering::SeqCst`]: the scheduler's completion detection
/// (`check_done`, Theorem 1 in the paper) relies on a double-collect over several
/// counters and is much easier to reason about under sequential consistency. The cost
/// is negligible relative to transaction execution.
#[derive(Default, Debug)]
pub struct PaddedAtomicUsize {
    inner: CachePadded<AtomicUsize>,
}

impl PaddedAtomicUsize {
    /// Creates a counter with the given initial value.
    pub const fn new(value: usize) -> Self {
        Self {
            inner: CachePadded::new(AtomicUsize::new(value)),
        }
    }

    /// Loads the current value.
    pub fn load(&self) -> usize {
        self.inner.load(Ordering::SeqCst)
    }

    /// Stores a new value.
    pub fn store(&self, value: usize) {
        self.inner.store(value, Ordering::SeqCst);
    }

    /// Atomically adds `delta` and returns the previous value.
    pub fn fetch_add(&self, delta: usize) -> usize {
        self.inner.fetch_add(delta, Ordering::SeqCst)
    }

    /// Atomically subtracts `delta` and returns the previous value.
    ///
    /// # Panics
    /// Panics in debug builds if the counter would underflow (this indicates a
    /// scheduler accounting bug, e.g. decrementing `num_active_tasks` twice).
    pub fn fetch_sub(&self, delta: usize) -> usize {
        let prev = self.inner.fetch_sub(delta, Ordering::SeqCst);
        debug_assert!(prev >= delta, "atomic counter underflow: {prev} - {delta}");
        prev
    }

    /// Atomically increments and returns the previous value.
    pub fn increment(&self) -> usize {
        self.fetch_add(1)
    }

    /// Atomically decrements and returns the previous value.
    pub fn decrement(&self) -> usize {
        self.fetch_sub(1)
    }

    /// Atomically lowers the value to `min(current, target)` and returns the value
    /// observed before the operation.
    pub fn fetch_min(&self, target: usize) -> usize {
        self.inner.fetch_min(target, Ordering::SeqCst)
    }

    /// Exposes the raw atomic for callers that need compare-exchange loops.
    pub fn raw(&self) -> &AtomicUsize {
        &self.inner
    }
}

/// A cache-padded `AtomicU64` counter (used by the metrics crate).
#[derive(Default, Debug)]
pub struct PaddedAtomicU64 {
    inner: CachePadded<AtomicU64>,
}

impl PaddedAtomicU64 {
    /// Creates a counter with the given initial value.
    pub const fn new(value: u64) -> Self {
        Self {
            inner: CachePadded::new(AtomicU64::new(value)),
        }
    }

    /// Loads the current value (relaxed: metrics do not order other memory accesses).
    pub fn load(&self) -> u64 {
        self.inner.load(Ordering::Relaxed)
    }

    /// Adds `delta` to the counter.
    pub fn add(&self, delta: u64) {
        self.inner.fetch_add(delta, Ordering::Relaxed);
    }

    /// Increments the counter by one.
    pub fn increment(&self) {
        self.add(1);
    }

    /// Resets the counter to zero.
    pub fn reset(&self) {
        self.inner.store(0, Ordering::Relaxed);
    }

    /// Stores the maximum of the current value and `value`.
    pub fn fetch_max(&self, value: u64) {
        self.inner.fetch_max(value, Ordering::Relaxed);
    }
}

/// A cache-padded `AtomicBool` (the scheduler's `done_marker`).
#[derive(Default, Debug)]
pub struct PaddedAtomicBool {
    inner: CachePadded<AtomicBool>,
}

impl PaddedAtomicBool {
    /// Creates a flag with the given initial value.
    pub const fn new(value: bool) -> Self {
        Self {
            inner: CachePadded::new(AtomicBool::new(value)),
        }
    }

    /// Loads the current value.
    pub fn load(&self) -> bool {
        self.inner.load(Ordering::SeqCst)
    }

    /// Stores a new value.
    pub fn store(&self, value: bool) {
        self.inner.store(value, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn cache_padded_is_at_least_128_bytes_and_aligned() {
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
    }

    #[test]
    fn cache_padded_deref_roundtrip() {
        let mut cell = CachePadded::new(41u32);
        *cell += 1;
        assert_eq!(*cell, 42);
        assert_eq!(cell.into_inner(), 42);
    }

    #[test]
    fn padded_usize_basic_ops() {
        let counter = PaddedAtomicUsize::new(10);
        assert_eq!(counter.load(), 10);
        assert_eq!(counter.increment(), 10);
        assert_eq!(counter.decrement(), 11);
        assert_eq!(counter.fetch_add(5), 10);
        assert_eq!(counter.fetch_sub(3), 15);
        assert_eq!(counter.load(), 12);
        counter.store(100);
        assert_eq!(counter.load(), 100);
    }

    #[test]
    fn padded_usize_fetch_min_only_lowers() {
        let counter = PaddedAtomicUsize::new(10);
        assert_eq!(counter.fetch_min(5), 10);
        assert_eq!(counter.load(), 5);
        assert_eq!(counter.fetch_min(8), 5);
        assert_eq!(counter.load(), 5);
    }

    #[test]
    fn padded_bool_store_load() {
        let flag = PaddedAtomicBool::new(false);
        assert!(!flag.load());
        flag.store(true);
        assert!(flag.load());
    }

    #[test]
    fn padded_u64_metrics_ops() {
        let counter = PaddedAtomicU64::new(0);
        counter.increment();
        counter.add(9);
        assert_eq!(counter.load(), 10);
        counter.fetch_max(5);
        assert_eq!(counter.load(), 10);
        counter.fetch_max(25);
        assert_eq!(counter.load(), 25);
        counter.reset();
        assert_eq!(counter.load(), 0);
    }

    #[test]
    fn padded_usize_concurrent_increments_are_not_lost() {
        let counter = Arc::new(PaddedAtomicUsize::new(0));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        counter.increment();
                    }
                })
            })
            .collect();
        for handle in threads {
            handle.join().unwrap();
        }
        assert_eq!(counter.load(), 80_000);
    }
}
