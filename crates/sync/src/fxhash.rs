//! A fast, non-cryptographic hasher for hot-path hash maps.
//!
//! `std`'s default hasher is SipHash-1-3: a keyed hash with DoS-resistance
//! guarantees that the Block-STM hot path does not need — access paths are not
//! attacker-chosen hash-flooding vectors within a single block execution, and every
//! speculative read and write pays the hashing cost at least once. [`FxHasher`]
//! implements the multiply-xor hash popularized by the Rust compiler (`rustc-hash` /
//! Firefox's `FxHash`): one rotate, one xor and one multiply per 8-byte word, which
//! benchmarks several times faster than SipHash on the short fixed-width keys
//! (`u64`s, small structs of integers) used as memory locations here.
//!
//! The hasher is used in two places on the multi-version memory hot path:
//!
//! 1. [`ShardedMap`](crate::ShardedMap) — both shard selection and the per-shard
//!    `HashMap`s default to [`FxBuildHasher`].
//! 2. The per-worker location caches in `block-stm-mvmemory`, which memoize the
//!    `location → versioned cell` resolution so that steady-state accesses do not
//!    touch the sharded map at all.

use std::hash::{BuildHasher, Hasher};

/// The multiplier of the multiply-xor mix; chosen (as in `rustc-hash`) close to the
/// golden ratio so consecutive small integers spread across the whole word.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast multiply-xor [`Hasher`] (FxHash). Not DoS-resistant — use only for
/// process-internal keys.
#[derive(Debug, Clone, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    /// Creates a hasher with the zero initial state.
    pub const fn new() -> Self {
        Self { hash: 0 }
    }

    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, mut bytes: &[u8]) {
        while bytes.len() >= 8 {
            let (word, rest) = bytes.split_at(8);
            self.add_to_hash(u64::from_ne_bytes(word.try_into().expect("8-byte chunk")));
            bytes = rest;
        }
        if bytes.len() >= 4 {
            let (word, rest) = bytes.split_at(4);
            self.add_to_hash(u64::from(u32::from_ne_bytes(
                word.try_into().expect("4-byte chunk"),
            )));
            bytes = rest;
        }
        for &byte in bytes {
            self.add_to_hash(u64::from(byte));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_to_hash(i as u64);
        self.add_to_hash((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// A [`BuildHasher`] producing [`FxHasher`]s; plug-compatible with
/// `std::collections::HashMap`'s hasher parameter.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxBuildHasher;

impl BuildHasher for FxBuildHasher {
    type Hasher = FxHasher;

    #[inline]
    fn build_hasher(&self) -> FxHasher {
        FxHasher::new()
    }
}

/// A `HashMap` keyed with [`FxBuildHasher`] — the map type of the per-worker
/// location caches.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn fx_hash_one(value: impl Hash) -> u64 {
        FxBuildHasher.hash_one(value)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        assert_eq!(fx_hash_one(42u64), fx_hash_one(42u64));
        assert_eq!(fx_hash_one("access/path"), fx_hash_one("access/path"));
        assert_eq!(fx_hash_one((7u64, 9u32)), fx_hash_one((7u64, 9u32)));
    }

    #[test]
    fn distinct_small_integers_spread_over_word() {
        // The shard index is taken from the low bits; consecutive integers must not
        // collapse onto a handful of shard values.
        let mask = 255u64;
        let mut seen = std::collections::HashSet::new();
        for i in 0..256u64 {
            seen.insert(fx_hash_one(i) & mask);
        }
        assert!(seen.len() > 128, "only {} distinct shard slots", seen.len());
    }

    #[test]
    fn byte_slices_hash_by_content() {
        let a = fx_hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13].as_slice());
        let b = fx_hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13].as_slice());
        let c = fx_hash_one([1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 14].as_slice());
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn fx_hash_map_round_trips() {
        let mut map: FxHashMap<u64, u64> = FxHashMap::default();
        for i in 0..1_000 {
            map.insert(i, i * 3);
        }
        assert_eq!(map.len(), 1_000);
        assert_eq!(map.get(&999), Some(&2_997));
    }
}
