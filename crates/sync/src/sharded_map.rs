//! A lock-sharded concurrent hash map.
//!
//! Block-STM "implements the data map in MVMemory as a concurrent hashmap over access
//! paths, with lock-protected search trees for efficient txn_idx-based look-ups" (§4).
//! [`ShardedMap`] is the concurrent-hashmap half of that design: the key space is
//! partitioned across a power-of-two number of shards, each protected by its own
//! `parking_lot::RwLock`. Per-location search trees (`BTreeMap<TxnIndex, _>`) are the
//! *values* stored by `MVMemory` inside this map.
//!
//! The API is closure-based (`read_with`, `mutate`) rather than guard-based so that
//! callers cannot accidentally hold a shard lock across a long computation such as a
//! VM execution.
//!
//! Hashing defaults to [`FxBuildHasher`]: keys are process-internal access paths, so
//! SipHash's flooding resistance buys nothing while its latency sits on the hot
//! path. The hasher is a type parameter (`ShardedMap<K, V, S>`) so benchmarks can
//! still instantiate the historical SipHash flavor (`ShardedMap<K, V, RandomState>`)
//! for old-vs-new comparisons.

use crate::fxhash::FxBuildHasher;
use crate::padded::CachePadded;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hash};

/// Default number of shards; chosen to comfortably exceed the thread counts used in
/// the paper's evaluation (up to 32) so that shard contention is negligible.
pub const DEFAULT_SHARDS: usize = 256;

/// A concurrent hash map sharded over independently locked `HashMap`s.
///
/// Each shard is cache-padded so that the lock words of adjacent shards never share a
/// cache line: shard locks are taken (and therefore written) by every reader, and
/// false sharing between hot shards measurably hurts read-heavy workloads.
#[derive(Debug)]
pub struct ShardedMap<K, V, S = FxBuildHasher> {
    shards: Vec<CachePadded<RwLock<HashMap<K, V, S>>>>,
    hasher: S,
    mask: usize,
}

impl<K, V, S> Default for ShardedMap<K, V, S>
where
    K: Hash + Eq,
    S: BuildHasher + Default,
{
    fn default() -> Self {
        Self::new(DEFAULT_SHARDS)
    }
}

impl<K, V, S> ShardedMap<K, V, S>
where
    K: Hash + Eq,
    S: BuildHasher + Default,
{
    /// Creates a map with `shard_count` shards (rounded up to the next power of two,
    /// minimum 1).
    pub fn new(shard_count: usize) -> Self {
        let count = shard_count.max(1).next_power_of_two();
        let shards = (0..count)
            .map(|_| CachePadded::new(RwLock::new(HashMap::with_hasher(S::default()))))
            .collect();
        Self {
            shards,
            hasher: S::default(),
            mask: count - 1,
        }
    }

    /// Number of shards backing the map.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_for(&self, key: &K) -> &RwLock<HashMap<K, V, S>> {
        // Shard on the HIGH half of the hash: the per-shard hash maps consume the
        // low bits for bucket selection, so using them for sharding too would make
        // every co-sharded key collide into the same probe chain.
        let index = ((self.hasher.hash_one(key) >> 32) as usize) & self.mask;
        &self.shards[index]
    }

    /// Inserts `value` under `key`, returning the previous value if any.
    pub fn insert(&self, key: K, value: V) -> Option<V> {
        self.shard_for(&key).write().insert(key, value)
    }

    /// Removes the entry for `key`, returning it if present.
    pub fn remove(&self, key: &K) -> Option<V> {
        self.shard_for(key).write().remove(key)
    }

    /// Returns `true` if `key` is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.shard_for(key).read().contains_key(key)
    }

    /// Applies `f` to the value stored under `key` (or `None`) under the shard's read
    /// lock and returns the result.
    pub fn read_with<R>(&self, key: &K, f: impl FnOnce(Option<&V>) -> R) -> R {
        let guard = self.shard_for(key).read();
        f(guard.get(key))
    }

    /// Returns a clone of the value stored under `key`.
    pub fn get_cloned(&self, key: &K) -> Option<V>
    where
        V: Clone,
    {
        self.read_with(key, |v| v.cloned())
    }

    /// Returns a clone of the value under `key`, inserting `make()` first if the key
    /// is absent. The second component reports whether the insert happened (the
    /// interner's "first touch" signal). `make` runs under the shard's write lock and
    /// must therefore be short and must not touch this map.
    pub fn get_or_insert_with(&self, key: K, make: impl FnOnce() -> V) -> (V, bool)
    where
        V: Clone,
    {
        let mut guard = self.shard_for(&key).write();
        match guard.entry(key) {
            std::collections::hash_map::Entry::Occupied(entry) => (entry.get().clone(), false),
            std::collections::hash_map::Entry::Vacant(entry) => {
                let value = make();
                entry.insert(value.clone());
                (value, true)
            }
        }
    }

    /// Applies `f` to a mutable reference of the value under `key`, inserting
    /// `V::default()` first if the key is absent. Returns the closure's result.
    pub fn mutate<R>(&self, key: K, f: impl FnOnce(&mut V) -> R) -> R
    where
        V: Default,
    {
        let mut guard = self.shard_for(&key).write();
        f(guard.entry(key).or_default())
    }

    /// Applies `f` to the value under `key` if it exists; returns `None` otherwise.
    pub fn mutate_if_present<R>(&self, key: &K, f: impl FnOnce(&mut V) -> R) -> Option<R> {
        let mut guard = self.shard_for(key).write();
        guard.get_mut(key).map(f)
    }

    /// Applies `f` to the value under `key`, and removes the entry if `f` returns
    /// `true` ("mutate then maybe garbage-collect"). Returns whether the entry existed.
    pub fn mutate_and_maybe_remove(&self, key: &K, f: impl FnOnce(&mut V) -> bool) -> bool {
        let mut guard = self.shard_for(key).write();
        if let Some(value) = guard.get_mut(key) {
            if f(value) {
                guard.remove(key);
            }
            true
        } else {
            false
        }
    }

    /// Total number of entries (takes each shard's read lock in turn; the result is a
    /// point-in-time approximation under concurrent mutation).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Returns `true` if the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Removes all entries.
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.write().clear();
        }
    }

    /// Collects all keys. Intended for end-of-block processing (snapshots), not hot
    /// paths.
    pub fn keys(&self) -> Vec<K>
    where
        K: Clone,
    {
        let mut keys = Vec::with_capacity(self.len());
        for shard in &self.shards {
            keys.extend(shard.read().keys().cloned());
        }
        keys
    }

    /// Invokes `f` on every (key, value) pair, shard by shard.
    pub fn for_each(&self, mut f: impl FnMut(&K, &V)) {
        for shard in &self.shards {
            for (k, v) in shard.read().iter() {
                f(k, v);
            }
        }
    }

    /// Retains only the entries for which `f` returns `true`.
    pub fn retain(&self, mut f: impl FnMut(&K, &mut V) -> bool) {
        for shard in &self.shards {
            shard.write().retain(|k, v| f(k, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        let map: ShardedMap<u32, u32> = ShardedMap::new(3);
        assert_eq!(map.shard_count(), 4);
        let map: ShardedMap<u32, u32> = ShardedMap::new(0);
        assert_eq!(map.shard_count(), 1);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let map: ShardedMap<&str, i32> = ShardedMap::new(8);
        assert_eq!(map.insert("a", 1), None);
        assert_eq!(map.insert("a", 2), Some(1));
        assert!(map.contains_key(&"a"));
        assert_eq!(map.get_cloned(&"a"), Some(2));
        assert_eq!(map.remove(&"a"), Some(2));
        assert!(map.is_empty());
    }

    #[test]
    fn get_or_insert_with_reports_first_touch() {
        let map: ShardedMap<u32, u32> = ShardedMap::new(4);
        assert_eq!(map.get_or_insert_with(7, || 70), (70, true));
        assert_eq!(map.get_or_insert_with(7, || 99), (70, false));
        assert_eq!(map.get_cloned(&7), Some(70));
    }

    #[test]
    fn mutate_inserts_default() {
        let map: ShardedMap<&str, Vec<u32>> = ShardedMap::new(4);
        map.mutate("key", |v| v.push(1));
        map.mutate("key", |v| v.push(2));
        assert_eq!(map.get_cloned(&"key"), Some(vec![1, 2]));
    }

    #[test]
    fn mutate_if_present_respects_absence() {
        let map: ShardedMap<u8, u8> = ShardedMap::new(4);
        assert_eq!(map.mutate_if_present(&1, |v| *v += 1), None);
        map.insert(1, 10);
        assert_eq!(
            map.mutate_if_present(&1, |v| {
                *v += 1;
                *v
            }),
            Some(11)
        );
    }

    #[test]
    fn mutate_and_maybe_remove_drops_entry() {
        let map: ShardedMap<u8, Vec<u8>> = ShardedMap::new(4);
        map.insert(1, vec![1, 2]);
        assert!(map.mutate_and_maybe_remove(&1, |v| {
            v.pop();
            v.is_empty()
        }));
        assert!(map.contains_key(&1));
        assert!(map.mutate_and_maybe_remove(&1, |v| {
            v.pop();
            v.is_empty()
        }));
        assert!(!map.contains_key(&1));
        assert!(!map.mutate_and_maybe_remove(&1, |_| true));
    }

    #[test]
    fn keys_and_for_each_cover_all_entries() {
        let map: ShardedMap<u32, u32> = ShardedMap::new(16);
        for i in 0..100u32 {
            map.insert(i, i * 2);
        }
        assert_eq!(map.len(), 100);
        let mut keys = map.keys();
        keys.sort_unstable();
        assert_eq!(keys, (0..100).collect::<Vec<_>>());
        let mut sum = 0;
        map.for_each(|_, v| sum += v);
        assert_eq!(sum, (0..100).map(|i| i * 2).sum::<u32>());
    }

    #[test]
    fn retain_filters_entries() {
        let map: ShardedMap<u32, u32> = ShardedMap::new(4);
        for i in 0..50u32 {
            map.insert(i, i);
        }
        map.retain(|_, v| *v % 2 == 0);
        assert_eq!(map.len(), 25);
        assert!(map.contains_key(&2));
        assert!(!map.contains_key(&3));
    }

    #[test]
    fn clear_empties_map() {
        let map: ShardedMap<u32, ()> = ShardedMap::new(4);
        for i in 0..10u32 {
            map.insert(i, ());
        }
        map.clear();
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn concurrent_inserts_and_gets_under_8_threads() {
        // 4 writers and 4 readers race on the same key space: a concurrent
        // `get` must observe either "absent" or the exact value written for
        // that key — never a torn or foreign value.
        let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new(16));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let map = Arc::clone(&map);
            handles.push(std::thread::spawn(move || {
                for i in 0..2_000u64 {
                    let key = t * 2_000 + i;
                    map.insert(key, key * 31 + 7);
                }
            }));
        }
        for t in 0..4u64 {
            let map = Arc::clone(&map);
            handles.push(std::thread::spawn(move || {
                for round in 0..2_000u64 {
                    let key = ((t + round) * 2_654_435_761) % 8_000;
                    if let Some(value) = map.get_cloned(&key) {
                        assert_eq!(value, key * 31 + 7, "torn read for key {key}");
                    }
                    map.read_with(&key, |entry| {
                        if let Some(&value) = entry {
                            assert_eq!(value, key * 31 + 7);
                        }
                    });
                }
            }));
        }
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(map.len(), 8_000);
    }

    #[test]
    fn concurrent_writers_to_distinct_keys() {
        let map: Arc<ShardedMap<u64, u64>> = Arc::new(ShardedMap::new(32));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..1_000u64 {
                        map.insert(t * 1_000 + i, i);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(map.len(), 8_000);
        for t in 0..8u64 {
            for i in (0..1_000u64).step_by(97) {
                assert_eq!(map.get_cloned(&(t * 1_000 + i)), Some(i));
            }
        }
    }

    #[test]
    fn concurrent_mutate_same_key_is_atomic() {
        let map: Arc<ShardedMap<&'static str, u64>> = Arc::new(ShardedMap::new(4));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        map.mutate("counter", |v| *v += 1);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(map.get_cloned(&"counter"), Some(80_000));
    }
}
