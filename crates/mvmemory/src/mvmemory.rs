//! The `MVMemory` data structure (Algorithm 2), on the two-level lock-free layout,
//! extended with commutative **delta** entries.
//!
//! See the crate docs for the design. In short: locations are *interned* (level 1)
//! into dense [`LocationId`]s with one lock-free cell each (level 2); the
//! per-location lock-protected `BTreeMap` of the original design is gone.
//! Steady-state reads and writes resolve locations through per-worker
//! [`LocationCache`]s and then operate on cells without any lock.
//!
//! Each cell entry is an [`MVEntry`]: a full value, or a [`DeltaOp`] that applies
//! commutatively on top of whatever the lower entries (or the storage base)
//! resolve to. A read whose highest lower entry is a delta **lazily resolves the
//! chain** — walking down live entries, accumulating deltas, until the nearest
//! full write (or the storage base supplied by the caller) — and reports
//! [`MVReadOutput::Resolved`] carrying the accumulated sum, which is exactly what
//! validation needs (see the crate docs for the safety argument).

use crate::entry::MVEntry;
use crate::interner::{Interner, LocationCache, LocationCell, LocationId};
use crate::read_set::{ReadDescriptor, ReadOrigin};
use block_stm_sync::versioned_cell::CellRead;
use block_stm_sync::{PaddedAtomicUsize, RcuCell};
use block_stm_vm::{AggregatorValue, DeltaOp, Incarnation, TxnIndex, Version};
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

/// Default shard count of the interner map (first-touch path only).
const DEFAULT_INTERNER_SHARDS: usize = 256;

/// Result of a speculative [`MVMemory::read`] on behalf of transaction `txn_idx`
/// (mirrors the `OK` / `NOT_FOUND` / `READ_ERROR` statuses of the paper, plus the
/// delta-resolution outcome). The value is an owned clone.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MVReadOutput<V> {
    /// The highest write below `txn_idx` is a full write: its version and value.
    Versioned(Version, V),
    /// The highest entries below `txn_idx` form a delta chain: `accumulated` is
    /// the chain resolved onto its base — the full write at `base_version`, or
    /// the caller-supplied storage base (`base_version == None`). Validation
    /// compares this **sum**, not the versions along the chain, which is what
    /// lets interleaved in-bounds deltas commute.
    Resolved {
        /// Version of the full write the chain bottomed out at, if any.
        base_version: Option<Version>,
        /// The resolved aggregator value (base plus every delta, clamped).
        accumulated: u128,
    },
    /// No transaction below `txn_idx` wrote this location; the caller should fall
    /// back to pre-block storage.
    NotFound,
    /// The resolution hit an ESTIMATE marker left by an aborted incarnation of
    /// the given transaction: the caller has a dependency on it.
    Dependency(TxnIndex),
}

impl<V> MVReadOutput<V> {
    /// Returns the versioned value, if the read was served by one full write.
    pub fn as_versioned(&self) -> Option<(Version, &V)> {
        match self {
            MVReadOutput::Versioned(version, value) => Some((*version, value)),
            _ => None,
        }
    }

    /// Returns `true` for [`MVReadOutput::Dependency`].
    pub fn is_dependency(&self) -> bool {
        matches!(self, MVReadOutput::Dependency(_))
    }
}

/// Borrowed result of resolving one location for one reader: the internal
/// equivalent of [`MVReadOutput`] that borrows the base value instead of cloning
/// it (validation and snapshotting work on sums and never clone).
#[derive(Debug, PartialEq, Eq)]
enum ResolvedRead<'a, V> {
    /// The highest lower entry is a full write.
    Versioned(Version, &'a V),
    /// A delta chain resolved onto `base_version` (or the storage base).
    Resolved {
        base_version: Option<Version>,
        accumulated: u128,
        chain_len: usize,
    },
    /// No lower entry exists.
    NotFound,
    /// The walk hit an ESTIMATE left by the given transaction.
    Dependency(TxnIndex),
}

impl<V> ResolvedRead<'_, V> {
    /// Number of delta entries the resolution walked through.
    fn chain_len(&self) -> usize {
        match self {
            ResolvedRead::Resolved { chain_len, .. } => *chain_len,
            _ => 0,
        }
    }

    fn to_owned(&self) -> MVReadOutput<V>
    where
        V: Clone,
    {
        match self {
            ResolvedRead::Versioned(version, value) => {
                MVReadOutput::Versioned(*version, (*value).clone())
            }
            ResolvedRead::Resolved {
                base_version,
                accumulated,
                ..
            } => MVReadOutput::Resolved {
                base_version: *base_version,
                accumulated: *accumulated,
            },
            ResolvedRead::NotFound => MVReadOutput::NotFound,
            ResolvedRead::Dependency(blocking) => MVReadOutput::Dependency(*blocking),
        }
    }
}

/// Result of a cached hot-path read ([`MVMemory::read_with_cache`]): the location's
/// interned id, the read outcome, and whether the outcome is **final** — every
/// transaction below the reader has committed, so the value can never change for the
/// rest of the block and the read needs no validation descriptor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedRead<V> {
    /// The location's interned id (stamped into read-set descriptors).
    pub id: LocationId,
    /// The read outcome (owned clone of the value, if any).
    pub output: MVReadOutput<V>,
    /// `true` iff the read was served entirely from the frozen committed prefix
    /// (see [`MVMemory::freeze_committed_prefix`]): the executor may skip recording
    /// a read descriptor for it.
    pub committed_final: bool,
    /// Number of delta entries the read resolved through (0 for plain reads;
    /// feeds the `delta_resolutions` / `delta_chain_len_max` metrics).
    pub delta_chain_len: usize,
}

/// Result of a delta bounds probe ([`MVMemory::probe_delta_with_cache`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The location's interned id (stamped into the probe's read descriptor so
    /// validation resolves through the lock-free id registry, not by key hash).
    pub id: LocationId,
    /// `Ok(in_bounds)`, or `Err(blocking_txn_idx)` when the resolution hit an
    /// ESTIMATE.
    pub outcome: Result<bool, TxnIndex>,
    /// Number of delta entries the resolution walked through.
    pub chain_len: usize,
    /// `true` iff the predicate was evaluated entirely against the frozen
    /// committed prefix (loaded *before* the resolution): the base can never
    /// change again, so no validation descriptor is needed.
    pub committed_final: bool,
}

/// One location written by a transaction's last finished incarnation: the key plus
/// its interned id (the id makes abort/removal handling a lock-free registry lookup).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WrittenLocation<K> {
    /// The written access path.
    pub key: K,
    /// Its interned location id.
    pub id: LocationId,
}

/// The shared multi-version memory for one block execution.
///
/// `K` is the memory-location (access-path) type and `V` the stored value type. The
/// structure is sized for a fixed block of `block_size` transactions and is shared by
/// reference across all worker threads.
#[derive(Debug)]
pub struct MVMemory<K, V> {
    /// Level 1: `location → (id, cell)` interning; the only place the sharded map is
    /// touched. Steady-state accesses resolve through per-worker [`LocationCache`]s.
    interner: Interner<K, V>,
    /// Per transaction: the locations written by its last finished incarnation.
    last_written_locations: Vec<RcuCell<Vec<WrittenLocation<K>>>>,
    /// Per transaction: the read-set recorded by its last finished incarnation.
    last_read_set: Vec<RcuCell<Vec<ReadDescriptor<K>>>>,
    /// Length of the committed prefix frozen by the executor: every entry written by
    /// a transaction below this index is final for the rest of the block.
    committed_watermark: PaddedAtomicUsize,
    block_size: usize,
}

impl<K, V> MVMemory<K, V>
where
    K: Eq + Hash + Clone + Debug,
    V: Debug + AggregatorValue,
{
    /// Creates the multi-version memory for a block of `block_size` transactions.
    pub fn new(block_size: usize) -> Self {
        Self::with_shards(block_size, DEFAULT_INTERNER_SHARDS)
    }

    /// Creates the memory with an explicit interner shard count (benchmark
    /// ablations; shards only matter on location first touches).
    pub fn with_shards(block_size: usize, shards: usize) -> Self {
        Self {
            interner: Interner::new(shards),
            last_written_locations: (0..block_size).map(|_| RcuCell::new(Vec::new())).collect(),
            last_read_set: (0..block_size).map(|_| RcuCell::new(Vec::new())).collect(),
            committed_watermark: PaddedAtomicUsize::new(0),
            block_size,
        }
    }

    /// Freezes the committed prefix at `prefix` transactions: the executor's commit
    /// ladder guarantees every transaction below `prefix` is committed, so their
    /// entries are final. Reads wholly below the watermark take the cheap
    /// no-revalidation path ([`read_with_cache`](Self::read_with_cache) reports them
    /// as `committed_final`). Monotone within a block; [`reset`](Self::reset)
    /// re-arms it.
    ///
    /// Callers that use deltas must fold each committed transaction's delta
    /// entries first ([`materialize_deltas`](Self::materialize_deltas)), so
    /// below-watermark reads find concrete values.
    pub fn freeze_committed_prefix(&self, prefix: usize) {
        debug_assert!(prefix <= self.block_size);
        debug_assert!(prefix >= self.committed_watermark.load());
        self.committed_watermark.store(prefix);
    }

    /// The frozen committed-prefix length (see
    /// [`freeze_committed_prefix`](Self::freeze_committed_prefix)).
    pub fn committed_prefix(&self) -> usize {
        self.committed_watermark.load()
    }

    /// Number of transactions in the block this memory serves.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Number of shards backing the interner (ablation introspection).
    pub fn shard_count(&self) -> usize {
        self.interner.shard_count()
    }

    /// Number of distinct locations interned so far.
    pub fn interned_locations(&self) -> usize {
        self.interner.len()
    }

    /// Re-arms the memory for a new block of `block_size` transactions. The interner
    /// keeps every `location → id` assignment and **recycles** the versioned cells
    /// in place (cleared, not reallocated), and the per-transaction snapshot arrays
    /// are swapped to a shared empty snapshot instead of reallocating.
    ///
    /// Requires `&mut self`: exclusive access proves no worker thread still reads
    /// from the previous block — this is the RCU quiescent point at which all
    /// garbage parked by the lock-free cells is freed. Workers must drop their
    /// [`LocationCache`]s before the reset (a cell pinned by a stale cache handle is
    /// replaced instead of recycled).
    pub fn reset(&mut self, block_size: usize) {
        self.interner.reset();
        self.block_size = block_size;
        self.committed_watermark.store(0);
        // One shared empty snapshot per array: re-arming a transaction is a pointer
        // swap, not an allocation.
        let empty_locations: Arc<Vec<WrittenLocation<K>>> = Arc::new(Vec::new());
        self.last_written_locations.truncate(block_size);
        for cell in &self.last_written_locations {
            cell.store_arc(Arc::clone(&empty_locations));
        }
        while self.last_written_locations.len() < block_size {
            self.last_written_locations.push(RcuCell::new(Vec::new()));
        }
        let empty_reads: Arc<Vec<ReadDescriptor<K>>> = Arc::new(Vec::new());
        self.last_read_set.truncate(block_size);
        for cell in &self.last_read_set {
            cell.store_arc(Arc::clone(&empty_reads));
        }
        while self.last_read_set.len() < block_size {
            self.last_read_set.push(RcuCell::new(Vec::new()));
        }
    }

    /// Resolves the entry chain of one cell for a reader at `txn_idx`: the highest
    /// live entry strictly below the reader if it is a full write, otherwise the
    /// delta chain accumulated down to the nearest full write or the storage base
    /// (`base_of`, consulted at most once; `None` means "absent", which reads as
    /// aggregator `0`). `committed == true` takes the cheaper frozen-prefix cell
    /// reads (no seqlock re-check).
    ///
    /// The walk is a sequence of independent lock-free cell reads, not an atomic
    /// snapshot — standard Block-STM speculation: any torn interleaving is caught
    /// by (re-)validation, and the validation run that commits a transaction
    /// observes settled entries (see the crate docs).
    fn resolve_cell<'a>(
        cell: &'a LocationCell<V>,
        txn_idx: TxnIndex,
        committed: bool,
        base_of: impl FnOnce() -> Option<u128>,
    ) -> ResolvedRead<'a, V> {
        let mut deltas: Vec<DeltaOp> = Vec::new();
        let mut bound = txn_idx;
        loop {
            let read = if committed {
                cell.read_committed(bound)
            } else {
                cell.read(bound)
            };
            match read {
                CellRead::Missing => {
                    if deltas.is_empty() {
                        return ResolvedRead::NotFound;
                    }
                    let base = base_of().unwrap_or(0);
                    return ResolvedRead::Resolved {
                        base_version: None,
                        accumulated: Self::fold_chain(base, &deltas),
                        chain_len: deltas.len(),
                    };
                }
                CellRead::Estimate { txn_idx: blocking } => {
                    return ResolvedRead::Dependency(blocking)
                }
                CellRead::Value {
                    txn_idx: writer,
                    incarnation,
                    value,
                } => {
                    let version = Version::new(writer, incarnation);
                    match value {
                        MVEntry::Value(value) => {
                            if deltas.is_empty() {
                                return ResolvedRead::Versioned(version, value);
                            }
                            return ResolvedRead::Resolved {
                                base_version: Some(version),
                                accumulated: Self::fold_chain(value.to_aggregator(), &deltas),
                                chain_len: deltas.len(),
                            };
                        }
                        MVEntry::Delta(op) => {
                            deltas.push(*op);
                            bound = writer;
                        }
                    }
                }
            }
        }
    }

    /// Applies a chain of deltas (collected top → bottom) onto `base`, bottom-up.
    ///
    /// Clamped application keeps doomed speculative interleavings deterministic;
    /// on settled (committed) state the clamp never engages, because every
    /// application's bounds predicate was validated against exactly that state.
    fn fold_chain(base: u128, deltas_top_down: &[DeltaOp]) -> u128 {
        deltas_top_down
            .iter()
            .rev()
            .fold(base, |acc, op| op.apply_clamped(acc))
    }

    /// Builds the merged entry list of one incarnation: full writes then deltas
    /// (disjoint keys by the context's contract; on violation, later entries win
    /// via the recording loop's last-wins dedup).
    fn merge_effects(write_set: Vec<(K, V)>, delta_set: Vec<(K, DeltaOp)>) -> Vec<(K, MVEntry<V>)> {
        let mut entries = Vec::with_capacity(write_set.len() + delta_set.len());
        entries.extend(
            write_set
                .into_iter()
                .map(|(key, value)| (key, MVEntry::Value(value))),
        );
        entries.extend(
            delta_set
                .into_iter()
                .map(|(key, op)| (key, MVEntry::Delta(op))),
        );
        entries
    }

    /// Records the results of an execution (`record`, Lines 36–42), resolving
    /// locations through the shared interner.
    ///
    /// Applies the write-set to the per-location cells, updates the
    /// written-locations and read-set snapshots, and returns `true` iff the
    /// incarnation wrote to at least one location its previous incarnation did not
    /// write (the `wrote_new_location` indicator consumed by
    /// `Scheduler.finish_execution`).
    pub fn record(
        &self,
        version: Version,
        read_set: Vec<ReadDescriptor<K>>,
        write_set: Vec<(K, V)>,
    ) -> bool {
        self.record_with_deltas(version, read_set, write_set, Vec::new())
    }

    /// [`record`](Self::record) with a delta-set: deltas publish [`MVEntry::Delta`]
    /// entries and otherwise follow exactly the full-write lifecycle (ESTIMATE
    /// marking, tombstoning, `wrote_new_location` accounting).
    pub fn record_with_deltas(
        &self,
        version: Version,
        read_set: Vec<ReadDescriptor<K>>,
        write_set: Vec<(K, V)>,
        delta_set: Vec<(K, DeltaOp)>,
    ) -> bool {
        let Version {
            txn_idx,
            incarnation,
        } = version;
        debug_assert!(txn_idx < self.block_size);
        let effects = Self::merge_effects(write_set, delta_set);
        let mut new_locations = Vec::with_capacity(effects.len());
        let mut pending = effects.into_iter();
        while let Some((key, entry)) = pending.next() {
            // Last write wins on duplicate keys (and keeps the one-publish-per-
            // incarnation contract of `VersionedCell::write`).
            if pending.as_slice().iter().any(|(later, _)| *later == key) {
                continue;
            }
            let interned = self.interner.resolve(&key).0;
            interned.cell.write(txn_idx, incarnation, entry);
            new_locations.push(WrittenLocation {
                key,
                id: interned.id,
            });
        }
        self.finish_record(version, read_set, new_locations)
    }

    /// [`record`](Self::record) through a per-worker [`LocationCache`]: the hot path
    /// used by the parallel executor, which resolves every location with a fast
    /// local hash lookup (no shard lock and no handle cloning once cached).
    pub fn record_with_cache(
        &self,
        cache: &mut LocationCache<K, V>,
        version: Version,
        read_set: Vec<ReadDescriptor<K>>,
        write_set: Vec<(K, V)>,
    ) -> bool {
        self.record_with_cache_deltas(cache, version, read_set, write_set, Vec::new())
    }

    /// [`record_with_cache`](Self::record_with_cache) with a delta-set.
    pub fn record_with_cache_deltas(
        &self,
        cache: &mut LocationCache<K, V>,
        version: Version,
        read_set: Vec<ReadDescriptor<K>>,
        write_set: Vec<(K, V)>,
        delta_set: Vec<(K, DeltaOp)>,
    ) -> bool {
        let Version {
            txn_idx,
            incarnation,
        } = version;
        debug_assert!(txn_idx < self.block_size);
        let effects = Self::merge_effects(write_set, delta_set);
        let mut new_locations = Vec::with_capacity(effects.len());
        let mut pending = effects.into_iter();
        while let Some((key, entry)) = pending.next() {
            // Last write wins on duplicate keys (see `record`).
            if pending.as_slice().iter().any(|(later, _)| *later == key) {
                continue;
            }
            let interned = cache.resolve(&self.interner, &key);
            interned.cell.write(txn_idx, incarnation, entry);
            let id = interned.id;
            new_locations.push(WrittenLocation { key, id });
        }
        self.finish_record(version, read_set, new_locations)
    }

    fn finish_record(
        &self,
        version: Version,
        read_set: Vec<ReadDescriptor<K>>,
        new_locations: Vec<WrittenLocation<K>>,
    ) -> bool {
        let wrote_new_location =
            self.rcu_update_written_locations(version.txn_idx, version.incarnation, new_locations);
        self.last_read_set[version.txn_idx].store(read_set);
        wrote_new_location
    }

    /// Updates `last_written_locations[txn_idx]`, tombstones entries the new
    /// incarnation no longer writes, and reports whether a location was written for
    /// the first time (`rcu_update_written_locations`, Lines 30–35). Removal is a
    /// flag store on the owned slot — no tree surgery, no map mutation.
    fn rcu_update_written_locations(
        &self,
        txn_idx: TxnIndex,
        incarnation: Incarnation,
        new_locations: Vec<WrittenLocation<K>>,
    ) -> bool {
        let prev_locations = self.last_written_locations[txn_idx].load();
        for unwritten in prev_locations
            .iter()
            .filter(|prev| !new_locations.iter().any(|new| new.id == prev.id))
        {
            let removed = self.with_cell_of(unwritten, |cell| cell.remove(txn_idx, incarnation));
            debug_assert!(
                removed == Some(true),
                "entry for a previously written location must exist"
            );
        }
        let wrote_new_location = new_locations
            .iter()
            .any(|new| !prev_locations.iter().any(|prev| prev.id == new.id));
        self.last_written_locations[txn_idx].store(new_locations);
        wrote_new_location
    }

    /// Resolves a previously written location to its cell and applies `f`: a
    /// lock-free registry lookup with no handle cloning (written locations always
    /// carry resolved ids; the key fallback only covers a registry snapshot that
    /// predates the id's chunk).
    fn with_cell_of<R>(
        &self,
        location: &WrittenLocation<K>,
        f: impl FnOnce(&LocationCell<V>) -> R,
    ) -> Option<R> {
        if let Some(cell) = self.interner.cell_by_id(location.id) {
            return Some(f(cell));
        }
        self.interner
            .lookup(&location.key)
            .map(|entry| f(&entry.cell))
    }

    /// Replaces every entry written by `txn_idx`'s last finished incarnation with an
    /// ESTIMATE marker (`convert_writes_to_estimates`, Lines 43–46). Called by the
    /// thread that successfully aborted the incarnation, *before* the transaction is
    /// re-scheduled for execution. A pure flag store per location — the slot arrays
    /// and the interner map are untouched. Delta entries are marked exactly like
    /// full writes: a resolution walking through the marker reports the dependency.
    pub fn convert_writes_to_estimates(&self, txn_idx: TxnIndex) {
        let prev_locations = self.last_written_locations[txn_idx].load();
        for location in prev_locations.iter() {
            let marked = self.with_cell_of(location, |cell| cell.mark_estimate(txn_idx));
            debug_assert!(
                marked == Some(true),
                "entry for a previously written location must exist"
            );
        }
    }

    /// Speculative read of `location` on behalf of transaction `txn_idx`
    /// (`read`, Lines 47–54): returns the entry written by the highest transaction
    /// with index strictly below `txn_idx` (resolving delta chains lazily — see
    /// [`MVReadOutput::Resolved`]), a dependency if the resolution hits an
    /// ESTIMATE, or `NotFound` if no lower transaction wrote the location.
    ///
    /// A chain that bottoms out at storage resolves against base `0` here; use
    /// [`read_with_base`](Self::read_with_base) (or the cached executor paths) to
    /// supply the real storage base.
    pub fn read(&self, location: &K, txn_idx: TxnIndex) -> MVReadOutput<V>
    where
        V: Clone,
    {
        self.read_with_base(location, txn_idx, || None)
    }

    /// [`read`](Self::read) with an explicit storage-base resolver, consulted (at
    /// most once) when a delta chain reaches pre-block storage.
    pub fn read_with_base(
        &self,
        location: &K,
        txn_idx: TxnIndex,
        base_of: impl FnOnce() -> Option<u128>,
    ) -> MVReadOutput<V>
    where
        V: Clone,
    {
        match self.interner.lookup(location) {
            None => MVReadOutput::NotFound,
            Some(interned) => {
                Self::resolve_cell(&interned.cell, txn_idx, false, base_of).to_owned()
            }
        }
    }

    /// Hot-path speculative read through a per-worker [`LocationCache`]: resolves
    /// the location with a local fast-hash lookup (interning it globally on the
    /// block-wide first touch), then reads the lock-free cell. Returns the interned
    /// id — callers stamp it into read-set descriptors so validation can skip key
    /// hashing entirely.
    ///
    /// When every transaction below the reader has committed (the frozen prefix,
    /// see [`freeze_committed_prefix`](Self::freeze_committed_prefix)), the read
    /// takes the cheaper committed cell path and is reported `committed_final`:
    /// its outcome can never change for the rest of the block, so the executor
    /// skips the read descriptor entirely — validation has nothing to re-check.
    pub fn read_with_cache(
        &self,
        cache: &mut LocationCache<K, V>,
        location: &K,
        txn_idx: TxnIndex,
    ) -> CachedRead<V>
    where
        V: Clone,
    {
        self.read_with_cache_base(cache, location, txn_idx, || None)
    }

    /// [`read_with_cache`](Self::read_with_cache) with an explicit storage-base
    /// resolver for delta chains that reach pre-block storage (the executor's
    /// view passes a storage lookup).
    pub fn read_with_cache_base(
        &self,
        cache: &mut LocationCache<K, V>,
        location: &K,
        txn_idx: TxnIndex,
        base_of: impl FnOnce() -> Option<u128>,
    ) -> CachedRead<V>
    where
        V: Clone,
    {
        // Load the watermark before the cell: the watermark only grows, so a read
        // that observes `txn_idx <= watermark` is entirely below committed — and
        // therefore immutable (and delta-folded) — entries.
        let committed_final = txn_idx <= self.committed_watermark.load();
        let interned = cache.resolve(&self.interner, location);
        let resolved = Self::resolve_cell(&interned.cell, txn_idx, committed_final, base_of);
        CachedRead {
            id: interned.id,
            delta_chain_len: resolved.chain_len(),
            output: resolved.to_owned(),
            committed_final,
        }
    }

    /// Speculative bounds probe for a delta application by `txn_idx` (the
    /// executor's `probe_delta` hot path): resolves the chain below the reader
    /// and evaluates `op`'s bounds predicate on top of it (plus the
    /// transaction's own prior cumulative delta).
    pub fn probe_delta_with_cache(
        &self,
        cache: &mut LocationCache<K, V>,
        location: &K,
        txn_idx: TxnIndex,
        prior: i128,
        op: DeltaOp,
        base_of: impl FnOnce() -> Option<u128>,
    ) -> ProbeOutcome {
        // The watermark is loaded BEFORE the resolution (like the read path's
        // `committed_final`): the flag must describe the state the predicate
        // was actually evaluated against, so callers can rely on it to decide
        // whether a validation descriptor is needed. A second, later load
        // could observe a commit that landed after a speculative base was
        // read — and wrongly skip the descriptor.
        let committed_final = txn_idx <= self.committed_watermark.load();
        let interned = cache.resolve(&self.interner, location);
        // `base_of` serves double duty: the chain's storage bottom inside the
        // resolution, or — when no entry exists at all — the probe's own base.
        let mut storage_base = Some(base_of);
        let mut deferred_base = || storage_base.take().expect("base consulted once")();
        let resolved =
            Self::resolve_cell(&interned.cell, txn_idx, committed_final, &mut deferred_base);
        let chain_len = resolved.chain_len();
        let outcome = match resolved {
            ResolvedRead::Versioned(_, value) => Ok(op.in_bounds_on(value.to_aggregator(), prior)),
            ResolvedRead::Resolved { accumulated, .. } => Ok(op.in_bounds_on(accumulated, prior)),
            ResolvedRead::NotFound => Ok(op.in_bounds_on(deferred_base().unwrap_or(0), prior)),
            ResolvedRead::Dependency(blocking) => Err(blocking),
        };
        ProbeOutcome {
            id: interned.id,
            outcome,
            chain_len,
            committed_final,
        }
    }

    /// Validates the read-set recorded by `txn_idx`'s last finished incarnation
    /// (`validate_read_set`, Lines 62–72): re-reads every location and compares the
    /// observed origin against the recorded descriptor — exact versions for full
    /// writes, **resolved sums** for chain reads and **bounds predicates** for
    /// delta probes.
    ///
    /// Delta descriptors whose chain bottoms out at storage resolve against base
    /// `0` here; executors use
    /// [`validate_read_set_with_base`](Self::validate_read_set_with_base).
    pub fn validate_read_set(&self, txn_idx: TxnIndex) -> bool {
        self.validate_read_set_with_base(txn_idx, |_| None)
    }

    /// [`validate_read_set`](Self::validate_read_set) with a storage-base
    /// resolver (`key → aggregator base`) for delta chains that reach pre-block
    /// storage.
    pub fn validate_read_set_with_base(
        &self,
        txn_idx: TxnIndex,
        base_of: impl Fn(&K) -> Option<u128>,
    ) -> bool {
        // Outside chained execution no frontier exists: a `Frontier` descriptor
        // can only be stale tooling state, and the conservative answer (abort)
        // is the safe one.
        self.validate_read_set_with_frontier(txn_idx, base_of, |_| None)
    }

    /// [`validate_read_set_with_base`](Self::validate_read_set_with_base) for
    /// chained execution: `frontier_stamp_of` resolves a key's **current**
    /// publication stamp in the cross-block [`FrontierOverlay`] (`None` when no
    /// frontier is attached — every `Frontier` descriptor then fails).
    ///
    /// A [`ReadOrigin::Frontier`] descriptor holds iff the multi-version map
    /// still has no lower entry for the location *and* the overlay still
    /// carries exactly the stamp the read observed — stamps are unique per
    /// publication, so stamp equality implies the observed value is unchanged,
    /// and a predecessor-block commit that overwrote the key since the read is
    /// guaranteed to fail the check.
    pub fn validate_read_set_with_frontier(
        &self,
        txn_idx: TxnIndex,
        base_of: impl Fn(&K) -> Option<u128>,
        frontier_stamp_of: impl Fn(&K) -> Option<u64>,
    ) -> bool {
        let prior_reads = self.last_read_set[txn_idx].load();
        prior_reads.iter().all(|descriptor| {
            self.descriptor_still_holds(descriptor, txn_idx, &base_of, &frontier_stamp_of)
        })
    }

    /// Diagnostic: formats what a fresh resolution of `descriptor`'s location
    /// observes for a reader at `txn_idx` (version, resolved sum, absence, or
    /// a blocking estimate). Used by the opt-in chained-commit audit to report
    /// the state a stale descriptor diverged from. Not on any hot path.
    pub fn describe_resolution(
        &self,
        descriptor: &ReadDescriptor<K>,
        txn_idx: TxnIndex,
        base_of: impl Fn(&K) -> Option<u128>,
    ) -> String
    where
        V: std::fmt::Debug,
    {
        self.resolve_descriptor_with(
            descriptor,
            txn_idx,
            || base_of(&descriptor.key),
            |read| format!("{read:?}"),
        )
    }

    /// Diagnostic twin of
    /// [`validate_read_set_with_frontier`](Self::validate_read_set_with_frontier):
    /// returns the descriptors that no longer hold instead of a bare boolean,
    /// so audit tooling can report exactly which read went stale. Not on any
    /// hot path.
    pub fn failed_read_descriptors(
        &self,
        txn_idx: TxnIndex,
        base_of: impl Fn(&K) -> Option<u128>,
        frontier_stamp_of: impl Fn(&K) -> Option<u64>,
    ) -> Vec<ReadDescriptor<K>> {
        self.last_read_set[txn_idx]
            .load()
            .iter()
            .filter(|descriptor| {
                !self.descriptor_still_holds(descriptor, txn_idx, &base_of, &frontier_stamp_of)
            })
            .cloned()
            .collect()
    }

    fn descriptor_still_holds(
        &self,
        descriptor: &ReadDescriptor<K>,
        txn_idx: TxnIndex,
        base_of: &impl Fn(&K) -> Option<u128>,
        frontier_stamp_of: &impl Fn(&K) -> Option<u64>,
    ) -> bool {
        self.resolve_descriptor_with(
            descriptor,
            txn_idx,
            || base_of(&descriptor.key),
            |read| {
                Self::origin_matches(
                    read,
                    descriptor.origin,
                    || base_of(&descriptor.key),
                    || frontier_stamp_of(&descriptor.key),
                )
            },
        )
    }

    /// Re-resolves a descriptor's location: by interned id through the lock-free
    /// registry when resolved (no hashing), falling back to key lookup otherwise.
    /// Both validation and the dependency pre-check dispatch through here so the
    /// two paths cannot diverge. `base_of` supplies the storage base for chains
    /// that bottom out below the block — it must match what the recording read
    /// used, or sum comparisons would be inconsistent.
    fn resolve_descriptor_with<R>(
        &self,
        descriptor: &ReadDescriptor<K>,
        txn_idx: TxnIndex,
        base_of: impl FnOnce() -> Option<u128>,
        f: impl FnOnce(ResolvedRead<'_, V>) -> R,
    ) -> R {
        if descriptor.id.is_resolved() {
            if let Some(cell) = self.interner.cell_by_id(descriptor.id) {
                return f(Self::resolve_cell(cell, txn_idx, false, base_of));
            }
        }
        match self.interner.lookup(&descriptor.key) {
            None => f(ResolvedRead::NotFound),
            Some(interned) => f(Self::resolve_cell(&interned.cell, txn_idx, false, base_of)),
        }
    }

    /// The aggregator value a fresh resolution observes, for sum/predicate
    /// comparisons: a full write's embedded value, a chain's accumulated sum
    /// (the resolution already folded the storage base in when it bottomed out
    /// there), or the storage base itself when no entry exists.
    fn observed_sum(
        read: &ResolvedRead<'_, V>,
        storage_base: impl FnOnce() -> Option<u128>,
    ) -> Option<u128> {
        match read {
            ResolvedRead::Versioned(_, value) => Some(value.to_aggregator()),
            ResolvedRead::Resolved { accumulated, .. } => Some(*accumulated),
            ResolvedRead::NotFound => Some(storage_base().unwrap_or(0)),
            ResolvedRead::Dependency(_) => None,
        }
    }

    fn origin_matches(
        read: ResolvedRead<'_, V>,
        origin: ReadOrigin,
        storage_base: impl FnOnce() -> Option<u128>,
        frontier_stamp: impl FnOnce() -> Option<u64>,
    ) -> bool {
        match origin {
            // Entry present as one full write: must match the exact version
            // observed before (Line 70–71; a prior storage read also fails here,
            // as does a location that grew a delta chain on top).
            ReadOrigin::MultiVersion(version) => match read {
                ResolvedRead::Versioned(observed, _) => observed == version,
                _ => false,
            },
            // Previously read from storage: only valid if nothing in the
            // multi-version map serves the location now (Line 68–69).
            ReadOrigin::Storage => matches!(read, ResolvedRead::NotFound),
            // Previously resolved through a delta chain: the fresh resolution
            // must yield the same sum — the versions along the chain are free to
            // differ (that freedom is the commutativity win). A chain folded
            // into a single committed value, or collapsed back to storage, still
            // passes when the sum is unchanged.
            ReadOrigin::Resolved { accumulated } => {
                Self::observed_sum(&read, storage_base) == Some(accumulated)
            }
            // A delta probe re-evaluates its bounds predicate on the fresh base:
            // the base may change arbitrarily as long as the outcome agrees.
            ReadOrigin::DeltaProbe {
                prior,
                op,
                in_bounds,
            } => match Self::observed_sum(&read, storage_base) {
                Some(base) => op.in_bounds_on(base, prior) == in_bounds,
                None => false,
            },
            // Chained execution: the read fell through to the cross-block
            // frontier overlay. It holds iff nothing in the multi-version map
            // serves the location now (like a storage read) AND the overlay
            // still carries exactly the stamp the read observed — a
            // predecessor-block commit that overwrote the key bumped the stamp
            // and fails the check.
            ReadOrigin::Frontier { stamp } => {
                matches!(read, ResolvedRead::NotFound) && frontier_stamp() == Some(stamp)
            }
        }
    }

    /// Returns the read-set recorded by the last finished incarnation of `txn_idx`.
    /// Used by the executor's "check known dependencies before re-executing"
    /// optimization (§4) and by tests.
    pub fn last_read_set(&self, txn_idx: TxnIndex) -> Arc<Vec<ReadDescriptor<K>>> {
        self.last_read_set[txn_idx].load()
    }

    /// Returns the locations written by the last finished incarnation of `txn_idx`.
    pub fn last_written_locations(&self, txn_idx: TxnIndex) -> Arc<Vec<WrittenLocation<K>>> {
        self.last_written_locations[txn_idx].load()
    }

    /// Scans the prior read-set of `txn_idx` and returns the first location currently
    /// marked as an ESTIMATE, if any, together with the blocking transaction index.
    /// This is the §4 mitigation for VMs that must restart from scratch: before paying
    /// for a full re-execution, cheaply check whether a known dependency is still
    /// unresolved. Like validation, the scan runs on ids: registry lookups plus
    /// lock-free cell reads — for delta descriptors the whole chain is walked, since
    /// an ESTIMATE anywhere in it blocks the resolution.
    pub fn first_estimate_in_prior_reads(&self, txn_idx: TxnIndex) -> Option<(K, TxnIndex)> {
        let prior_reads = self.last_read_set[txn_idx].load();
        for descriptor in prior_reads.iter() {
            // The storage base is irrelevant here: only ESTIMATEs matter.
            let blocking = self.resolve_descriptor_with(
                descriptor,
                txn_idx,
                || None,
                |read| match read {
                    ResolvedRead::Dependency(blocking) => Some(blocking),
                    _ => None,
                },
            );
            if let Some(blocking) = blocking {
                return Some((descriptor.key.clone(), blocking));
            }
        }
        None
    }

    /// Folds the delta entries of **committed** transaction `txn_idx` into
    /// concrete [`MVEntry::Value`] entries, and returns the materialized
    /// `(key, value)` pairs (for streaming sinks).
    ///
    /// Called by the commit drain, in commit order, before
    /// [`freeze_committed_prefix`](Self::freeze_committed_prefix) covers the
    /// transaction: every lower transaction is already committed and folded, so
    /// each resolution terminates after at most one step down. The republish
    /// reuses the committed incarnation number — both payloads resolve to the
    /// same value, so concurrent readers observe no semantic change (see the
    /// `VersionedCell::write` contract note).
    ///
    /// `base_of` supplies the storage base for chains that bottom out below the
    /// block.
    pub fn materialize_deltas(
        &self,
        txn_idx: TxnIndex,
        base_of: impl Fn(&K) -> Option<u128>,
    ) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let locations = self.last_written_locations[txn_idx].load();
        let mut materialized = Vec::new();
        for location in locations.iter() {
            let folded = self.with_cell_of(location, |cell| {
                let resolved =
                    Self::resolve_cell(cell, txn_idx + 1, false, || base_of(&location.key));
                match resolved {
                    ResolvedRead::Resolved { accumulated, .. } => {
                        // The top of the chain is this transaction's own delta
                        // entry (it committed with one recorded); fold the
                        // resolved value into it in place.
                        let incarnation = match cell.read(txn_idx + 1) {
                            CellRead::Value {
                                txn_idx: writer,
                                incarnation,
                                ..
                            } if writer == txn_idx => incarnation,
                            other => {
                                debug_assert!(
                                    false,
                                    "committed delta writer lost its entry: {other:?}"
                                );
                                return None;
                            }
                        };
                        let value = V::from_aggregator(accumulated);
                        cell.write(txn_idx, incarnation, MVEntry::Value(value.clone()));
                        Some(value)
                    }
                    // A full write at the top: nothing to fold.
                    _ => None,
                }
            });
            if let Some(Some(value)) = folded {
                materialized.push((location.key.clone(), value));
            }
        }
        materialized
    }

    /// Produces the final per-location values after all transactions committed
    /// (`snapshot`, Lines 55–61): for every location touched during the block, the
    /// value written by the highest transaction. Locations whose highest entry is an
    /// ESTIMATE (impossible after commit) or that only ever held tombstones are
    /// skipped, matching the paper's `status = OK` filter. Unresolved delta chains
    /// fold against base `0`; executors use
    /// [`snapshot_prefix_with_base`](Self::snapshot_prefix_with_base).
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        V: Clone,
    {
        self.snapshot_prefix(self.block_size)
    }

    /// Like [`snapshot`](Self::snapshot) but bounded: for every location touched
    /// during the block, the value written by the highest transaction *below
    /// `bound`*. Used by the executor when a `BlockLimiter` cuts the block at a
    /// committed boundary — the result equals a sequential execution of the
    /// truncated block, with writes of excluded (possibly half-executed) higher
    /// transactions filtered out by the version bound.
    pub fn snapshot_prefix(&self, bound: usize) -> Vec<(K, V)>
    where
        V: Clone,
    {
        self.snapshot_prefix_with_base(bound, |_| None)
    }

    /// [`snapshot_prefix`](Self::snapshot_prefix) with a storage-base resolver
    /// for delta chains that bottom out below the block (e.g. when the rolling
    /// commit ladder — and with it commit-time delta folding — is disabled).
    pub fn snapshot_prefix_with_base(
        &self,
        bound: usize,
        base_of: impl Fn(&K) -> Option<u128>,
    ) -> Vec<(K, V)>
    where
        V: Clone,
    {
        debug_assert!(bound <= self.block_size);
        let mut output = Vec::new();
        self.interner.for_each(|key, cell| {
            match Self::resolve_cell(cell, bound, false, || base_of(key)) {
                ResolvedRead::Versioned(_, value) => output.push((key.clone(), value.clone())),
                ResolvedRead::Resolved { accumulated, .. } => {
                    output.push((key.clone(), V::from_aggregator(accumulated)))
                }
                ResolvedRead::NotFound | ResolvedRead::Dependency(_) => {}
            }
        });
        output
    }

    /// Number of live `(location, txn_idx)` entries; exposed for tests and metrics.
    pub fn entry_count(&self) -> usize {
        let mut count = 0;
        self.interner.for_each(|_, cell| {
            count += cell.live_entries();
        });
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Memory = MVMemory<u64, u64>;

    fn descriptor_mv(key: u64, txn: TxnIndex, inc: usize) -> ReadDescriptor<u64> {
        ReadDescriptor::from_version(key, Version::new(txn, inc))
    }

    #[test]
    fn read_returns_not_found_when_empty() {
        let memory = Memory::new(4);
        assert!(matches!(memory.read(&1, 2), MVReadOutput::NotFound));
    }

    #[test]
    fn read_returns_highest_lower_write() {
        let memory = Memory::new(8);
        memory.record(Version::new(1, 0), vec![], vec![(10, 100)]);
        memory.record(Version::new(3, 0), vec![], vec![(10, 300)]);
        memory.record(Version::new(6, 0), vec![], vec![(10, 600)]);

        // tx5 must see tx3's write even though tx6 also wrote (paper's example).
        assert_eq!(
            memory.read(&10, 5),
            MVReadOutput::Versioned(Version::new(3, 0), 300)
        );
        // tx1 sees nothing (only writes by strictly lower transactions are visible).
        assert!(matches!(memory.read(&10, 1), MVReadOutput::NotFound));
        // tx2 sees tx1's write.
        assert_eq!(
            memory.read(&10, 2),
            MVReadOutput::Versioned(Version::new(1, 0), 100)
        );
    }

    #[test]
    fn record_reports_new_locations_only_when_write_set_grows() {
        let memory = Memory::new(4);
        assert!(memory.record(Version::new(2, 0), vec![], vec![(1, 10), (2, 20)]));
        // Same locations on re-execution: not a new location.
        assert!(!memory.record(Version::new(2, 1), vec![], vec![(1, 11), (2, 21)]));
        // Subset: still not a new location.
        assert!(!memory.record(Version::new(2, 2), vec![], vec![(1, 12)]));
        // A location outside the previous write-set: new.
        assert!(memory.record(Version::new(2, 3), vec![], vec![(1, 13), (3, 30)]));
    }

    #[test]
    fn record_removes_entries_no_longer_written() {
        let memory = Memory::new(4);
        memory.record(Version::new(1, 0), vec![], vec![(1, 10), (2, 20)]);
        assert_eq!(memory.entry_count(), 2);
        memory.record(Version::new(1, 1), vec![], vec![(2, 21)]);
        assert_eq!(memory.entry_count(), 1);
        assert!(matches!(memory.read(&1, 3), MVReadOutput::NotFound));
        assert_eq!(
            memory.read(&2, 3),
            MVReadOutput::Versioned(Version::new(1, 1), 21)
        );
    }

    #[test]
    fn duplicate_keys_in_one_write_set_apply_last_wins_once() {
        // A duplicated key must publish exactly once per incarnation (the
        // VersionedCell seqlock contract) with the last value winning, matching
        // the old BTreeMap insert-overwrite semantics.
        let memory = Memory::new(4);
        let mut cache = LocationCache::new();
        memory.record(Version::new(1, 0), vec![], vec![(5, 50), (5, 51), (6, 60)]);
        assert_eq!(
            memory.read(&5, 3),
            MVReadOutput::Versioned(Version::new(1, 0), 51)
        );
        assert_eq!(memory.entry_count(), 2);
        memory.record_with_cache(
            &mut cache,
            Version::new(1, 1),
            vec![],
            vec![(5, 52), (5, 53)],
        );
        assert_eq!(
            memory.read(&5, 3),
            MVReadOutput::Versioned(Version::new(1, 1), 53)
        );
        // Location 6 left the write-set: removed.
        assert!(matches!(memory.read(&6, 3), MVReadOutput::NotFound));
    }

    #[test]
    fn estimates_block_lower_priority_reads() {
        let memory = Memory::new(4);
        memory.record(Version::new(1, 0), vec![], vec![(5, 50)]);
        memory.convert_writes_to_estimates(1);
        match memory.read(&5, 3) {
            MVReadOutput::Dependency(blocking) => assert_eq!(blocking, 1),
            other => panic!("expected dependency, got {other:?}"),
        }
        // The writer itself (and lower transactions) is unaffected.
        assert!(matches!(memory.read(&5, 1), MVReadOutput::NotFound));
    }

    #[test]
    fn next_incarnation_overwrites_estimates() {
        let memory = Memory::new(4);
        memory.record(Version::new(1, 0), vec![], vec![(5, 50)]);
        memory.convert_writes_to_estimates(1);
        memory.record(Version::new(1, 1), vec![], vec![(5, 51)]);
        assert_eq!(
            memory.read(&5, 2),
            MVReadOutput::Versioned(Version::new(1, 1), 51)
        );
    }

    #[test]
    fn estimate_not_overwritten_is_removed_when_next_incarnation_skips_location() {
        let memory = Memory::new(4);
        memory.record(Version::new(1, 0), vec![], vec![(5, 50), (6, 60)]);
        memory.convert_writes_to_estimates(1);
        // Next incarnation writes only location 5: the estimate at 6 must be removed.
        memory.record(Version::new(1, 1), vec![], vec![(5, 51)]);
        assert!(matches!(memory.read(&6, 3), MVReadOutput::NotFound));
    }

    #[test]
    fn validate_read_set_passes_for_matching_versions() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(7, 70)]);
        let read_set = vec![descriptor_mv(7, 0, 0), ReadDescriptor::from_storage(8)];
        memory.record(Version::new(2, 0), read_set, vec![(9, 90)]);
        assert!(memory.validate_read_set(2));
    }

    #[test]
    fn validate_read_set_fails_on_version_change() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(7, 70)]);
        memory.record(Version::new(2, 0), vec![descriptor_mv(7, 0, 0)], vec![]);
        // Transaction 0 re-executes (incarnation 1) and writes a new version.
        memory.record(Version::new(0, 1), vec![], vec![(7, 71)]);
        assert!(!memory.validate_read_set(2));
    }

    #[test]
    fn validate_read_set_fails_on_new_intervening_write() {
        let memory = Memory::new(4);
        // Transaction 2 read location 7 from storage.
        memory.record(
            Version::new(2, 0),
            vec![ReadDescriptor::from_storage(7)],
            vec![],
        );
        assert!(memory.validate_read_set(2));
        // Later, transaction 1 writes location 7: the storage read is stale.
        memory.record(Version::new(1, 0), vec![], vec![(7, 70)]);
        assert!(!memory.validate_read_set(2));
    }

    #[test]
    fn validate_read_set_fails_on_estimate() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(7, 70)]);
        memory.record(Version::new(2, 0), vec![descriptor_mv(7, 0, 0)], vec![]);
        memory.convert_writes_to_estimates(0);
        assert!(!memory.validate_read_set(2));
    }

    #[test]
    fn validate_read_set_fails_when_entry_disappears() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(7, 70)]);
        memory.record(Version::new(2, 0), vec![descriptor_mv(7, 0, 0)], vec![]);
        // Transaction 0 re-executes and no longer writes location 7.
        memory.record(Version::new(0, 1), vec![], vec![]);
        assert!(!memory.validate_read_set(2));
    }

    #[test]
    fn snapshot_returns_highest_writes() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(1, 10), (2, 20)]);
        memory.record(Version::new(2, 0), vec![], vec![(2, 22), (3, 33)]);
        let mut snapshot = memory.snapshot();
        snapshot.sort_unstable();
        assert_eq!(snapshot, vec![(1, 10), (2, 22), (3, 33)]);
    }

    #[test]
    fn first_estimate_in_prior_reads_detects_unresolved_dependency() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(7, 70)]);
        memory.record(Version::new(2, 0), vec![descriptor_mv(7, 0, 0)], vec![]);
        assert_eq!(memory.first_estimate_in_prior_reads(2), None);
        memory.convert_writes_to_estimates(0);
        assert_eq!(memory.first_estimate_in_prior_reads(2), Some((7, 0)));
    }

    #[test]
    fn estimate_is_invisible_to_writer_and_lower_transactions() {
        // Algorithm 2: a read by txn j scans entries strictly below j. An
        // ESTIMATE left by txn 3 must therefore block only higher-indexed
        // readers; the writer itself and lower transactions fall through.
        let memory = Memory::new(8);
        memory.record(Version::new(3, 0), vec![], vec![(7, 70)]);
        memory.convert_writes_to_estimates(3);

        assert!(matches!(memory.read(&7, 3), MVReadOutput::NotFound));
        assert!(matches!(memory.read(&7, 2), MVReadOutput::NotFound));
        for reader in [4, 5, 7] {
            match memory.read(&7, reader) {
                MVReadOutput::Dependency(blocking) => assert_eq!(blocking, 3),
                other => panic!("reader {reader}: expected dependency, got {other:?}"),
            }
        }
    }

    #[test]
    fn estimate_shadows_only_until_a_higher_write_exists() {
        // A reader above a later real write sees that write; a reader between
        // the estimate and the later write still hits the dependency.
        let memory = Memory::new(8);
        memory.record(Version::new(2, 0), vec![], vec![(9, 20)]);
        memory.record(Version::new(5, 0), vec![], vec![(9, 50)]);
        memory.convert_writes_to_estimates(2);

        match memory.read(&9, 4) {
            MVReadOutput::Dependency(blocking) => assert_eq!(blocking, 2),
            other => panic!("expected dependency on 2, got {other:?}"),
        }
        assert_eq!(
            memory.read(&9, 7),
            MVReadOutput::Versioned(Version::new(5, 0), 50)
        );
    }

    #[test]
    fn first_estimate_in_prior_reads_ignores_resolved_estimates() {
        // The dependency re-check (Algorithm 4's optimization) reports only
        // reads whose entry is *currently* an ESTIMATE: once the blocker
        // re-executes, the recorded read no longer blocks.
        let memory = Memory::new(8);
        memory.record(Version::new(1, 0), vec![], vec![(5, 50)]);
        memory.record(
            Version::new(3, 0),
            vec![descriptor_mv(5, 1, 0)],
            vec![(6, 60)],
        );
        memory.convert_writes_to_estimates(1);
        assert_eq!(memory.first_estimate_in_prior_reads(3), Some((5, 1)));

        memory.record(Version::new(1, 1), vec![], vec![(5, 51)]);
        assert_eq!(memory.first_estimate_in_prior_reads(3), None);
    }

    #[test]
    fn reset_clears_state_and_supports_resizing() {
        let mut memory = Memory::new(4);
        memory.record(
            Version::new(1, 0),
            vec![descriptor_mv(9, 0, 0)],
            vec![(5, 50), (6, 60)],
        );
        memory.convert_writes_to_estimates(1);
        assert!(memory.entry_count() > 0);

        memory.reset(4);
        assert_eq!(memory.entry_count(), 0);
        assert!(matches!(memory.read(&5, 3), MVReadOutput::NotFound));
        assert!(memory.last_read_set(1).is_empty());
        assert!(memory.last_written_locations(1).is_empty());
        // A fresh block records cleanly after the reset.
        memory.record(Version::new(0, 0), vec![], vec![(5, 51)]);
        assert_eq!(
            memory.read(&5, 2),
            MVReadOutput::Versioned(Version::new(0, 0), 51)
        );

        // Growing and shrinking across resets.
        memory.reset(8);
        assert_eq!(memory.block_size(), 8);
        memory.record(Version::new(7, 0), vec![], vec![(1, 10)]);
        assert!(memory.validate_read_set(7));
        memory.reset(2);
        assert_eq!(memory.block_size(), 2);
        assert_eq!(memory.entry_count(), 0);
    }

    #[test]
    fn reset_keeps_interned_locations_but_hides_their_old_values() {
        let mut memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(5, 50)]);
        assert_eq!(memory.interned_locations(), 1);
        memory.reset(4);
        // The interning survives (no re-hash next block) but the data is gone.
        assert_eq!(memory.interned_locations(), 1);
        assert!(matches!(memory.read(&5, 3), MVReadOutput::NotFound));
        assert!(memory.snapshot().is_empty());
    }

    #[test]
    fn cached_reads_and_records_agree_with_uncached_paths() {
        let memory = Memory::new(8);
        let mut cache = LocationCache::new();
        // Record through the cache, as the executor does.
        memory.record_with_cache(&mut cache, Version::new(1, 0), vec![], vec![(10, 100)]);
        let first = memory.read_with_cache(&mut cache, &10, 5);
        assert_eq!(
            first.output,
            MVReadOutput::Versioned(Version::new(1, 0), 100)
        );
        assert!(first.id.is_resolved());
        assert!(!first.committed_final, "nothing frozen yet");
        assert_eq!(first.delta_chain_len, 0, "no deltas involved");
        // The uncached read sees the same state.
        assert_eq!(memory.read(&10, 5), first.output);
        // And the id is stable across repeated cached reads.
        let again = memory.read_with_cache(&mut cache, &10, 5);
        assert_eq!(first.id, again.id);
        let stats = cache.stats();
        assert_eq!(stats.interner_misses, 1);
        assert_eq!(stats.hits, 2);
    }

    #[test]
    fn interned_descriptors_validate_without_key_fallback() {
        let memory = Memory::new(8);
        let mut cache = LocationCache::new();
        memory.record_with_cache(&mut cache, Version::new(0, 0), vec![], vec![(7, 70)]);
        let read = memory.read_with_cache(&mut cache, &7, 2);
        let version = match read.output {
            MVReadOutput::Versioned(version, _) => version,
            other => panic!("unexpected {other:?}"),
        };
        let descriptor = ReadDescriptor::from_version(7, version).with_location(read.id);
        memory.record_with_cache(&mut cache, Version::new(2, 0), vec![descriptor], vec![]);
        assert!(memory.validate_read_set(2));
        // The id-based path notices the version change like the key path would.
        memory.record_with_cache(&mut cache, Version::new(0, 1), vec![], vec![(7, 71)]);
        assert!(!memory.validate_read_set(2));
    }

    #[test]
    fn frozen_prefix_reads_are_final_and_skip_revalidation_bookkeeping() {
        let memory = Memory::new(8);
        let mut cache = LocationCache::new();
        memory.record(Version::new(0, 0), vec![], vec![(5, 50)]);
        memory.record(Version::new(1, 0), vec![], vec![(6, 60)]);
        // Nothing frozen: reads are speculative.
        assert!(!memory.read_with_cache(&mut cache, &5, 2).committed_final);
        // Transactions 0 and 1 commit; the executor freezes the prefix.
        memory.freeze_committed_prefix(2);
        assert_eq!(memory.committed_prefix(), 2);
        // A reader at or below the watermark sees only committed entries: final.
        let read = memory.read_with_cache(&mut cache, &5, 2);
        assert!(read.committed_final);
        assert_eq!(read.output, MVReadOutput::Versioned(Version::new(0, 0), 50));
        // Storage fall-throughs below the watermark are final too.
        let missing = memory.read_with_cache(&mut cache, &99, 2);
        assert!(missing.committed_final);
        assert_eq!(missing.output, MVReadOutput::NotFound);
        // A reader above the watermark may still observe speculative writes.
        let above = memory.read_with_cache(&mut cache, &6, 3);
        assert!(!above.committed_final);
        assert_eq!(
            above.output,
            MVReadOutput::Versioned(Version::new(1, 0), 60)
        );
        // reset() re-arms the watermark.
        let mut memory = memory;
        drop(cache);
        memory.reset(8);
        assert_eq!(memory.committed_prefix(), 0);
    }

    #[test]
    fn snapshot_prefix_filters_writes_of_excluded_transactions() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(1, 10), (2, 20)]);
        memory.record(Version::new(1, 0), vec![], vec![(2, 21)]);
        memory.record(Version::new(3, 0), vec![], vec![(2, 23), (9, 90)]);
        // Cutting after txn 1 excludes txn 3's writes entirely.
        let mut prefix = memory.snapshot_prefix(2);
        prefix.sort_unstable();
        assert_eq!(prefix, vec![(1, 10), (2, 21)]);
        // The full snapshot still sees the highest writers.
        let mut full = memory.snapshot();
        full.sort_unstable();
        assert_eq!(full, vec![(1, 10), (2, 23), (9, 90)]);
        // A zero-length prefix commits nothing.
        assert!(memory.snapshot_prefix(0).is_empty());
    }

    #[test]
    fn concurrent_recorders_and_readers_do_not_lose_writes() {
        use std::sync::Arc as StdArc;
        let memory = StdArc::new(Memory::new(64));
        let writers: Vec<_> = (0..8usize)
            .map(|t| {
                let memory = StdArc::clone(&memory);
                std::thread::spawn(move || {
                    let mut cache = LocationCache::new();
                    for txn in (t..64).step_by(8) {
                        memory.record_with_cache(
                            &mut cache,
                            Version::new(txn, 0),
                            vec![],
                            vec![(txn as u64 % 16, txn as u64)],
                        );
                    }
                })
            })
            .collect();
        for writer in writers {
            writer.join().unwrap();
        }
        // Every location must now return the highest writer below 64.
        for location in 0..16u64 {
            match memory.read(&location, 64) {
                MVReadOutput::Versioned(version, value) => {
                    assert_eq!(version.txn_idx as u64 % 16, location);
                    assert_eq!(value, version.txn_idx as u64);
                    // The highest txn writing `location` is location + 48.
                    assert_eq!(version.txn_idx as u64, location + 48);
                }
                other => panic!("location {location}: unexpected {other:?}"),
            }
        }
    }

    // ---------------------------------------------------------------------
    // Delta (aggregator) entries
    // ---------------------------------------------------------------------

    fn delta(amount: i128) -> DeltaOp {
        DeltaOp::add(amount, 1_000_000)
    }

    fn record_delta(memory: &Memory, version: Version, key: u64, amount: i128) {
        memory.record_with_deltas(version, vec![], vec![], vec![(key, delta(amount))]);
    }

    #[test]
    fn delta_chains_resolve_down_to_the_nearest_full_write() {
        let memory = Memory::new(8);
        memory.record(Version::new(0, 0), vec![], vec![(7, 100)]);
        record_delta(&memory, Version::new(1, 0), 7, 5);
        record_delta(&memory, Version::new(3, 0), 7, -2);
        // A reader above both deltas resolves base 100 + 5 - 2.
        assert_eq!(
            memory.read(&7, 5),
            MVReadOutput::Resolved {
                base_version: Some(Version::new(0, 0)),
                accumulated: 103,
            }
        );
        // A reader between the deltas sees only the first.
        assert_eq!(
            memory.read(&7, 2),
            MVReadOutput::Resolved {
                base_version: Some(Version::new(0, 0)),
                accumulated: 105,
            }
        );
        // A full write above the chain shadows it entirely.
        memory.record(Version::new(4, 0), vec![], vec![(7, 9)]);
        assert_eq!(
            memory.read(&7, 6),
            MVReadOutput::Versioned(Version::new(4, 0), 9)
        );
    }

    #[test]
    fn delta_chains_bottom_out_at_the_supplied_storage_base() {
        let memory = Memory::new(8);
        record_delta(&memory, Version::new(2, 0), 7, 10);
        // No base supplied: the chain folds onto 0.
        assert_eq!(
            memory.read(&7, 5),
            MVReadOutput::Resolved {
                base_version: None,
                accumulated: 10,
            }
        );
        // Base supplied (the executor's storage fallback).
        assert_eq!(
            memory.read_with_base(&7, 5, || Some(90)),
            MVReadOutput::Resolved {
                base_version: None,
                accumulated: 100,
            }
        );
        let mut cache = LocationCache::new();
        let read = memory.read_with_cache_base(&mut cache, &7, 5, || Some(90));
        assert_eq!(read.delta_chain_len, 1);
        assert_eq!(
            read.output,
            MVReadOutput::Resolved {
                base_version: None,
                accumulated: 100,
            }
        );
    }

    #[test]
    fn estimate_marked_delta_slots_block_resolution() {
        let memory = Memory::new(8);
        memory.record(Version::new(0, 0), vec![], vec![(7, 100)]);
        record_delta(&memory, Version::new(2, 0), 7, 1);
        memory.convert_writes_to_estimates(2);
        match memory.read(&7, 5) {
            MVReadOutput::Dependency(blocking) => assert_eq!(blocking, 2),
            other => panic!("expected dependency, got {other:?}"),
        }
        // Readers below the estimate are unaffected.
        assert_eq!(
            memory.read(&7, 1),
            MVReadOutput::Versioned(Version::new(0, 0), 100)
        );
        // The next incarnation clears the path again.
        record_delta(&memory, Version::new(2, 1), 7, 4);
        assert_eq!(
            memory.read(&7, 5),
            MVReadOutput::Resolved {
                base_version: Some(Version::new(0, 0)),
                accumulated: 104,
            }
        );
    }

    #[test]
    fn resolved_descriptors_validate_by_sum_not_by_version() {
        let memory = Memory::new(8);
        memory.record(Version::new(0, 0), vec![], vec![(7, 100)]);
        record_delta(&memory, Version::new(1, 0), 7, 5);
        // Txn 4 resolved the chain to 105 and recorded a sum descriptor.
        memory.record(
            Version::new(4, 0),
            vec![ReadDescriptor::from_resolved(7, 105)],
            vec![],
        );
        assert!(memory.validate_read_set(4));
        // Txn 1 re-executes with a *different* incarnation but the same delta:
        // versions changed, the sum did not — validation still passes.
        record_delta(&memory, Version::new(1, 1), 7, 5);
        assert!(memory.validate_read_set(4));
        // A second delta below the reader changes the sum: validation fails.
        record_delta(&memory, Version::new(2, 0), 7, 1);
        assert!(!memory.validate_read_set(4));
    }

    #[test]
    fn delta_probe_descriptors_validate_by_predicate() {
        let memory = Memory::new(8);
        memory.record(Version::new(0, 0), vec![], vec![(7, 100)]);
        // Txn 4 probed "+50 within limit 200 on top of base"; base was 100.
        let op = DeltaOp::add(50, 200);
        memory.record(
            Version::new(4, 0),
            vec![ReadDescriptor::from_delta_probe(7, 0, op, true)],
            vec![(9, 9)],
        );
        assert!(memory.validate_read_set(4));
        // The base moves to 120: still in bounds, still valid — this is the
        // commutativity win.
        memory.record(Version::new(1, 0), vec![], vec![(7, 120)]);
        assert!(memory.validate_read_set(4));
        // The base moves to 180: the predicate flips, validation fails.
        memory.record(Version::new(1, 1), vec![], vec![(7, 180)]);
        assert!(!memory.validate_read_set(4));
    }

    #[test]
    fn probe_with_cache_resolves_chains_and_reports_dependencies() {
        let memory = Memory::new(8);
        let mut cache = LocationCache::new();
        memory.record(Version::new(0, 0), vec![], vec![(7, 100)]);
        record_delta(&memory, Version::new(1, 0), 7, 50);
        let probe =
            memory.probe_delta_with_cache(&mut cache, &7, 4, 0, DeltaOp::add(49, 200), || None);
        assert_eq!(probe.outcome, Ok(true));
        assert_eq!(probe.chain_len, 1);
        assert!(probe.id.is_resolved(), "probe descriptors carry ids");
        assert!(!probe.committed_final, "nothing frozen yet");
        let probe =
            memory.probe_delta_with_cache(&mut cache, &7, 4, 0, DeltaOp::add(51, 200), || None);
        assert_eq!(probe.outcome, Ok(false));
        memory.convert_writes_to_estimates(1);
        let probe =
            memory.probe_delta_with_cache(&mut cache, &7, 4, 0, DeltaOp::add(1, 200), || None);
        assert_eq!(probe.outcome, Err(1));
    }

    #[test]
    fn materialize_deltas_folds_committed_chains_in_place() {
        let memory = Memory::new(8);
        memory.record(Version::new(0, 0), vec![], vec![(7, 100)]);
        record_delta(&memory, Version::new(1, 0), 7, 5);
        record_delta(&memory, Version::new(2, 0), 7, 7);
        // Commit order: txn 0 (full write, nothing to fold), then 1, then 2.
        assert!(memory.materialize_deltas(0, |_| None).is_empty());
        assert_eq!(memory.materialize_deltas(1, |_| None), vec![(7, 105)]);
        assert_eq!(memory.materialize_deltas(2, |_| None), vec![(7, 112)]);
        memory.freeze_committed_prefix(3);
        // Below-watermark readers now find concrete folded values.
        let mut cache = LocationCache::new();
        let read = memory.read_with_cache(&mut cache, &7, 3);
        assert!(read.committed_final);
        assert_eq!(
            read.output,
            MVReadOutput::Versioned(Version::new(2, 0), 112)
        );
        assert_eq!(read.delta_chain_len, 0, "chain folded away");
        // The snapshot needs no base once everything is folded.
        let mut snapshot = memory.snapshot();
        snapshot.sort_unstable();
        assert_eq!(snapshot, vec![(7, 112)]);
    }

    #[test]
    fn materialize_deltas_uses_the_storage_base() {
        let memory = Memory::new(4);
        record_delta(&memory, Version::new(0, 0), 9, 25);
        assert_eq!(
            memory.materialize_deltas(0, |key| (*key == 9).then_some(50)),
            vec![(9, 75)]
        );
        assert_eq!(
            memory.read(&9, 2),
            MVReadOutput::Versioned(Version::new(0, 0), 75)
        );
    }

    #[test]
    fn snapshot_resolves_unfolded_chains_with_the_base_resolver() {
        // Ladder-off mode: nothing ever materializes, the snapshot must fold.
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(1, 10)]);
        record_delta(&memory, Version::new(1, 0), 1, 5);
        record_delta(&memory, Version::new(2, 0), 9, 3);
        let mut snapshot = memory.snapshot_prefix_with_base(4, |key| (*key == 9).then_some(40));
        snapshot.sort_unstable();
        assert_eq!(snapshot, vec![(1, 15), (9, 43)]);
        // Cutting below the deltas excludes them.
        let prefix = memory.snapshot_prefix_with_base(1, |key| (*key == 9).then_some(40));
        assert_eq!(prefix, vec![(1, 10)]);
    }

    #[test]
    fn removed_delta_entries_drop_out_of_resolution() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(7, 100)]);
        record_delta(&memory, Version::new(1, 0), 7, 5);
        // The next incarnation of txn 1 no longer touches the aggregator.
        memory.record(Version::new(1, 1), vec![], vec![]);
        assert_eq!(
            memory.read(&7, 3),
            MVReadOutput::Versioned(Version::new(0, 0), 100)
        );
    }
}
