//! The `MVMemory` data structure (Algorithm 2).

use crate::entry::EntryCell;
use crate::read_set::{ReadDescriptor, ReadOrigin};
use block_stm_sync::{RcuCell, ShardedMap};
use block_stm_vm::{TxnIndex, Version};
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::Arc;

/// Result of a speculative [`MVMemory::read`] on behalf of transaction `txn_idx`
/// (mirrors the `OK` / `NOT_FOUND` / `READ_ERROR` statuses of the paper).
#[derive(Debug, Clone)]
pub enum MVReadOutput<V> {
    /// The highest write below `txn_idx`: its full version and the written value.
    Versioned(Version, Arc<V>),
    /// No transaction below `txn_idx` wrote this location; the caller should fall back
    /// to pre-block storage.
    NotFound,
    /// The highest write below `txn_idx` is an ESTIMATE marker left by an aborted
    /// incarnation of the given transaction: the caller has a dependency on it.
    Dependency(TxnIndex),
}

impl<V> MVReadOutput<V> {
    /// Returns the versioned value, if any.
    pub fn as_versioned(&self) -> Option<(Version, &Arc<V>)> {
        match self {
            MVReadOutput::Versioned(version, value) => Some((*version, value)),
            _ => None,
        }
    }

    /// Returns `true` for [`MVReadOutput::Dependency`].
    pub fn is_dependency(&self) -> bool {
        matches!(self, MVReadOutput::Dependency(_))
    }
}

/// The shared multi-version memory for one block execution.
///
/// `K` is the memory-location (access-path) type and `V` the stored value type. The
/// structure is sized for a fixed block of `block_size` transactions and is shared by
/// reference across all worker threads.
#[derive(Debug)]
pub struct MVMemory<K, V> {
    /// `(location → (txn_idx → entry))`: a concurrent hash map over access paths whose
    /// per-location values are ordered search trees keyed by transaction index, exactly
    /// as described in §4 of the paper.
    data: ShardedMap<K, BTreeMap<TxnIndex, EntryCell<V>>>,
    /// Per transaction: the set of locations written by its last finished incarnation.
    last_written_locations: Vec<RcuCell<Vec<K>>>,
    /// Per transaction: the read-set recorded by its last finished incarnation.
    last_read_set: Vec<RcuCell<Vec<ReadDescriptor<K>>>>,
    block_size: usize,
}

impl<K, V> MVMemory<K, V>
where
    K: Eq + Hash + Clone + Debug,
    V: Debug,
{
    /// Creates the multi-version memory for a block of `block_size` transactions.
    pub fn new(block_size: usize) -> Self {
        Self {
            data: ShardedMap::default(),
            last_written_locations: (0..block_size).map(|_| RcuCell::new(Vec::new())).collect(),
            last_read_set: (0..block_size).map(|_| RcuCell::new(Vec::new())).collect(),
            block_size,
        }
    }

    /// Creates the memory with an explicit shard count (benchmark ablations).
    pub fn with_shards(block_size: usize, shards: usize) -> Self {
        Self {
            data: ShardedMap::new(shards),
            last_written_locations: (0..block_size).map(|_| RcuCell::new(Vec::new())).collect(),
            last_read_set: (0..block_size).map(|_| RcuCell::new(Vec::new())).collect(),
            block_size,
        }
    }

    /// Number of transactions in the block this memory serves.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Re-arms the memory for a new block of `block_size` transactions, reusing the
    /// sharded data map (its shard hash maps keep their capacity) and the
    /// per-transaction snapshot arrays instead of reallocating everything.
    ///
    /// Requires `&mut self`: exclusive access proves no worker thread still reads
    /// from the previous block.
    pub fn reset(&mut self, block_size: usize) {
        self.data.clear();
        self.block_size = block_size;
        // One shared empty snapshot per array: re-arming a transaction is a pointer
        // swap, not an allocation.
        let empty_locations: Arc<Vec<K>> = Arc::new(Vec::new());
        self.last_written_locations.truncate(block_size);
        for cell in &self.last_written_locations {
            cell.store_arc(Arc::clone(&empty_locations));
        }
        while self.last_written_locations.len() < block_size {
            self.last_written_locations.push(RcuCell::new(Vec::new()));
        }
        let empty_reads: Arc<Vec<ReadDescriptor<K>>> = Arc::new(Vec::new());
        self.last_read_set.truncate(block_size);
        for cell in &self.last_read_set {
            cell.store_arc(Arc::clone(&empty_reads));
        }
        while self.last_read_set.len() < block_size {
            self.last_read_set.push(RcuCell::new(Vec::new()));
        }
    }

    /// Applies the write-set of a finished incarnation to the data map
    /// (`apply_write_set`, Lines 27–29).
    fn apply_write_set(&self, txn_idx: TxnIndex, incarnation: usize, write_set: &[(K, V)])
    where
        V: Clone,
    {
        for (location, value) in write_set {
            self.data.mutate(location.clone(), |tree| {
                tree.insert(txn_idx, EntryCell::write(incarnation, value.clone()));
            });
        }
    }

    /// Updates `last_written_locations[txn_idx]`, removes entries the new incarnation
    /// no longer writes, and reports whether a location was written for the first time
    /// (`rcu_update_written_locations`, Lines 30–35).
    fn rcu_update_written_locations(&self, txn_idx: TxnIndex, new_locations: Vec<K>) -> bool {
        let prev_locations = self.last_written_locations[txn_idx].load();
        // Remove entries for locations written by the previous incarnation but not by
        // this one (Line 33). Dropping the whole per-location tree when it becomes
        // empty keeps snapshot iteration proportional to live locations.
        for unwritten in prev_locations
            .iter()
            .filter(|loc| !new_locations.contains(loc))
        {
            self.data.mutate_and_maybe_remove(unwritten, |tree| {
                tree.remove(&txn_idx);
                tree.is_empty()
            });
        }
        let wrote_new_location = new_locations
            .iter()
            .any(|loc| !prev_locations.contains(loc));
        self.last_written_locations[txn_idx].store(new_locations);
        wrote_new_location
    }

    /// Records the results of an execution (`record`, Lines 36–42).
    ///
    /// Applies the write-set to the data map, updates the written-locations and
    /// read-set snapshots, and returns `true` iff the incarnation wrote to at least one
    /// location its previous incarnation did not write (the `wrote_new_location`
    /// indicator consumed by `Scheduler.finish_execution`).
    pub fn record(
        &self,
        version: Version,
        read_set: Vec<ReadDescriptor<K>>,
        write_set: Vec<(K, V)>,
    ) -> bool
    where
        V: Clone,
    {
        let Version {
            txn_idx,
            incarnation,
        } = version;
        debug_assert!(txn_idx < self.block_size);
        self.apply_write_set(txn_idx, incarnation, &write_set);
        let new_locations: Vec<K> = write_set
            .into_iter()
            .map(|(location, _)| location)
            .collect();
        let wrote_new_location = self.rcu_update_written_locations(txn_idx, new_locations);
        self.last_read_set[txn_idx].store(read_set);
        wrote_new_location
    }

    /// Replaces every entry written by `txn_idx`'s last finished incarnation with an
    /// ESTIMATE marker (`convert_writes_to_estimates`, Lines 43–46). Called by the
    /// thread that successfully aborted the incarnation, *before* the transaction is
    /// re-scheduled for execution.
    pub fn convert_writes_to_estimates(&self, txn_idx: TxnIndex) {
        let prev_locations = self.last_written_locations[txn_idx].load();
        for location in prev_locations.iter() {
            let present = self.data.mutate_if_present(location, |tree| {
                if let Some(entry) = tree.get_mut(&txn_idx) {
                    *entry = EntryCell::Estimate;
                }
            });
            debug_assert!(
                present.is_some(),
                "entry for a previously written location must exist"
            );
        }
    }

    /// Speculative read of `location` on behalf of transaction `txn_idx`
    /// (`read`, Lines 47–54): returns the entry written by the highest transaction with
    /// index strictly below `txn_idx`, a dependency if that entry is an ESTIMATE, or
    /// `NotFound` if no lower transaction wrote the location.
    pub fn read(&self, location: &K, txn_idx: TxnIndex) -> MVReadOutput<V> {
        self.data.read_with(location, |tree| match tree {
            None => MVReadOutput::NotFound,
            Some(tree) => match tree.range(..txn_idx).next_back() {
                None => MVReadOutput::NotFound,
                Some((&idx, entry)) => match entry {
                    EntryCell::Estimate => MVReadOutput::Dependency(idx),
                    EntryCell::Write(incarnation, value) => {
                        MVReadOutput::Versioned(Version::new(idx, *incarnation), Arc::clone(value))
                    }
                },
            },
        })
    }

    /// Validates the read-set recorded by `txn_idx`'s last finished incarnation
    /// (`validate_read_set`, Lines 62–72): re-reads every location and compares the
    /// observed origin (version or storage) against the recorded descriptor.
    pub fn validate_read_set(&self, txn_idx: TxnIndex) -> bool {
        let prior_reads = self.last_read_set[txn_idx].load();
        prior_reads.iter().all(|descriptor| {
            match self.read(&descriptor.key, txn_idx) {
                // Previously read entry is now an ESTIMATE: fail (Line 67).
                MVReadOutput::Dependency(_) => false,
                // Entry disappeared: only valid if the prior read also came from
                // storage (Line 68–69).
                MVReadOutput::NotFound => descriptor.origin == ReadOrigin::Storage,
                // Entry present: must match the exact version observed before
                // (Line 70–71; a prior storage read also fails here).
                MVReadOutput::Versioned(version, _) => {
                    descriptor.origin == ReadOrigin::MultiVersion(version)
                }
            }
        })
    }

    /// Returns the read-set recorded by the last finished incarnation of `txn_idx`.
    /// Used by the executor's "check known dependencies before re-executing"
    /// optimization (§4) and by tests.
    pub fn last_read_set(&self, txn_idx: TxnIndex) -> Arc<Vec<ReadDescriptor<K>>> {
        self.last_read_set[txn_idx].load()
    }

    /// Returns the locations written by the last finished incarnation of `txn_idx`.
    pub fn last_written_locations(&self, txn_idx: TxnIndex) -> Arc<Vec<K>> {
        self.last_written_locations[txn_idx].load()
    }

    /// Scans the prior read-set of `txn_idx` and returns the first location currently
    /// marked as an ESTIMATE, if any, together with the blocking transaction index.
    /// This is the §4 mitigation for VMs that must restart from scratch: before paying
    /// for a full re-execution, cheaply check whether a known dependency is still
    /// unresolved.
    pub fn first_estimate_in_prior_reads(&self, txn_idx: TxnIndex) -> Option<(K, TxnIndex)> {
        let prior_reads = self.last_read_set[txn_idx].load();
        for descriptor in prior_reads.iter() {
            if let MVReadOutput::Dependency(blocking) = self.read(&descriptor.key, txn_idx) {
                return Some((descriptor.key.clone(), blocking));
            }
        }
        None
    }

    /// Produces the final per-location values after all transactions committed
    /// (`snapshot`, Lines 55–61): for every location touched during the block, the
    /// value written by the highest transaction. Locations whose highest entry is an
    /// ESTIMATE (impossible after commit) are skipped, matching the paper's
    /// `status = OK` filter.
    pub fn snapshot(&self) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut output = Vec::new();
        for key in self.data.keys() {
            if let MVReadOutput::Versioned(_, value) = self.read(&key, self.block_size) {
                output.push((key, (*value).clone()));
            }
        }
        output
    }

    /// Number of live `(location, txn_idx)` entries; exposed for tests and metrics.
    pub fn entry_count(&self) -> usize {
        let mut count = 0;
        self.data.for_each(|_, tree| count += tree.len());
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Memory = MVMemory<u64, u64>;

    fn descriptor_mv(key: u64, txn: TxnIndex, inc: usize) -> ReadDescriptor<u64> {
        ReadDescriptor::from_version(key, Version::new(txn, inc))
    }

    #[test]
    fn read_returns_not_found_when_empty() {
        let memory = Memory::new(4);
        assert!(matches!(memory.read(&1, 2), MVReadOutput::NotFound));
    }

    #[test]
    fn read_returns_highest_lower_write() {
        let memory = Memory::new(8);
        memory.record(Version::new(1, 0), vec![], vec![(10, 100)]);
        memory.record(Version::new(3, 0), vec![], vec![(10, 300)]);
        memory.record(Version::new(6, 0), vec![], vec![(10, 600)]);

        // tx5 must see tx3's write even though tx6 also wrote (paper's example).
        match memory.read(&10, 5) {
            MVReadOutput::Versioned(version, value) => {
                assert_eq!(version, Version::new(3, 0));
                assert_eq!(*value, 300);
            }
            other => panic!("unexpected read output {other:?}"),
        }
        // tx1 sees nothing (only writes by strictly lower transactions are visible).
        assert!(matches!(memory.read(&10, 1), MVReadOutput::NotFound));
        // tx2 sees tx1's write.
        match memory.read(&10, 2) {
            MVReadOutput::Versioned(version, value) => {
                assert_eq!(version, Version::new(1, 0));
                assert_eq!(*value, 100);
            }
            other => panic!("unexpected read output {other:?}"),
        }
    }

    #[test]
    fn record_reports_new_locations_only_when_write_set_grows() {
        let memory = Memory::new(4);
        assert!(memory.record(Version::new(2, 0), vec![], vec![(1, 10), (2, 20)]));
        // Same locations on re-execution: not a new location.
        assert!(!memory.record(Version::new(2, 1), vec![], vec![(1, 11), (2, 21)]));
        // Subset: still not a new location.
        assert!(!memory.record(Version::new(2, 2), vec![], vec![(1, 12)]));
        // A location outside the previous write-set: new.
        assert!(memory.record(Version::new(2, 3), vec![], vec![(1, 13), (3, 30)]));
    }

    #[test]
    fn record_removes_entries_no_longer_written() {
        let memory = Memory::new(4);
        memory.record(Version::new(1, 0), vec![], vec![(1, 10), (2, 20)]);
        assert_eq!(memory.entry_count(), 2);
        memory.record(Version::new(1, 1), vec![], vec![(2, 21)]);
        assert_eq!(memory.entry_count(), 1);
        assert!(matches!(memory.read(&1, 3), MVReadOutput::NotFound));
        match memory.read(&2, 3) {
            MVReadOutput::Versioned(version, value) => {
                assert_eq!(version, Version::new(1, 1));
                assert_eq!(*value, 21);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn estimates_block_lower_priority_reads() {
        let memory = Memory::new(4);
        memory.record(Version::new(1, 0), vec![], vec![(5, 50)]);
        memory.convert_writes_to_estimates(1);
        match memory.read(&5, 3) {
            MVReadOutput::Dependency(blocking) => assert_eq!(blocking, 1),
            other => panic!("expected dependency, got {other:?}"),
        }
        // The writer itself (and lower transactions) is unaffected.
        assert!(matches!(memory.read(&5, 1), MVReadOutput::NotFound));
    }

    #[test]
    fn next_incarnation_overwrites_estimates() {
        let memory = Memory::new(4);
        memory.record(Version::new(1, 0), vec![], vec![(5, 50)]);
        memory.convert_writes_to_estimates(1);
        memory.record(Version::new(1, 1), vec![], vec![(5, 51)]);
        match memory.read(&5, 2) {
            MVReadOutput::Versioned(version, value) => {
                assert_eq!(version, Version::new(1, 1));
                assert_eq!(*value, 51);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn estimate_not_overwritten_is_removed_when_next_incarnation_skips_location() {
        let memory = Memory::new(4);
        memory.record(Version::new(1, 0), vec![], vec![(5, 50), (6, 60)]);
        memory.convert_writes_to_estimates(1);
        // Next incarnation writes only location 5: the estimate at 6 must be removed.
        memory.record(Version::new(1, 1), vec![], vec![(5, 51)]);
        assert!(matches!(memory.read(&6, 3), MVReadOutput::NotFound));
    }

    #[test]
    fn validate_read_set_passes_for_matching_versions() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(7, 70)]);
        let read_set = vec![descriptor_mv(7, 0, 0), ReadDescriptor::from_storage(8)];
        memory.record(Version::new(2, 0), read_set, vec![(9, 90)]);
        assert!(memory.validate_read_set(2));
    }

    #[test]
    fn validate_read_set_fails_on_version_change() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(7, 70)]);
        memory.record(Version::new(2, 0), vec![descriptor_mv(7, 0, 0)], vec![]);
        // Transaction 0 re-executes (incarnation 1) and writes a new version.
        memory.record(Version::new(0, 1), vec![], vec![(7, 71)]);
        assert!(!memory.validate_read_set(2));
    }

    #[test]
    fn validate_read_set_fails_on_new_intervening_write() {
        let memory = Memory::new(4);
        // Transaction 2 read location 7 from storage.
        memory.record(
            Version::new(2, 0),
            vec![ReadDescriptor::from_storage(7)],
            vec![],
        );
        assert!(memory.validate_read_set(2));
        // Later, transaction 1 writes location 7: the storage read is stale.
        memory.record(Version::new(1, 0), vec![], vec![(7, 70)]);
        assert!(!memory.validate_read_set(2));
    }

    #[test]
    fn validate_read_set_fails_on_estimate() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(7, 70)]);
        memory.record(Version::new(2, 0), vec![descriptor_mv(7, 0, 0)], vec![]);
        memory.convert_writes_to_estimates(0);
        assert!(!memory.validate_read_set(2));
    }

    #[test]
    fn validate_read_set_fails_when_entry_disappears() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(7, 70)]);
        memory.record(Version::new(2, 0), vec![descriptor_mv(7, 0, 0)], vec![]);
        // Transaction 0 re-executes and no longer writes location 7.
        memory.record(Version::new(0, 1), vec![], vec![]);
        assert!(!memory.validate_read_set(2));
    }

    #[test]
    fn snapshot_returns_highest_writes() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(1, 10), (2, 20)]);
        memory.record(Version::new(2, 0), vec![], vec![(2, 22), (3, 33)]);
        let mut snapshot = memory.snapshot();
        snapshot.sort_unstable();
        assert_eq!(snapshot, vec![(1, 10), (2, 22), (3, 33)]);
    }

    #[test]
    fn first_estimate_in_prior_reads_detects_unresolved_dependency() {
        let memory = Memory::new(4);
        memory.record(Version::new(0, 0), vec![], vec![(7, 70)]);
        memory.record(Version::new(2, 0), vec![descriptor_mv(7, 0, 0)], vec![]);
        assert_eq!(memory.first_estimate_in_prior_reads(2), None);
        memory.convert_writes_to_estimates(0);
        assert_eq!(memory.first_estimate_in_prior_reads(2), Some((7, 0)));
    }

    #[test]
    fn estimate_is_invisible_to_writer_and_lower_transactions() {
        // Algorithm 2: a read by txn j scans entries strictly below j. An
        // ESTIMATE left by txn 3 must therefore block only higher-indexed
        // readers; the writer itself and lower transactions fall through.
        let memory = Memory::new(8);
        memory.record(Version::new(3, 0), vec![], vec![(7, 70)]);
        memory.convert_writes_to_estimates(3);

        assert!(matches!(memory.read(&7, 3), MVReadOutput::NotFound));
        assert!(matches!(memory.read(&7, 2), MVReadOutput::NotFound));
        for reader in [4, 5, 7] {
            match memory.read(&7, reader) {
                MVReadOutput::Dependency(blocking) => assert_eq!(blocking, 3),
                other => panic!("reader {reader}: expected dependency, got {other:?}"),
            }
        }
    }

    #[test]
    fn estimate_shadows_only_until_a_higher_write_exists() {
        // A reader above a later real write sees that write; a reader between
        // the estimate and the later write still hits the dependency.
        let memory = Memory::new(8);
        memory.record(Version::new(2, 0), vec![], vec![(9, 20)]);
        memory.record(Version::new(5, 0), vec![], vec![(9, 50)]);
        memory.convert_writes_to_estimates(2);

        match memory.read(&9, 4) {
            MVReadOutput::Dependency(blocking) => assert_eq!(blocking, 2),
            other => panic!("expected dependency on 2, got {other:?}"),
        }
        match memory.read(&9, 7) {
            MVReadOutput::Versioned(version, value) => {
                assert_eq!(version, Version::new(5, 0));
                assert_eq!(*value, 50);
            }
            other => panic!("expected txn 5's write, got {other:?}"),
        }
    }

    #[test]
    fn first_estimate_in_prior_reads_ignores_resolved_estimates() {
        // The dependency re-check (Algorithm 4's optimization) reports only
        // reads whose entry is *currently* an ESTIMATE: once the blocker
        // re-executes, the recorded read no longer blocks.
        let memory = Memory::new(8);
        memory.record(Version::new(1, 0), vec![], vec![(5, 50)]);
        memory.record(
            Version::new(3, 0),
            vec![descriptor_mv(5, 1, 0)],
            vec![(6, 60)],
        );
        memory.convert_writes_to_estimates(1);
        assert_eq!(memory.first_estimate_in_prior_reads(3), Some((5, 1)));

        memory.record(Version::new(1, 1), vec![], vec![(5, 51)]);
        assert_eq!(memory.first_estimate_in_prior_reads(3), None);
    }

    #[test]
    fn reset_clears_state_and_supports_resizing() {
        let mut memory = Memory::new(4);
        memory.record(
            Version::new(1, 0),
            vec![descriptor_mv(9, 0, 0)],
            vec![(5, 50), (6, 60)],
        );
        memory.convert_writes_to_estimates(1);
        assert!(memory.entry_count() > 0);

        memory.reset(4);
        assert_eq!(memory.entry_count(), 0);
        assert!(matches!(memory.read(&5, 3), MVReadOutput::NotFound));
        assert!(memory.last_read_set(1).is_empty());
        assert!(memory.last_written_locations(1).is_empty());
        // A fresh block records cleanly after the reset.
        memory.record(Version::new(0, 0), vec![], vec![(5, 51)]);
        match memory.read(&5, 2) {
            MVReadOutput::Versioned(version, value) => {
                assert_eq!(version, Version::new(0, 0));
                assert_eq!(*value, 51);
            }
            other => panic!("unexpected {other:?}"),
        }

        // Growing and shrinking across resets.
        memory.reset(8);
        assert_eq!(memory.block_size(), 8);
        memory.record(Version::new(7, 0), vec![], vec![(1, 10)]);
        assert!(memory.validate_read_set(7));
        memory.reset(2);
        assert_eq!(memory.block_size(), 2);
        assert_eq!(memory.entry_count(), 0);
    }

    #[test]
    fn concurrent_recorders_and_readers_do_not_lose_writes() {
        use std::sync::Arc as StdArc;
        let memory = StdArc::new(Memory::new(64));
        let writers: Vec<_> = (0..8usize)
            .map(|t| {
                let memory = StdArc::clone(&memory);
                std::thread::spawn(move || {
                    for txn in (t..64).step_by(8) {
                        memory.record(
                            Version::new(txn, 0),
                            vec![],
                            vec![(txn as u64 % 16, txn as u64)],
                        );
                    }
                })
            })
            .collect();
        for writer in writers {
            writer.join().unwrap();
        }
        // Every location must now return the highest writer below 64.
        for location in 0..16u64 {
            match memory.read(&location, 64) {
                MVReadOutput::Versioned(version, value) => {
                    assert_eq!(version.txn_idx as u64 % 16, location);
                    assert_eq!(*value, version.txn_idx as u64);
                    // The highest txn writing `location` is location + 48.
                    assert_eq!(version.txn_idx as u64, location + 48);
                }
                other => panic!("location {location}: unexpected {other:?}"),
            }
        }
    }
}
