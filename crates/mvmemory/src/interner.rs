//! Location interning: access path → dense id + lock-free cell handle.
//!
//! Level 1 of the two-level multi-version memory. The paper's "concurrent hashmap
//! over access paths" (§4) survives here only as the *interner*: each access path is
//! resolved through the sharded map **once per block**, yielding a dense
//! [`LocationId`] and a shared handle to the location's
//! [`VersionedCell`](block_stm_sync::VersionedCell). Every later access goes through
//! one of two cheaper routes:
//!
//! * a **per-worker [`LocationCache`]** — a plain (unsynchronized) FxHash map owned
//!   by one worker thread, memoizing `key → (id, cell)` for the block. A cache hit
//!   costs one fast hash and zero shard-lock acquisitions.
//! * the **id registry** — a lock-free `id → cell` array (RCU-published chunks of
//!   `OnceLock` slots) used by validation and abort handling, which see locations as
//!   the [`LocationId`]s recorded in read/write sets rather than as keys.
//!
//! Ids are assigned densely from 0 in first-touch order and stay stable across
//! [`Interner::reset`], which also *recycles* the cells: between blocks (under
//! `&mut`, the RCU quiescent point) every cell is cleared in place instead of
//! reallocated, so steady-state blocks do no interning work for previously seen
//! access paths beyond the per-worker cache warm-up. The one exception is key
//! *churn*: workloads that touch fresh access paths every block would grow the
//! interner without bound, so `reset` fully re-arms (drops every interning) once
//! the location count has doubled since the working set was last measured —
//! memory then tracks ~2× the live working set, while stable key sets never pay a
//! re-arm.

use crate::entry::MVEntry;
use block_stm_sync::{FxHashMap, ShardedMap, SnapshotPtr, VersionedCell};
use parking_lot::Mutex;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{Arc, OnceLock};

/// Dense per-block identifier of an interned memory location.
///
/// Ids index the lock-free registry used by validation; `u32` keeps read-set
/// descriptors small. [`LocationId::UNRESOLVED`] marks descriptors built outside the
/// interned hot path (tests, external callers) — consumers fall back to key lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LocationId(u32);

impl LocationId {
    /// Sentinel for descriptors whose location was never interned.
    pub const UNRESOLVED: LocationId = LocationId(u32::MAX);

    /// Returns `true` unless this is the [`UNRESOLVED`](Self::UNRESOLVED) sentinel.
    pub fn is_resolved(self) -> bool {
        self != Self::UNRESOLVED
    }

    /// The dense index this id maps to in the registry.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The lock-free cell type of one interned location: entries are either full
/// values or commutative [`DeltaOp`](block_stm_vm::DeltaOp) writes.
pub(crate) type LocationCell<V> = VersionedCell<MVEntry<V>>;

/// A resolved location: its dense id plus the shared versioned cell.
#[derive(Debug)]
pub(crate) struct Interned<V> {
    pub id: LocationId,
    pub cell: Arc<LocationCell<V>>,
}

// Manual impl: the derive would add an unnecessary `V: Clone` bound.
impl<V> Clone for Interned<V> {
    fn clone(&self) -> Self {
        Self {
            id: self.id,
            cell: Arc::clone(&self.cell),
        }
    }
}

/// Registry chunk size; chunks are append-only and shared between registry
/// snapshots, so growth republishes only the (tiny) outer chunk list.
const REGISTRY_CHUNK: usize = 256;

/// Below this many interned locations the doubling heuristic never re-arms: the
/// bookkeeping of a small interner is cheaper than re-interning a hot set.
const PRUNE_MIN_LOCATIONS: u32 = 16_384;

type RegistryChunk<V> = Arc<Vec<OnceLock<Arc<LocationCell<V>>>>>;

/// Lock-free `LocationId → cell` lookup: an RCU-published list of `OnceLock` chunks.
///
/// `get` is two atomic loads plus an index; `set` is called once per id (under the
/// interner's first-touch path) and only takes the growth mutex when a new chunk is
/// needed. A reader holding a pre-growth snapshot simply misses brand-new ids and
/// falls back to key lookup — correct, merely slower, and only possible in the
/// instant around a first touch.
struct Registry<V> {
    chunks: SnapshotPtr<Vec<RegistryChunk<V>>>,
    grow: Mutex<()>,
}

impl<V> Registry<V> {
    fn new() -> Self {
        Self {
            chunks: SnapshotPtr::new(Vec::new()),
            grow: Mutex::new(()),
        }
    }

    fn get(&self, id: LocationId) -> Option<&Arc<LocationCell<V>>> {
        let index = id.index();
        let chunks = self.chunks.load();
        chunks
            .get(index / REGISTRY_CHUNK)?
            .get(index % REGISTRY_CHUNK)?
            .get()
    }

    fn set(&self, id: LocationId, cell: Arc<LocationCell<V>>) {
        let index = id.index();
        let chunk_index = index / REGISTRY_CHUNK;
        if self.chunks.load().len() <= chunk_index {
            let _guard = self.grow.lock();
            let current = self.chunks.load();
            if current.len() <= chunk_index {
                let mut grown = current.clone();
                while grown.len() <= chunk_index {
                    grown.push(Arc::new(
                        (0..REGISTRY_CHUNK).map(|_| OnceLock::new()).collect(),
                    ));
                }
                self.chunks.publish(grown);
            }
        }
        let chunks = self.chunks.load();
        let slot = &chunks[chunk_index][index % REGISTRY_CHUNK];
        let inserted = slot.set(cell).is_ok();
        debug_assert!(inserted, "registry id {index} set twice");
    }

    /// Drops every registration, chunk and parked snapshot (the interner's full
    /// re-arm path).
    fn clear(&mut self) {
        self.chunks.set(Vec::new());
    }

    /// Recycles every registered cell in place for the next block. `&mut self` is
    /// the quiescent point required by the RCU reclamation contract, and — caches
    /// having been dropped — the registry is the sole owner of each cell, so the
    /// walk is `Arc::get_mut` + [`VersionedCell::reset`] per location with no
    /// reallocation. A cell (or whole chunk) pinned by a leaked external handle is
    /// replaced instead.
    fn reset_cells(&mut self) {
        self.chunks.quiesce();
        for shared_chunk in self.chunks.get_mut() {
            match Arc::get_mut(shared_chunk) {
                Some(chunk) => {
                    for slot in chunk.iter_mut() {
                        if let Some(shared_cell) = slot.get_mut() {
                            match Arc::get_mut(shared_cell) {
                                Some(cell) => cell.reset(),
                                // A stale external handle pins the old cell; give
                                // the location a fresh one rather than sharing
                                // state with the holdout.
                                None => *shared_cell = Arc::new(LocationCell::new()),
                            }
                        }
                    }
                }
                // The chunk itself is pinned (leaked registry snapshot): replace it
                // wholesale with fresh cells under the same ids.
                None => {
                    let rebuilt: Vec<OnceLock<Arc<LocationCell<V>>>> = shared_chunk
                        .iter()
                        .map(|slot| {
                            let fresh = OnceLock::new();
                            if slot.get().is_some() {
                                fresh.set(Arc::new(LocationCell::new())).ok();
                            }
                            fresh
                        })
                        .collect();
                    *shared_chunk = Arc::new(rebuilt);
                }
            }
        }
    }
}

/// The block-scoped location interner: sharded first-touch map + id registry.
///
/// The map stores only the dense id per key; the registry owns the cells. Between
/// blocks the registry is therefore the *sole* owner (worker caches have been
/// dropped), which lets [`reset`](Interner::reset) recycle every cell in place with
/// a plain chunk walk — no map iteration, no re-registration, no handle churn.
pub(crate) struct Interner<K, V> {
    map: ShardedMap<K, LocationId>,
    registry: Registry<V>,
    next_id: AtomicU32,
    /// The interned-location count measured one block after the last full re-arm —
    /// the working-set estimate the doubling heuristic compares against. Mutated
    /// only under `&mut` (reset).
    prune_baseline: u32,
    /// Set by a full re-arm so the next reset re-measures the working set.
    rearmed: bool,
}

impl<K, V> Debug for Interner<K, V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interner")
            .field("locations", &self.next_id.load(Ordering::Relaxed))
            .finish()
    }
}

impl<K, V> Interner<K, V>
where
    K: Eq + Hash + Clone,
{
    pub fn new(shards: usize) -> Self {
        Self {
            map: ShardedMap::new(shards),
            registry: Registry::new(),
            next_id: AtomicU32::new(0),
            prune_baseline: 0,
            rearmed: true,
        }
    }

    pub fn shard_count(&self) -> usize {
        self.map.shard_count()
    }

    /// Number of interned locations (== the next id to assign).
    pub fn len(&self) -> usize {
        self.next_id.load(Ordering::Relaxed) as usize
    }

    /// Read-only lookup: resolves `key` if it was already interned. One shard read
    /// lock; does not create a cell.
    pub fn lookup(&self, key: &K) -> Option<Interned<V>> {
        let id = self.map.read_with(key, |entry| entry.copied())?;
        let cell = Arc::clone(self.registry.get(id)?);
        Some(Interned { id, cell })
    }

    /// Resolves `key`, interning it on first touch. Returns the entry and whether
    /// this call performed the interning (`true` == global first touch, i.e. a shard
    /// write-lock acquisition and a fresh cell).
    pub fn resolve(&self, key: &K) -> (Interned<V>, bool) {
        if let Some(found) = self.lookup(key) {
            return (found, false);
        }
        let (id, first_touch) = self.map.get_or_insert_with(key.clone(), || {
            let id = LocationId(self.next_id.fetch_add(1, Ordering::Relaxed));
            self.registry.set(id, Arc::new(LocationCell::new()));
            id
        });
        let cell = Arc::clone(
            self.registry
                .get(id)
                .expect("an interned id is always registered"),
        );
        (Interned { id, cell }, first_touch)
    }

    /// Lock-free `id → cell` lookup through the registry.
    pub fn cell_by_id(&self, id: LocationId) -> Option<&Arc<LocationCell<V>>> {
        self.registry.get(id)
    }

    /// Invokes `f` on every interned `(key, cell)` pair (shard by shard; cold path).
    pub fn for_each(&self, mut f: impl FnMut(&K, &Arc<LocationCell<V>>)) {
        self.map.for_each(|key, id| {
            if let Some(cell) = self.registry.get(*id) {
                f(key, cell);
            }
        });
    }

    /// Re-arms the interner for the next block: every cell is cleared **in place**
    /// (recycled) under its existing id, so previously seen access paths keep their
    /// interning across blocks and the key map is not even touched. Requires
    /// `&mut self`: exclusive access is the quiescent point at which all RCU garbage
    /// is reclaimed, and callers must have dropped per-worker caches (their `Arc`
    /// clones) beforehand — a cell that is still externally referenced is replaced
    /// instead of recycled.
    ///
    /// Growth bound: once the location count exceeds [`PRUNE_MIN_LOCATIONS`] *and*
    /// has doubled since the working set was last measured, the interner instead
    /// drops **all** interning (map, registry, ids) and lets the next block
    /// re-intern its live set. Under per-block key churn this caps memory at ~2×
    /// the working set; a stable key set never doubles and is never dropped.
    pub fn reset(&mut self) {
        let interned = *self.next_id.get_mut();
        if self.rearmed {
            self.prune_baseline = interned.max(PRUNE_MIN_LOCATIONS);
            self.rearmed = false;
        }
        if interned > PRUNE_MIN_LOCATIONS && interned / 2 >= self.prune_baseline {
            self.map.clear();
            self.registry.clear();
            *self.next_id.get_mut() = 0;
            self.rearmed = true;
            return;
        }
        self.registry.reset_cells();
    }
}

/// Statistics of one per-worker [`LocationCache`], flushed into the block metrics
/// when the worker finishes.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct LocationCacheStats {
    /// Accesses resolved entirely inside the worker cache (no shared-state touch).
    pub hits: u64,
    /// Cache misses resolved by the sharded map's read path (another worker had
    /// already interned the location).
    pub interner_hits: u64,
    /// Global first touches: the access interned the location (shard write lock).
    pub interner_misses: u64,
}

/// A per-worker memoization of `key → (LocationId, cell)`.
///
/// One instance per worker thread per block, used without any synchronization: a
/// steady-state access resolves its location with a single FxHash lookup and then
/// operates on the lock-free cell directly — zero shard-lock acquisitions and zero
/// SipHash work, which is the acceptance bar of the two-level design.
#[derive(Debug)]
pub struct LocationCache<K, V> {
    /// `key → index into entries`; the index is copied out of the map so the hit
    /// path does exactly one hash lookup (returning `&Interned` straight from the
    /// map would extend its borrow across the miss path's inserts).
    map: FxHashMap<K, u32>,
    entries: Vec<Interned<V>>,
    stats: LocationCacheStats,
}

impl<K, V> Default for LocationCache<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> LocationCache<K, V> {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self {
            map: FxHashMap::default(),
            entries: Vec::new(),
            stats: LocationCacheStats::default(),
        }
    }

    /// Number of memoized locations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no location has been resolved through this cache yet.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The hit/miss counters accumulated so far.
    pub fn stats(&self) -> LocationCacheStats {
        self.stats
    }
}

impl<K, V> LocationCache<K, V>
where
    K: Eq + Hash + Clone,
{
    /// Resolves `key` through the cache — one fast-hash lookup on a hit — falling
    /// back to (and memoizing from) the interner on a miss.
    pub(crate) fn resolve(&mut self, interner: &Interner<K, V>, key: &K) -> &Interned<V> {
        let slot = match self.map.get(key) {
            Some(&slot) => {
                self.stats.hits += 1;
                slot
            }
            None => {
                let (entry, first_touch) = interner.resolve(key);
                if first_touch {
                    self.stats.interner_misses += 1;
                } else {
                    self.stats.interner_hits += 1;
                }
                let slot = u32::try_from(self.entries.len()).expect("cache outgrew u32 indices");
                self.entries.push(entry);
                self.map.insert(key.clone(), slot);
                slot
            }
        };
        &self.entries[slot as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_assigns_dense_ids_in_first_touch_order() {
        let interner: Interner<u64, u64> = Interner::new(8);
        let (a, first_a) = interner.resolve(&10);
        let (b, first_b) = interner.resolve(&20);
        let (a2, first_a2) = interner.resolve(&10);
        assert!(first_a && first_b && !first_a2);
        assert_eq!(a.id.index(), 0);
        assert_eq!(b.id.index(), 1);
        assert_eq!(a.id, a2.id);
        assert!(Arc::ptr_eq(&a.cell, &a2.cell));
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn registry_lookup_matches_interned_cells_across_chunks() {
        let interner: Interner<u64, u64> = Interner::new(8);
        // Cross several chunk boundaries.
        let entries: Vec<_> = (0..600u64).map(|k| interner.resolve(&k).0).collect();
        for entry in &entries {
            let from_registry = interner.cell_by_id(entry.id).expect("registered");
            assert!(Arc::ptr_eq(from_registry, &entry.cell));
        }
        assert!(interner.cell_by_id(LocationId(600)).is_none());
        assert!(interner.cell_by_id(LocationId::UNRESOLVED).is_none());
    }

    #[test]
    fn reset_recycles_cells_and_keeps_ids_stable() {
        let mut interner: Interner<u64, u64> = Interner::new(8);
        let (entry, _) = interner.resolve(&7);
        entry.cell.write(3, 0, MVEntry::Value(42));
        let id = entry.id;
        let cell_ptr = Arc::as_ptr(&entry.cell);
        drop(entry); // emulate caches being dropped before reset
        interner.reset();
        let (after, first_touch) = interner.resolve(&7);
        assert!(!first_touch, "location stays interned across blocks");
        assert_eq!(after.id, id);
        assert_eq!(
            Arc::as_ptr(&after.cell),
            cell_ptr,
            "cell recycled, not reallocated"
        );
        assert_eq!(after.cell.live_entries(), 0, "cell cleared");
        assert_eq!(
            after.cell.slot_count(),
            1,
            "slots kept for in-place revival"
        );
        assert!(Arc::ptr_eq(
            interner.cell_by_id(id).expect("re-registered"),
            &after.cell
        ));
    }

    #[test]
    fn unbounded_key_churn_triggers_a_full_rearm() {
        let mut interner: Interner<u64, u64> = Interner::new(16);
        let churn_per_block = (PRUNE_MIN_LOCATIONS / 2) as u64;
        let mut fresh_key = 0u64;
        let mut max_interned = 0;
        let mut rearmed = false;
        for _block in 0..8 {
            for _ in 0..churn_per_block {
                let (entry, _) = interner.resolve(&fresh_key);
                entry.cell.write(0, 0, MVEntry::Value(fresh_key));
                fresh_key += 1;
            }
            max_interned = max_interned.max(interner.len());
            interner.reset();
            if interner.len() == 0 {
                rearmed = true;
            }
        }
        assert!(rearmed, "churn never triggered a re-arm");
        // Memory is capped at twice the measured working set (floored at the
        // pruning minimum) rather than the total number of keys ever touched
        // (8 blocks x churn here).
        assert!(
            max_interned <= 2 * PRUNE_MIN_LOCATIONS as usize,
            "interner grew to {max_interned} entries"
        );
        // After a re-arm the interner serves fresh blocks correctly.
        let (entry, first_touch) = interner.resolve(&fresh_key);
        assert!(first_touch);
        entry.cell.write(1, 0, MVEntry::Value(7));
        assert!(matches!(
            entry.cell.read(2),
            block_stm_sync::versioned_cell::CellRead::Value {
                value: &MVEntry::Value(7),
                ..
            }
        ));
    }

    #[test]
    fn stable_key_sets_are_never_rearmed() {
        let mut interner: Interner<u64, u64> = Interner::new(16);
        let keys: Vec<u64> = (0..1_000).collect();
        let first_ids: Vec<LocationId> = keys.iter().map(|k| interner.resolve(k).0.id).collect();
        for _block in 0..10 {
            interner.reset();
            for (key, expected) in keys.iter().zip(&first_ids) {
                let (entry, first_touch) = interner.resolve(key);
                assert!(!first_touch, "stable key was dropped");
                assert_eq!(entry.id, *expected, "stable key changed id");
            }
        }
    }

    #[test]
    fn reset_replaces_cells_pinned_by_stale_handles() {
        let mut interner: Interner<u64, u64> = Interner::new(8);
        let (entry, _) = interner.resolve(&7);
        let stale = Arc::clone(&entry.cell);
        drop(entry);
        interner.reset();
        let (after, _) = interner.resolve(&7);
        assert!(!Arc::ptr_eq(&after.cell, &stale), "pinned cell replaced");
    }

    #[test]
    fn cache_counts_hits_and_misses() {
        let interner: Interner<u64, u64> = Interner::new(8);
        // Another "worker" interns key 5 first.
        interner.resolve(&5);
        let mut cache: LocationCache<u64, u64> = LocationCache::new();
        cache.resolve(&interner, &5); // interner hit
        cache.resolve(&interner, &5); // cache hit
        cache.resolve(&interner, &9); // global first touch
        cache.resolve(&interner, &9); // cache hit
        assert_eq!(
            cache.stats(),
            LocationCacheStats {
                hits: 2,
                interner_hits: 1,
                interner_misses: 1,
            }
        );
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn concurrent_first_touches_agree_on_one_cell_per_key() {
        let interner: Arc<Interner<u64, u64>> = Arc::new(Interner::new(16));
        let handles: Vec<_> = (0..8u64)
            .map(|t| {
                let interner = Arc::clone(&interner);
                std::thread::spawn(move || {
                    let mut cache = LocationCache::new();
                    let mut seen = Vec::new();
                    for round in 0..200u64 {
                        let key = (t + round) % 32;
                        let entry = cache.resolve(&interner, &key).clone();
                        seen.push((key, entry.id, Arc::as_ptr(&entry.cell) as usize));
                    }
                    seen
                })
            })
            .collect();
        let mut by_key: std::collections::HashMap<u64, (LocationId, usize)> =
            std::collections::HashMap::new();
        for handle in handles {
            for (key, id, cell) in handle.join().unwrap() {
                let entry = by_key.entry(key).or_insert((id, cell));
                assert_eq!(entry.0, id, "two ids for key {key}");
                assert_eq!(entry.1, cell, "two cells for key {key}");
            }
        }
        assert_eq!(interner.len(), 32);
        // Dense: every id below len is registered.
        for id in 0..32u32 {
            assert!(interner.cell_by_id(LocationId(id)).is_some());
        }
    }
}
