//! The multi-version memory of Block-STM (Algorithm 2 of the paper).
//!
//! `MVMemory` is the shared, in-memory, multi-version data structure through which
//! speculative transaction executions communicate. For every memory location it stores
//! *one entry per transaction that wrote it*, tagged with the writer's version
//! (transaction index + incarnation number) — hence "multi-version". A read by
//! transaction `tx_j` returns the value written by the *highest transaction below `j`*
//! in the preset serialization order, or falls through to pre-block storage when no
//! such write exists.
//!
//! Aborted incarnations leave `ESTIMATE` markers on the locations they wrote: the next
//! incarnation is estimated to write them again, so a lower-priority speculation that
//! would read them registers a dependency instead of proceeding with a stale value.
//!
//! The module exposes exactly the operations of Algorithm 2:
//!
//! | Paper                              | Here                                             |
//! |------------------------------------|--------------------------------------------------|
//! | `record(version, rs, ws)`          | [`MVMemory::record`]                             |
//! | `convert_writes_to_estimates(i)`   | [`MVMemory::convert_writes_to_estimates`]        |
//! | `read(location, i)`                | [`MVMemory::read`]                               |
//! | `validate_read_set(i)`             | [`MVMemory::validate_read_set`]                  |
//! | `snapshot()`                       | [`MVMemory::snapshot`]                           |
//!
//! plus read-set descriptor types shared with the executor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entry;
mod mvmemory;
mod read_set;

pub use entry::EntryCell;
pub use mvmemory::{MVMemory, MVReadOutput};
pub use read_set::{ReadDescriptor, ReadOrigin};
