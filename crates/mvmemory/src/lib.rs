//! The multi-version memory of Block-STM (Algorithm 2 of the paper).
//!
//! `MVMemory` is the shared, in-memory, multi-version data structure through which
//! speculative transaction executions communicate. For every memory location it stores
//! *one entry per transaction that wrote it*, tagged with the writer's version
//! (transaction index + incarnation number) — hence "multi-version". A read by
//! transaction `tx_j` returns the value written by the *highest transaction below `j`*
//! in the preset serialization order, or falls through to pre-block storage when no
//! such write exists. Aborted incarnations leave `ESTIMATE` markers on the locations
//! they wrote so lower-priority speculations register dependencies instead of reading
//! stale values.
//!
//! # The two-level layout
//!
//! §4 of the paper describes the data map as "a concurrent hashmap over access
//! paths, with lock-protected search trees for efficient txn_idx-based look-ups".
//! This crate keeps the *semantics* of that design but replaces its synchronization
//! with a two-level, mostly lock-free layout:
//!
//! * **Level 1 — location interning.** Each access path is resolved through the
//!   sharded hash map **once** per block, yielding a dense [`LocationId`] and a
//!   shared handle to the location's lock-free
//!   [`VersionedCell`](block_stm_sync::VersionedCell). Workers memoize the
//!   resolution in a per-worker [`LocationCache`] (a plain FxHash map, no
//!   synchronization), so a steady-state access performs **zero shard-lock
//!   acquisitions and zero SipHash work**. Validation and abort handling do not
//!   even hash: read/write sets carry `LocationId`s, resolved through a lock-free
//!   id registry.
//! * **Level 2 — versioned cells.** The per-location "lock-protected search tree"
//!   is now an RCU-published sorted slot array
//!   ([`VersionedCell`](block_stm_sync::VersionedCell) in `block-stm-sync`): reads
//!   are an atomic snapshot load plus binary search; a re-executing transaction
//!   republishes its owned slot in place; `ESTIMATE` marking and removal are single
//!   flag stores. Only a location's *first* write by a given transaction takes the
//!   cell's short mutex to insert a slot.
//!
//! The module exposes exactly the operations of Algorithm 2:
//!
//! | Paper                              | Here                                             |
//! |------------------------------------|--------------------------------------------------|
//! | `record(version, rs, ws)`          | [`MVMemory::record`] / [`MVMemory::record_with_cache`] |
//! | `convert_writes_to_estimates(i)`   | [`MVMemory::convert_writes_to_estimates`]        |
//! | `read(location, i)`                | [`MVMemory::read`] / [`MVMemory::read_with`] / [`MVMemory::read_with_cache`] |
//! | `validate_read_set(i)`             | [`MVMemory::validate_read_set`]                  |
//! | `snapshot()`                       | [`MVMemory::snapshot`]                           |
//!
//! plus read-set descriptor types shared with the executor.
//!
//! # Example: the worker hot path
//!
//! ```
//! use block_stm_mvmemory::{LocationCache, MVMemory, MVReadOutput};
//! use block_stm_vm::Version;
//!
//! let memory: MVMemory<u64, u64> = MVMemory::new(4);
//! // Each worker owns one cache per block; resolutions are memoized locally.
//! let mut cache = LocationCache::new();
//! memory.record_with_cache(&mut cache, Version::new(0, 0), vec![], vec![(7, 70)]);
//! let read = memory.read_with_cache(&mut cache, &7, 2);
//! assert!(read.id.is_resolved());
//! assert_eq!(read.output, MVReadOutput::Versioned(Version::new(0, 0), 70));
//! // Nothing is committed yet, so the read is speculative ...
//! assert!(!read.committed_final);
//! // ... until the executor freezes the committed prefix past the reader: then the
//! // same read is final and needs no validation descriptor.
//! memory.freeze_committed_prefix(2);
//! assert!(memory.read_with_cache(&mut cache, &7, 2).committed_final);
//! // Steady state: the repeated accesses were served by the worker cache.
//! assert_eq!(cache.stats().interner_misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod interner;
mod mvmemory;
mod read_set;

pub use interner::{LocationCache, LocationCacheStats, LocationId};
pub use mvmemory::{CachedRead, MVMemory, MVRead, MVReadOutput, WrittenLocation};
pub use read_set::{ReadDescriptor, ReadOrigin};
