//! The multi-version memory of Block-STM (Algorithm 2 of the paper).
//!
//! `MVMemory` is the shared, in-memory, multi-version data structure through which
//! speculative transaction executions communicate. For every memory location it stores
//! *one entry per transaction that wrote it*, tagged with the writer's version
//! (transaction index + incarnation number) — hence "multi-version". A read by
//! transaction `tx_j` returns the value written by the *highest transaction below `j`*
//! in the preset serialization order, or falls through to pre-block storage when no
//! such write exists. Aborted incarnations leave `ESTIMATE` markers on the locations
//! they wrote so lower-priority speculations register dependencies instead of reading
//! stale values.
//!
//! # The two-level layout
//!
//! §4 of the paper describes the data map as "a concurrent hashmap over access
//! paths, with lock-protected search trees for efficient txn_idx-based look-ups".
//! This crate keeps the *semantics* of that design but replaces its synchronization
//! with a two-level, mostly lock-free layout:
//!
//! * **Level 1 — location interning.** Each access path is resolved through the
//!   sharded hash map **once** per block, yielding a dense [`LocationId`] and a
//!   shared handle to the location's lock-free
//!   [`VersionedCell`](block_stm_sync::VersionedCell). Workers memoize the
//!   resolution in a per-worker [`LocationCache`] (a plain FxHash map, no
//!   synchronization), so a steady-state access performs **zero shard-lock
//!   acquisitions and zero SipHash work**. Validation and abort handling do not
//!   even hash: read/write sets carry `LocationId`s, resolved through a lock-free
//!   id registry.
//! * **Level 2 — versioned cells.** The per-location "lock-protected search tree"
//!   is now an RCU-published sorted slot array
//!   ([`VersionedCell`](block_stm_sync::VersionedCell) in `block-stm-sync`): reads
//!   are an atomic snapshot load plus binary search; a re-executing transaction
//!   republishes its owned slot in place; `ESTIMATE` marking and removal are single
//!   flag stores. Only a location's *first* write by a given transaction takes the
//!   cell's short mutex to insert a slot.
//!
//! The module exposes exactly the operations of Algorithm 2:
//!
//! | Paper                              | Here                                             |
//! |------------------------------------|--------------------------------------------------|
//! | `record(version, rs, ws)`          | [`MVMemory::record`] / [`MVMemory::record_with_cache_deltas`] |
//! | `convert_writes_to_estimates(i)`   | [`MVMemory::convert_writes_to_estimates`]        |
//! | `read(location, i)`                | [`MVMemory::read`] / [`MVMemory::read_with_cache_base`] |
//! | `validate_read_set(i)`             | [`MVMemory::validate_read_set_with_base`]        |
//! | `snapshot()`                       | [`MVMemory::snapshot_prefix_with_base`]          |
//!
//! plus read-set descriptor types shared with the executor.
//!
//! # Commutative delta writes and the lazy-resolution safety argument
//!
//! Every cell entry is an [`MVEntry`]: a **full write** or a **delta**
//! ([`block_stm_vm::DeltaOp`]) — a commutative `+δ` with bounds that applies on
//! top of whatever the lower entries resolve to. A read whose highest lower
//! entry is a delta walks the chain down to the nearest full write (or the
//! pre-block storage base) and reports [`MVReadOutput::Resolved`] with the
//! accumulated sum. Nothing about the *versions* along the chain is recorded in
//! the read-set — only the sum ([`ReadOrigin::Resolved`]) or, for a delta
//! application's own bounds check, only the predicate outcome
//! ([`ReadOrigin::DeltaProbe`]).
//!
//! **Why validating sums/predicates preserves sequential equivalence.** The VM
//! is deterministic *given the values its reads observed*. A resolved read
//! hands the VM exactly `from_aggregator(accumulated)`, so any two states that
//! resolve to the same `accumulated` make the incarnation behave identically —
//! re-validating the sum is therefore precisely as strong as re-validating the
//! value, and strictly weaker than re-validating versions (which is the point:
//! a lower delta writer re-executing with the same delta, or two deltas
//! swapping order, changes versions but not the sum). Likewise a delta
//! application observes nothing of the state except "did my bounds check
//! pass?": the incarnation's behavior depends only on that boolean, so
//! re-validating the *predicate outcome* against the fresh base suffices. The
//! commit ladder's rule (see `block-stm-scheduler`) guarantees the validation
//! that commits transaction `k` runs against the final entries below `k` —
//! any later change below `k` starts a fresh wave and forces a re-validation —
//! so at commit time the sums and predicates were checked against exactly the
//! state a sequential execution would have presented. Delta applications whose
//! predicate fails on that final state abort deterministically with
//! `AbortCode::DeltaOverflow`, exactly like the sequential engine.
//!
//! At the commit watermark the drain **materializes** each committed
//! transaction's deltas ([`MVMemory::materialize_deltas`]): the chain is folded
//! into one concrete frozen value (in place, same version), so committed-prefix
//! reads, streaming sinks and the final snapshot see plain values and
//! steady-state chain length tracks the commit lag, not the block size.
//!
//! # Example: the worker hot path
//!
//! ```
//! use block_stm_mvmemory::{LocationCache, MVMemory, MVReadOutput};
//! use block_stm_vm::Version;
//!
//! let memory: MVMemory<u64, u64> = MVMemory::new(4);
//! // Each worker owns one cache per block; resolutions are memoized locally.
//! let mut cache = LocationCache::new();
//! memory.record_with_cache(&mut cache, Version::new(0, 0), vec![], vec![(7, 70)]);
//! let read = memory.read_with_cache(&mut cache, &7, 2);
//! assert!(read.id.is_resolved());
//! assert_eq!(read.output, MVReadOutput::Versioned(Version::new(0, 0), 70));
//! // Nothing is committed yet, so the read is speculative ...
//! assert!(!read.committed_final);
//! // ... until the executor freezes the committed prefix past the reader: then the
//! // same read is final and needs no validation descriptor.
//! memory.freeze_committed_prefix(2);
//! assert!(memory.read_with_cache(&mut cache, &7, 2).committed_final);
//! // Steady state: the repeated accesses were served by the worker cache.
//! assert_eq!(cache.stats().interner_misses, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod entry;
mod frontier;
mod interner;
mod mvmemory;
mod read_set;

pub use entry::MVEntry;
pub use frontier::{FrontierOverlay, FRONTIER_ABSENT};
pub use interner::{LocationCache, LocationCacheStats, LocationId};
pub use mvmemory::{CachedRead, MVMemory, MVReadOutput, ProbeOutcome, WrittenLocation};
pub use read_set::{ReadDescriptor, ReadOrigin};
