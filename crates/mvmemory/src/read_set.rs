//! Read-set descriptors.

use crate::interner::LocationId;
use block_stm_vm::Version;

/// Where a speculative read obtained its value from.
///
/// The paper stores, per read, "the version of the transaction (during the execution
/// of which the value was written), or ⊥ if the value was read from storage"
/// (§3.1.2). Validation compares these descriptors against a fresh read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOrigin {
    /// The value was written by the given version (transaction index, incarnation).
    MultiVersion(Version),
    /// The value (or absence of one) came from pre-block storage — the ⊥ descriptor.
    Storage,
}

/// One entry of an incarnation's read-set: which location was read and what version
/// served it.
///
/// Descriptors produced on the executor's hot path also carry the location's
/// interned [`LocationId`], which lets validation and dependency re-checks resolve
/// the location through the lock-free id registry instead of re-hashing the key.
/// Descriptors built by hand (tests, external tooling) default to
/// [`LocationId::UNRESOLVED`] and are validated through the key-lookup fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadDescriptor<K> {
    /// The location read.
    pub key: K,
    /// The interned id of `key`, or [`LocationId::UNRESOLVED`].
    pub id: LocationId,
    /// The observed origin (version or storage).
    pub origin: ReadOrigin,
}

impl<K> ReadDescriptor<K> {
    /// A read served by the multi-version map.
    pub fn from_version(key: K, version: Version) -> Self {
        Self {
            key,
            id: LocationId::UNRESOLVED,
            origin: ReadOrigin::MultiVersion(version),
        }
    }

    /// A read served by (or falling through to) pre-block storage.
    pub fn from_storage(key: K) -> Self {
        Self {
            key,
            id: LocationId::UNRESOLVED,
            origin: ReadOrigin::Storage,
        }
    }

    /// Attaches the interned location id (executor hot path).
    pub fn with_location(mut self, id: LocationId) -> Self {
        self.id = id;
        self
    }

    /// Returns the observed version, or `None` for storage reads.
    pub fn version(&self) -> Option<Version> {
        match self.origin {
            ReadOrigin::MultiVersion(version) => Some(version),
            ReadOrigin::Storage => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_accessor_distinguishes_origins() {
        let v = Version::new(2, 1);
        assert_eq!(ReadDescriptor::from_version("k", v).version(), Some(v));
        assert_eq!(ReadDescriptor::from_storage("k").version(), None);
    }

    #[test]
    fn descriptors_compare_by_key_and_origin() {
        let a = ReadDescriptor::from_version(1u64, Version::new(0, 0));
        let b = ReadDescriptor::from_version(1u64, Version::new(0, 1));
        let c = ReadDescriptor::from_storage(1u64);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn hand_built_descriptors_are_unresolved() {
        assert!(!ReadDescriptor::from_storage(1u64).id.is_resolved());
        assert!(!ReadDescriptor::from_version(1u64, Version::new(0, 0))
            .id
            .is_resolved());
    }
}
