//! Read-set descriptors.

use crate::interner::LocationId;
use block_stm_vm::{DeltaOp, Version};

/// Where a speculative read obtained its value from.
///
/// The paper stores, per read, "the version of the transaction (during the execution
/// of which the value was written), or ⊥ if the value was read from storage"
/// (§3.1.2). Validation compares these descriptors against a fresh read.
///
/// The two delta-aware origins deliberately validate something *weaker* than an
/// exact version — that weakening is what makes commutative writes commute:
///
/// * [`ReadOrigin::Resolved`] records the **sum** a delta chain resolved to;
///   validation passes as long as a fresh resolution yields the same sum, no
///   matter which (re-)ordering of lower deltas produced it.
/// * [`ReadOrigin::DeltaProbe`] records only the **bounds predicate** of one
///   delta application; validation passes as long as the application would
///   still succeed (or still fail) against the fresh base — the base value
///   itself is free to change.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOrigin {
    /// The value was written by the given version (transaction index, incarnation).
    MultiVersion(Version),
    /// The value (or absence of one) came from pre-block storage — the ⊥ descriptor.
    Storage,
    /// The value was resolved through a delta chain; validation re-resolves and
    /// compares the accumulated sum (not the versions along the chain).
    Resolved {
        /// The resolved aggregator value observed by the read.
        accumulated: u128,
    },
    /// A delta application's speculative bounds probe; validation re-resolves
    /// the base and compares the predicate outcome.
    DeltaProbe {
        /// The transaction's own cumulative delta on the location before this
        /// application.
        prior: i128,
        /// The applied op (delta and bound).
        op: DeltaOp,
        /// Whether the application was in bounds when probed.
        in_bounds: bool,
    },
    /// Chained execution: the read fell through the multi-version map to the
    /// **cross-block frontier overlay** (the committed writes of predecessor
    /// blocks, see [`FrontierOverlay`](crate::FrontierOverlay)). Unlike
    /// [`ReadOrigin::Storage`], the frontier *can* change while the reader's
    /// block speculates — the predecessor block is still committing — so the
    /// descriptor records the overlay's per-key publication stamp and
    /// validation re-checks that the key still carries exactly that stamp
    /// (stamps are unique per publication, so stamp equality implies value
    /// equality). `stamp == 0` means the key was absent from the overlay and
    /// the read bottomed out in immutable pre-chain storage.
    Frontier {
        /// The overlay's publication stamp for the key at read time
        /// (0 = absent).
        stamp: u64,
    },
}

/// One entry of an incarnation's read-set: which location was read and what version
/// served it.
///
/// Descriptors produced on the executor's hot path also carry the location's
/// interned [`LocationId`], which lets validation and dependency re-checks resolve
/// the location through the lock-free id registry instead of re-hashing the key.
/// Descriptors built by hand (tests, external tooling) default to
/// [`LocationId::UNRESOLVED`] and are validated through the key-lookup fallback.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadDescriptor<K> {
    /// The location read.
    pub key: K,
    /// The interned id of `key`, or [`LocationId::UNRESOLVED`].
    pub id: LocationId,
    /// The observed origin (version or storage).
    pub origin: ReadOrigin,
}

impl<K> ReadDescriptor<K> {
    /// A read served by the multi-version map.
    pub fn from_version(key: K, version: Version) -> Self {
        Self {
            key,
            id: LocationId::UNRESOLVED,
            origin: ReadOrigin::MultiVersion(version),
        }
    }

    /// A read served by (or falling through to) pre-block storage.
    pub fn from_storage(key: K) -> Self {
        Self {
            key,
            id: LocationId::UNRESOLVED,
            origin: ReadOrigin::Storage,
        }
    }

    /// A read resolved through a delta chain to `accumulated`.
    pub fn from_resolved(key: K, accumulated: u128) -> Self {
        Self {
            key,
            id: LocationId::UNRESOLVED,
            origin: ReadOrigin::Resolved { accumulated },
        }
    }

    /// A delta application's bounds probe and its observed outcome.
    pub fn from_delta_probe(key: K, prior: i128, op: DeltaOp, in_bounds: bool) -> Self {
        Self {
            key,
            id: LocationId::UNRESOLVED,
            origin: ReadOrigin::DeltaProbe {
                prior,
                op,
                in_bounds,
            },
        }
    }

    /// A chained-execution read that fell through to the cross-block frontier
    /// overlay, stamped with the overlay's publication stamp for the key
    /// (0 = absent from the overlay).
    pub fn from_frontier(key: K, stamp: u64) -> Self {
        Self {
            key,
            id: LocationId::UNRESOLVED,
            origin: ReadOrigin::Frontier { stamp },
        }
    }

    /// Attaches the interned location id (executor hot path).
    pub fn with_location(mut self, id: LocationId) -> Self {
        self.id = id;
        self
    }

    /// Returns the observed version, or `None` for storage, resolved, probe and
    /// frontier reads (which validate by value/predicate/stamp rather than by
    /// version).
    pub fn version(&self) -> Option<Version> {
        match self.origin {
            ReadOrigin::MultiVersion(version) => Some(version),
            ReadOrigin::Storage
            | ReadOrigin::Resolved { .. }
            | ReadOrigin::DeltaProbe { .. }
            | ReadOrigin::Frontier { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_accessor_distinguishes_origins() {
        let v = Version::new(2, 1);
        assert_eq!(ReadDescriptor::from_version("k", v).version(), Some(v));
        assert_eq!(ReadDescriptor::from_storage("k").version(), None);
    }

    #[test]
    fn descriptors_compare_by_key_and_origin() {
        let a = ReadDescriptor::from_version(1u64, Version::new(0, 0));
        let b = ReadDescriptor::from_version(1u64, Version::new(0, 1));
        let c = ReadDescriptor::from_storage(1u64);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, a.clone());
    }

    #[test]
    fn hand_built_descriptors_are_unresolved() {
        assert!(!ReadDescriptor::from_storage(1u64).id.is_resolved());
        assert!(!ReadDescriptor::from_version(1u64, Version::new(0, 0))
            .id
            .is_resolved());
    }
}
