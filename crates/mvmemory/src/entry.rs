//! The per-`(transaction, location)` entry payload: a full value or a delta.

use block_stm_vm::DeltaOp;

/// What one transaction's last finished incarnation left at one location:
/// either a **full write** (the paper's only write kind) or a **commutative
/// delta** ([`DeltaOp`]) that applies on top of whatever the next-lower entry
/// (or pre-block storage) resolves to.
///
/// Reads resolve a *chain* of deltas lazily down to the nearest full write or
/// the storage base; the commit drain folds committed chains into concrete
/// `Value` entries (see `MVMemory::materialize_deltas`), so steady-state chain
/// length tracks the commit lag, not the block length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MVEntry<V> {
    /// A full write: the location's value as of this transaction.
    Value(V),
    /// A commutative delta on top of the lower entries / storage base.
    Delta(DeltaOp),
}

impl<V> MVEntry<V> {
    /// Returns the full value, if this entry is one.
    pub fn as_value(&self) -> Option<&V> {
        match self {
            MVEntry::Value(value) => Some(value),
            MVEntry::Delta(_) => None,
        }
    }

    /// Returns the delta op, if this entry is one.
    pub fn as_delta(&self) -> Option<DeltaOp> {
        match self {
            MVEntry::Value(_) => None,
            MVEntry::Delta(op) => Some(*op),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_distinguish_kinds() {
        let value: MVEntry<u64> = MVEntry::Value(7);
        assert_eq!(value.as_value(), Some(&7));
        assert_eq!(value.as_delta(), None);
        let delta: MVEntry<u64> = MVEntry::Delta(DeltaOp::add(3, 10));
        assert_eq!(delta.as_value(), None);
        assert_eq!(delta.as_delta(), Some(DeltaOp::add(3, 10)));
    }
}
