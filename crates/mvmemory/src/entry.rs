//! Per-(location, transaction) entries of the multi-version map.

use block_stm_vm::Incarnation;
use std::sync::Arc;

/// What the multi-version map stores for a given `(location, txn_idx)` pair:
/// either a concrete value written by a specific incarnation, or an `ESTIMATE` marker
/// left behind by an aborted incarnation (the next incarnation is *estimated* to write
/// this location again).
#[derive(Debug, Clone)]
pub enum EntryCell<V> {
    /// A value written by the given incarnation of the transaction. The value is kept
    /// behind an `Arc` so that converting a whole write-set to estimates (and cloning
    /// values out on reads) never deep-copies payloads.
    Write(Incarnation, Arc<V>),
    /// The aborted incarnation's write, now serving as a dependency estimate.
    Estimate,
}

impl<V> EntryCell<V> {
    /// Creates a written-value entry.
    pub fn write(incarnation: Incarnation, value: V) -> Self {
        EntryCell::Write(incarnation, Arc::new(value))
    }

    /// Returns `true` if this entry is an ESTIMATE marker.
    pub fn is_estimate(&self) -> bool {
        matches!(self, EntryCell::Estimate)
    }

    /// Returns the incarnation number and value if this is a written value.
    pub fn as_write(&self) -> Option<(Incarnation, &Arc<V>)> {
        match self {
            EntryCell::Write(incarnation, value) => Some((*incarnation, value)),
            EntryCell::Estimate => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_entry_exposes_incarnation_and_value() {
        let entry = EntryCell::write(3, 42u64);
        assert!(!entry.is_estimate());
        let (incarnation, value) = entry.as_write().unwrap();
        assert_eq!(incarnation, 3);
        assert_eq!(**value, 42);
    }

    #[test]
    fn estimate_entry_has_no_value() {
        let entry: EntryCell<u64> = EntryCell::Estimate;
        assert!(entry.is_estimate());
        assert!(entry.as_write().is_none());
    }

    #[test]
    fn clone_shares_the_value_allocation() {
        let entry = EntryCell::write(0, vec![1u8; 128]);
        let cloned = entry.clone();
        let (_, a) = entry.as_write().unwrap();
        let (_, b) = cloned.as_write().unwrap();
        assert!(Arc::ptr_eq(a, b));
    }
}
