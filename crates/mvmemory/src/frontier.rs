//! The cross-block frontier overlay for chained execution.
//!
//! When a `ChainExecutor` runs blocks back-to-back, block `N+1` begins
//! speculating while block `N` is still committing. Block `N+1`'s reads that
//! fall through its own multi-version map must observe the **latest committed
//! value across all predecessor blocks**, falling through to the immutable
//! pre-chain storage base below that. [`FrontierOverlay`] is that layer: a
//! concurrent `key → (stamp, value)` map that the predecessor's commit drain
//! publishes into, in commit order, while successor workers read from it.
//!
//! ## Why stamps
//!
//! A read served by the overlay is *not* final while the predecessor block is
//! still running — a later predecessor commit may overwrite the key. Plain
//! `ReadOrigin::Storage` descriptors validate as "the location is still absent
//! from the multi-version map", which would let a stale overlay read pass
//! validation. Every publication therefore assigns the key a fresh **stamp**
//! from a monotone counter; the read descriptor records the stamp it observed
//! ([`ReadOrigin::Frontier`](crate::ReadOrigin::Frontier)) and validation
//! re-checks stamp equality. Stamps are unique per publication and keys are
//! never removed, so stamp equality implies the read's value is still exactly
//! what a fresh read would observe (`stamp == 0` ⇔ the key is absent and the
//! read bottomed out in the immutable storage base).

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

/// Stamp value meaning "the key is absent from the overlay".
pub const FRONTIER_ABSENT: u64 = 0;

/// Latest committed value per key across all predecessor blocks of a chain,
/// with a per-key publication stamp (see the module docs for the validation
/// protocol). Shared by reference between the predecessor's commit drain
/// (writer) and the successor's workers (readers).
#[derive(Debug)]
pub struct FrontierOverlay<K, V> {
    entries: RwLock<HashMap<K, (u64, V)>>,
    /// Monotone publication counter; stamps start at 1 so 0 can mean "absent".
    next_stamp: AtomicU64,
    /// Number of `publish` batches applied (diagnostics / tests).
    publications: AtomicU64,
}

impl<K, V> Default for FrontierOverlay<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K, V> FrontierOverlay<K, V> {
    /// An empty overlay (chain start: every read falls through to storage).
    pub fn new() -> Self {
        Self {
            entries: RwLock::new(HashMap::new()),
            next_stamp: AtomicU64::new(1),
            publications: AtomicU64::new(0),
        }
    }
}

impl<K, V> FrontierOverlay<K, V>
where
    K: Eq + Hash + Clone + Debug,
    V: Clone + Debug,
{
    /// The value committed for `key` by the predecessor blocks, if any.
    pub fn get(&self, key: &K) -> Option<V> {
        self.entries.read().get(key).map(|(_, value)| value.clone())
    }

    /// The value together with its publication stamp: `(FRONTIER_ABSENT, None)`
    /// when no predecessor block committed a write to `key`. The pair is read
    /// under one lock acquisition, so the stamp always describes exactly the
    /// returned value.
    pub fn get_stamped(&self, key: &K) -> (u64, Option<V>) {
        match self.entries.read().get(key) {
            Some((stamp, value)) => (*stamp, Some(value.clone())),
            None => (FRONTIER_ABSENT, None),
        }
    }

    /// The current publication stamp of `key` (`FRONTIER_ABSENT` when the key
    /// is not in the overlay). This is what validation compares against the
    /// stamp recorded by the read.
    pub fn stamp_of(&self, key: &K) -> u64 {
        self.entries
            .read()
            .get(key)
            .map_or(FRONTIER_ABSENT, |(stamp, _)| *stamp)
    }

    /// Publishes one batch of committed writes (upserts; the chain state model
    /// has no deletions). Every touched key receives a fresh stamp, so any
    /// in-flight speculative read of an overwritten key fails its stamp check
    /// and re-executes. Called by the predecessor's commit drain in commit
    /// order — later publications of the same key overwrite earlier ones,
    /// which is exactly "latest committed value wins".
    pub fn publish<I>(&self, writes: I)
    where
        I: IntoIterator<Item = (K, V)>,
    {
        let mut writes = writes.into_iter().peekable();
        if writes.peek().is_none() {
            return;
        }
        let mut entries = self.entries.write();
        for (key, value) in writes {
            let stamp = self.next_stamp.fetch_add(1, Ordering::Relaxed);
            entries.insert(key, (stamp, value));
        }
        self.publications.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of distinct keys the chain has committed so far.
    pub fn len(&self) -> usize {
        self.entries.read().len()
    }

    /// Whether no predecessor block has committed any write yet.
    pub fn is_empty(&self) -> bool {
        self.entries.read().is_empty()
    }

    /// Number of non-empty `publish` batches applied so far.
    pub fn publications(&self) -> u64 {
        self.publications.load(Ordering::Relaxed)
    }

    /// Drains the overlay into a sorted `(key, value)` list — the chain's final
    /// committed state delta over the storage base.
    pub fn into_sorted_updates(self) -> Vec<(K, V)>
    where
        K: Ord,
    {
        let mut updates: Vec<(K, V)> = self
            .entries
            .into_inner()
            .into_iter()
            .map(|(key, (_, value))| (key, value))
            .collect();
        updates.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        updates
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absent_keys_read_as_stamp_zero() {
        let overlay: FrontierOverlay<u64, u64> = FrontierOverlay::new();
        assert!(overlay.is_empty());
        assert_eq!(overlay.get_stamped(&7), (FRONTIER_ABSENT, None));
        assert_eq!(overlay.stamp_of(&7), FRONTIER_ABSENT);
        assert_eq!(overlay.get(&7), None);
    }

    #[test]
    fn publish_assigns_fresh_stamps_and_latest_value_wins() {
        let overlay = FrontierOverlay::new();
        overlay.publish(vec![(1u64, 10u64), (2, 20)]);
        let (stamp_a, value) = overlay.get_stamped(&1);
        assert_eq!(value, Some(10));
        assert_ne!(stamp_a, FRONTIER_ABSENT);

        // A later publication of the same key overwrites it with a new stamp:
        // any read that captured `stamp_a` must fail validation.
        overlay.publish(vec![(1u64, 11u64)]);
        let (stamp_b, value) = overlay.get_stamped(&1);
        assert_eq!(value, Some(11));
        assert!(stamp_b > stamp_a);
        assert_eq!(overlay.stamp_of(&1), stamp_b);

        // Untouched keys keep their stamp (reads of key 2 stay valid).
        let (stamp_2, value_2) = overlay.get_stamped(&2);
        assert_eq!(value_2, Some(20));
        assert_ne!(stamp_2, stamp_a);
        assert_ne!(stamp_2, stamp_b);

        assert_eq!(overlay.len(), 2);
        assert_eq!(overlay.publications(), 2);
    }

    #[test]
    fn empty_publish_is_a_no_op() {
        let overlay: FrontierOverlay<u64, u64> = FrontierOverlay::new();
        overlay.publish(Vec::new());
        assert_eq!(overlay.publications(), 0);
        assert!(overlay.is_empty());
    }

    #[test]
    fn into_sorted_updates_returns_final_state() {
        let overlay = FrontierOverlay::new();
        overlay.publish(vec![(3u64, 30u64), (1, 10)]);
        overlay.publish(vec![(2u64, 20u64), (1, 11)]);
        assert_eq!(
            overlay.into_sorted_updates(),
            vec![(1, 11), (2, 20), (3, 30)]
        );
    }
}
