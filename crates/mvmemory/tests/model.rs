//! Property-based model test: the lock-free two-level `MVMemory` must behave
//! exactly like a trivial sequential reference model under arbitrary interleaved
//! record / re-record (with implicit removals) / estimate sequences, observed
//! through every `(location, reader)` pair after every step.
//!
//! The reference model is the paper's semantics written in the most obvious way: a
//! map of per-location `BTreeMap<txn, entry>` search trees. If the interner, the id
//! registry, the RCU slot arrays, tombstoning or compaction ever diverge from those
//! semantics, some read observes it and shrinking produces a minimal op sequence.

use block_stm_mvmemory::{LocationCache, MVMemory, MVReadOutput};
use block_stm_vm::Version;
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

const KEYS: u64 = 6;
const TXNS: usize = 8;

#[derive(Debug, Clone)]
enum Op {
    /// The next incarnation of `txn` records this write-set (locations the previous
    /// incarnation wrote but this one does not are removed, per Algorithm 2).
    Record { txn: usize, writes: Vec<(u64, u64)> },
    /// Abort `txn`'s last finished incarnation: its writes become ESTIMATEs.
    Estimate { txn: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..TXNS, vec((0..KEYS, any::<u64>()), 0..4))
            .prop_map(|(txn, writes)| Op::Record { txn, writes }),
        (0..TXNS).prop_map(|txn| Op::Estimate { txn }),
    ]
}

/// One model entry: the writer's incarnation plus the value, or `None` for an
/// ESTIMATE marker.
type ModelEntry = (usize, Option<u64>);

/// The sequential reference: per-location ordered maps, per-transaction write-set
/// bookkeeping, applied single-threadedly.
#[derive(Default)]
struct Model {
    data: BTreeMap<u64, BTreeMap<usize, ModelEntry>>,
    last_written: Vec<Vec<u64>>,
    incarnations: Vec<usize>,
}

impl Model {
    fn new() -> Self {
        Self {
            data: BTreeMap::new(),
            last_written: vec![Vec::new(); TXNS],
            incarnations: vec![0; TXNS],
        }
    }

    fn record(&mut self, txn: usize, writes: &[(u64, u64)]) -> usize {
        let incarnation = self.incarnations[txn];
        self.incarnations[txn] += 1;
        for (key, value) in writes {
            self.data
                .entry(*key)
                .or_default()
                .insert(txn, (incarnation, Some(*value)));
        }
        let new_keys: Vec<u64> = writes.iter().map(|(key, _)| *key).collect();
        let prev = std::mem::replace(&mut self.last_written[txn], new_keys.clone());
        for unwritten in prev.iter().filter(|key| !new_keys.contains(key)) {
            if let Some(tree) = self.data.get_mut(unwritten) {
                tree.remove(&txn);
            }
        }
        incarnation
    }

    fn estimate(&mut self, txn: usize) {
        for key in &self.last_written[txn] {
            if let Some(entry) = self.data.get_mut(key).and_then(|tree| tree.get_mut(&txn)) {
                entry.1 = None;
            }
        }
    }

    fn read(&self, key: u64, bound: usize) -> MVReadOutput<u64> {
        match self
            .data
            .get(&key)
            .and_then(|tree| tree.range(..bound).next_back())
        {
            None => MVReadOutput::NotFound,
            Some((&txn, (_, None))) => MVReadOutput::Dependency(txn),
            Some((&txn, (incarnation, Some(value)))) => {
                MVReadOutput::Versioned(Version::new(txn, *incarnation), *value)
            }
        }
    }

    fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (key, _) in self.data.iter() {
            if let MVReadOutput::Versioned(_, value) = self.read(*key, TXNS) {
                out.push((*key, value));
            }
        }
        out
    }

    fn entry_count(&self) -> usize {
        self.data.values().map(BTreeMap::len).sum()
    }
}

fn assert_all_reads_match(
    model: &Model,
    memory: &MVMemory<u64, u64>,
    cache: &mut LocationCache<u64, u64>,
    step: usize,
) -> Result<(), TestCaseError> {
    for key in 0..KEYS {
        for bound in 0..=TXNS {
            let expected = model.read(key, bound);
            // Exercise both the interner path and the worker-cache path.
            let uncached = memory.read(&key, bound);
            let cached = memory.read_with_cache(cache, &key, bound).output;
            // The shim's prop_assert_eq takes no format args; encode the context in
            // a tuple so a failure still names the step and read.
            prop_assert_eq!(
                (step, key, bound, "uncached", &uncached),
                (step, key, bound, "uncached", &expected)
            );
            prop_assert_eq!(
                (step, key, bound, "cached", &cached),
                (step, key, bound, "cached", &expected)
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mvmemory_matches_sequential_reference_model(ops in vec(arb_op(), 1..40)) {
        let memory: MVMemory<u64, u64> = MVMemory::new(TXNS);
        let mut cache = LocationCache::new();
        let mut model = Model::new();
        for (step, op) in ops.iter().enumerate() {
            match op {
                Op::Record { txn, writes } => {
                    let incarnation = model.record(*txn, writes);
                    // Alternate between the plain and cache-threaded record paths.
                    if step % 2 == 0 {
                        memory.record(
                            Version::new(*txn, incarnation),
                            vec![],
                            writes.clone(),
                        );
                    } else {
                        memory.record_with_cache(
                            &mut cache,
                            Version::new(*txn, incarnation),
                            vec![],
                            writes.clone(),
                        );
                    }
                }
                Op::Estimate { txn } => {
                    model.estimate(*txn);
                    memory.convert_writes_to_estimates(*txn);
                }
            }
            assert_all_reads_match(&model, &memory, &mut cache, step)?;
        }
        let mut snapshot = memory.snapshot();
        snapshot.sort_unstable();
        prop_assert_eq!(snapshot, model.snapshot());
        prop_assert_eq!(memory.entry_count(), model.entry_count());
    }

    #[test]
    fn model_equivalence_survives_block_resets(
        first in vec(arb_op(), 1..20),
        second in vec(arb_op(), 1..20),
    ) {
        // The reset must hide every previous-block value while recycling cells and
        // keeping interning; the second block must then behave like a fresh memory.
        let mut memory: MVMemory<u64, u64> = MVMemory::new(TXNS);
        let mut model = Model::new();
        let cache: LocationCache<u64, u64> = LocationCache::new();
        for op in &first {
            match op {
                Op::Record { txn, writes } => {
                    let incarnation = model.record(*txn, writes);
                    memory.record(Version::new(*txn, incarnation), vec![], writes.clone());
                }
                Op::Estimate { txn } => {
                    model.estimate(*txn);
                    memory.convert_writes_to_estimates(*txn);
                }
            }
        }
        drop(cache); // caches must not outlive the block
        memory.reset(TXNS);
        let mut model = Model::new();
        let mut cache = LocationCache::new();
        for (step, op) in second.iter().enumerate() {
            match op {
                Op::Record { txn, writes } => {
                    let incarnation = model.record(*txn, writes);
                    memory.record_with_cache(
                        &mut cache,
                        Version::new(*txn, incarnation),
                        vec![],
                        writes.clone(),
                    );
                }
                Op::Estimate { txn } => {
                    model.estimate(*txn);
                    memory.convert_writes_to_estimates(*txn);
                }
            }
            assert_all_reads_match(&model, &memory, &mut cache, step)?;
        }
    }
}
