//! Property-based model test: the lock-free two-level `MVMemory` must behave
//! exactly like a trivial sequential reference model under arbitrary interleaved
//! record / re-record (with implicit removals) / estimate sequences — now
//! including commutative **delta** entries — observed through every
//! `(location, reader)` pair after every step.
//!
//! The reference model is the paper's semantics (plus the delta extension)
//! written in the most obvious way: a map of per-location `BTreeMap<txn, entry>`
//! search trees, with reads that walk the tree downwards accumulating deltas
//! until a full value, an ESTIMATE or the bottom. If the interner, the id
//! registry, the RCU slot arrays, tombstoning, compaction or the lazy
//! chain-resolution path ever diverge from those semantics, some read observes
//! it and shrinking produces a minimal op sequence. Delta slots marked ESTIMATE
//! and reads that resolve across a [`MVMemory::reset`] are covered explicitly.

use block_stm_mvmemory::{LocationCache, MVMemory, MVReadOutput};
use block_stm_vm::{DeltaOp, Version};
use proptest::collection::vec;
use proptest::prelude::*;
use std::collections::BTreeMap;

const KEYS: u64 = 6;
const TXNS: usize = 8;
/// Shared aggregator bound; small enough that negative chains clamp at 0 in
/// realistic sequences, large enough that sums rarely clamp at the top.
const LIMIT: u128 = 1_000;

#[derive(Debug, Clone)]
enum Op {
    /// The next incarnation of `txn` records this write-set and delta-set
    /// (locations the previous incarnation wrote but this one does not are
    /// removed, per Algorithm 2; duplicate keys between the sets resolve
    /// last-wins, i.e. the delta).
    Record {
        txn: usize,
        writes: Vec<(u64, u64)>,
        deltas: Vec<(u64, i128)>,
    },
    /// Abort `txn`'s last finished incarnation: its writes (full *and* delta)
    /// become ESTIMATEs.
    Estimate { txn: usize },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            0..TXNS,
            vec((0..KEYS, 0..200u64), 0..3),
            vec((0..KEYS, -30..30i64), 0..3),
        )
            .prop_map(|(txn, writes, deltas)| Op::Record {
                txn,
                writes,
                deltas: deltas
                    .into_iter()
                    .map(|(key, delta)| (key, delta as i128))
                    .collect(),
            }),
        (0..TXNS).prop_map(|txn| Op::Estimate { txn }),
    ]
}

/// One model entry: the writer's incarnation plus its payload (`None` payload =
/// ESTIMATE marker).
#[derive(Debug, Clone, Copy)]
enum ModelPayload {
    Value(u64),
    Delta(DeltaOp),
}

type ModelEntry = (usize, Option<ModelPayload>);

/// The sequential reference: per-location ordered maps, per-transaction write-set
/// bookkeeping, applied single-threadedly.
#[derive(Default)]
struct Model {
    data: BTreeMap<u64, BTreeMap<usize, ModelEntry>>,
    last_written: Vec<Vec<u64>>,
    incarnations: Vec<usize>,
}

impl Model {
    fn new() -> Self {
        Self {
            data: BTreeMap::new(),
            last_written: vec![Vec::new(); TXNS],
            incarnations: vec![0; TXNS],
        }
    }

    fn record(&mut self, txn: usize, writes: &[(u64, u64)], deltas: &[(u64, i128)]) -> usize {
        let incarnation = self.incarnations[txn];
        self.incarnations[txn] += 1;
        // Same merge rule as MVMemory: full writes first, deltas after,
        // last-wins per key.
        let mut effects: Vec<(u64, ModelPayload)> = writes
            .iter()
            .map(|(key, value)| (*key, ModelPayload::Value(*value)))
            .collect();
        effects.extend(
            deltas
                .iter()
                .map(|(key, delta)| (*key, ModelPayload::Delta(DeltaOp::add(*delta, LIMIT)))),
        );
        let mut new_keys: Vec<u64> = Vec::new();
        for i in 0..effects.len() {
            let (key, payload) = effects[i];
            if effects[i + 1..].iter().any(|(later, _)| *later == key) {
                continue;
            }
            self.data
                .entry(key)
                .or_default()
                .insert(txn, (incarnation, Some(payload)));
            new_keys.push(key);
        }
        let prev = std::mem::replace(&mut self.last_written[txn], new_keys.clone());
        for unwritten in prev.iter().filter(|key| !new_keys.contains(key)) {
            if let Some(tree) = self.data.get_mut(unwritten) {
                tree.remove(&txn);
            }
        }
        incarnation
    }

    fn estimate(&mut self, txn: usize) {
        for key in &self.last_written[txn] {
            if let Some(entry) = self.data.get_mut(key).and_then(|tree| tree.get_mut(&txn)) {
                entry.1 = None;
            }
        }
    }

    /// The obvious downward walk: accumulate deltas until a full value, an
    /// estimate, or the bottom (base 0 — the model has no storage).
    fn read(&self, key: u64, bound: usize) -> MVReadOutput<u64> {
        let Some(tree) = self.data.get(&key) else {
            return MVReadOutput::NotFound;
        };
        let mut deltas: Vec<DeltaOp> = Vec::new();
        for (&txn, (incarnation, payload)) in tree.range(..bound).rev() {
            match payload {
                None => return MVReadOutput::Dependency(txn),
                Some(ModelPayload::Value(value)) => {
                    let version = Version::new(txn, *incarnation);
                    if deltas.is_empty() {
                        return MVReadOutput::Versioned(version, *value);
                    }
                    let accumulated = deltas
                        .iter()
                        .rev()
                        .fold(*value as u128, |acc, op| op.apply_clamped(acc));
                    return MVReadOutput::Resolved {
                        base_version: Some(version),
                        accumulated,
                    };
                }
                Some(ModelPayload::Delta(op)) => deltas.push(*op),
            }
        }
        if deltas.is_empty() {
            MVReadOutput::NotFound
        } else {
            let accumulated = deltas
                .iter()
                .rev()
                .fold(0u128, |acc, op| op.apply_clamped(acc));
            MVReadOutput::Resolved {
                base_version: None,
                accumulated,
            }
        }
    }

    fn snapshot(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        for (key, _) in self.data.iter() {
            match self.read(*key, TXNS) {
                MVReadOutput::Versioned(_, value) => out.push((*key, value)),
                MVReadOutput::Resolved { accumulated, .. } => {
                    out.push((*key, accumulated.min(u64::MAX as u128) as u64))
                }
                MVReadOutput::NotFound | MVReadOutput::Dependency(_) => {}
            }
        }
        out
    }

    fn entry_count(&self) -> usize {
        self.data.values().map(BTreeMap::len).sum()
    }
}

fn apply_op(
    op: &Op,
    step: usize,
    model: &mut Model,
    memory: &MVMemory<u64, u64>,
    cache: &mut LocationCache<u64, u64>,
) {
    match op {
        Op::Record {
            txn,
            writes,
            deltas,
        } => {
            let incarnation = model.record(*txn, writes, deltas);
            let delta_ops: Vec<(u64, DeltaOp)> = deltas
                .iter()
                .map(|(key, delta)| (*key, DeltaOp::add(*delta, LIMIT)))
                .collect();
            // Alternate between the plain and cache-threaded record paths.
            if step.is_multiple_of(2) {
                memory.record_with_deltas(
                    Version::new(*txn, incarnation),
                    vec![],
                    writes.clone(),
                    delta_ops,
                );
            } else {
                memory.record_with_cache_deltas(
                    cache,
                    Version::new(*txn, incarnation),
                    vec![],
                    writes.clone(),
                    delta_ops,
                );
            }
        }
        Op::Estimate { txn } => {
            model.estimate(*txn);
            memory.convert_writes_to_estimates(*txn);
        }
    }
}

fn assert_all_reads_match(
    model: &Model,
    memory: &MVMemory<u64, u64>,
    cache: &mut LocationCache<u64, u64>,
    step: usize,
) -> Result<(), TestCaseError> {
    for key in 0..KEYS {
        for bound in 0..=TXNS {
            let expected = model.read(key, bound);
            // Exercise both the interner path and the worker-cache path.
            let uncached = memory.read(&key, bound);
            let cached = memory.read_with_cache(cache, &key, bound).output;
            // The shim's prop_assert_eq takes no format args; encode the context in
            // a tuple so a failure still names the step and read.
            prop_assert_eq!(
                (step, key, bound, "uncached", &uncached),
                (step, key, bound, "uncached", &expected)
            );
            prop_assert_eq!(
                (step, key, bound, "cached", &cached),
                (step, key, bound, "cached", &expected)
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn mvmemory_matches_sequential_reference_model(ops in vec(arb_op(), 1..40)) {
        let memory: MVMemory<u64, u64> = MVMemory::new(TXNS);
        let mut cache = LocationCache::new();
        let mut model = Model::new();
        for (step, op) in ops.iter().enumerate() {
            apply_op(op, step, &mut model, &memory, &mut cache);
            assert_all_reads_match(&model, &memory, &mut cache, step)?;
        }
        let mut snapshot = memory.snapshot();
        snapshot.sort_unstable();
        prop_assert_eq!(snapshot, model.snapshot());
        prop_assert_eq!(memory.entry_count(), model.entry_count());
    }

    #[test]
    fn model_equivalence_survives_block_resets(
        first in vec(arb_op(), 1..20),
        second in vec(arb_op(), 1..20),
    ) {
        // The reset must hide every previous-block value (including delta
        // entries) while recycling cells and keeping interning; the second block
        // must then behave like a fresh memory — in particular, a delta chain in
        // the second block must never resolve through a stale first-block base.
        let mut memory: MVMemory<u64, u64> = MVMemory::new(TXNS);
        let mut model = Model::new();
        let mut cache: LocationCache<u64, u64> = LocationCache::new();
        for (step, op) in first.iter().enumerate() {
            apply_op(op, step, &mut model, &memory, &mut cache);
        }
        drop(cache); // caches must not outlive the block
        memory.reset(TXNS);
        let mut model = Model::new();
        let mut cache = LocationCache::new();
        for (step, op) in second.iter().enumerate() {
            apply_op(op, step, &mut model, &memory, &mut cache);
            assert_all_reads_match(&model, &memory, &mut cache, step)?;
        }
    }

    #[test]
    fn estimated_delta_slots_block_resolution_until_reexecution(
        base in 0..200u64,
        lower_delta in -30..30i64,
        upper_delta in -30..30i64,
    ) {
        // Directed shape of the delta lifecycle: value below, two deltas above,
        // the middle one aborted. Readers above the estimate must block; after
        // the re-execution the chain resolves again, matching the model.
        let memory: MVMemory<u64, u64> = MVMemory::new(TXNS);
        let mut model = Model::new();
        let mut cache = LocationCache::new();
        let ops = [
            Op::Record { txn: 0, writes: vec![(0, base)], deltas: vec![] },
            Op::Record { txn: 2, writes: vec![], deltas: vec![(0, lower_delta as i128)] },
            Op::Record { txn: 4, writes: vec![], deltas: vec![(0, upper_delta as i128)] },
            Op::Estimate { txn: 2 },
        ];
        for (step, op) in ops.iter().enumerate() {
            apply_op(op, step, &mut model, &memory, &mut cache);
        }
        prop_assert_eq!(memory.read(&0, 5), MVReadOutput::Dependency(2));
        prop_assert_eq!(memory.read(&0, 2), MVReadOutput::Versioned(Version::new(0, 0), base));
        assert_all_reads_match(&model, &memory, &mut cache, 4)?;
        // The blocker re-executes with a different delta: resolution works again.
        apply_op(
            &Op::Record { txn: 2, writes: vec![], deltas: vec![(0, upper_delta as i128)] },
            5,
            &mut model,
            &memory,
            &mut cache,
        );
        assert_all_reads_match(&model, &memory, &mut cache, 5)?;
    }
}
