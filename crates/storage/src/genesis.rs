//! Genesis (pre-block) state construction.

use crate::access_path::{AccessPath, AccountAddress, ConfigId, TokenId};
use crate::account::AccountResource;
use crate::state_value::StateValue;
use crate::storage::InMemoryStorage;

/// A destination genesis state can be materialized into: anything that can
/// accept `(AccessPath, StateValue)` records. [`InMemoryStorage`] is the
/// in-memory backend; the persistence tier implements this for its log store
/// so genesis is written *through the storage backend* (and a reopened store
/// reproduces it byte-for-byte) instead of existing only in memory.
pub trait GenesisSink {
    /// Records one genesis resource.
    fn put(&mut self, key: AccessPath, value: StateValue);
}

impl GenesisSink for InMemoryStorage<AccessPath, StateValue> {
    fn put(&mut self, key: AccessPath, value: StateValue) {
        self.insert(key, value);
    }
}

/// Adapts a plain `Vec` (useful for bulk loaders that want one pass over the
/// records, e.g. chunked ingestion into a disk store).
impl GenesisSink for Vec<(AccessPath, StateValue)> {
    fn put(&mut self, key: AccessPath, value: StateValue) {
        self.push((key, value));
    }
}

/// One ERC20-style token funded at genesis: every account holds
/// `balance_per_account`, the total supply is recorded under
/// [`AccessPath::token_supply`], and each account pre-approves the next account
/// in index order (`i` → `(i + 1) % n`, the "ring allowance") so
/// `transferFrom`-style transactions have a spendable allowance from block 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TokenGenesis {
    /// The token's identifier.
    pub token: TokenId,
    /// Initial token balance of every account.
    pub balance_per_account: u64,
    /// Allowance each account grants the next account in the ring (0 disables
    /// the ring and creates no allowance resources).
    pub ring_allowance: u64,
}

/// Builds a realistic pre-block state for the benchmark workloads: a universe of `n`
/// funded accounts plus the on-chain configuration resources that Diem p2p transactions
/// read during their prologue.
///
/// The builder is deterministic: the same parameters always produce the same state, so
/// parallel and sequential executions of the same block can be compared byte-for-byte.
#[derive(Debug, Clone)]
pub struct GenesisBuilder {
    num_accounts: u64,
    initial_balance: u64,
    initial_sequence_number: u64,
    config_blob_size: usize,
    lean_accounts: bool,
    tokens: Vec<TokenGenesis>,
}

impl Default for GenesisBuilder {
    fn default() -> Self {
        Self {
            num_accounts: 0,
            initial_balance: 1_000_000_000,
            initial_sequence_number: 0,
            config_blob_size: 64,
            lean_accounts: false,
            tokens: Vec::new(),
        }
    }
}

impl GenesisBuilder {
    /// Creates a builder for a universe of `num_accounts` accounts.
    pub fn new(num_accounts: u64) -> Self {
        Self {
            num_accounts,
            ..Self::default()
        }
    }

    /// Sets the initial balance of every account (default: 10^9).
    pub fn initial_balance(mut self, balance: u64) -> Self {
        self.initial_balance = balance;
        self
    }

    /// Sets the initial sequence number of every account (default: 0).
    pub fn initial_sequence_number(mut self, seq: u64) -> Self {
        self.initial_sequence_number = seq;
        self
    }

    /// Sets the size of each on-chain configuration blob (default: 64 bytes).
    pub fn config_blob_size(mut self, size: usize) -> Self {
        self.config_blob_size = size;
        self
    }

    /// Lean account mode: each account gets only its balance and sequence
    /// number (2 resources instead of 6), and the configuration resources are
    /// skipped. This is the footprint that makes **millions-of-accounts**
    /// universes practical for the ETH-transfer / ERC20 workload family, whose
    /// transactions never touch the Diem prologue resources.
    pub fn lean_accounts(mut self, lean: bool) -> Self {
        self.lean_accounts = lean;
        self
    }

    /// Funds an ERC20-style token at genesis (may be called once per token):
    /// every account receives `token.balance_per_account`, the exact total
    /// supply is recorded under [`AccessPath::token_supply`], and the ring
    /// allowances described on [`TokenGenesis`] are created.
    pub fn token(mut self, token: TokenGenesis) -> Self {
        self.tokens.push(token);
        self
    }

    /// Returns the address of workload account `index`.
    pub fn account_address(index: u64) -> AccountAddress {
        AccountAddress::from_index(index)
    }

    /// Materializes the pre-block storage in memory. Equivalent to
    /// [`build_into`](Self::build_into) an [`InMemoryStorage`].
    pub fn build(&self) -> InMemoryStorage<AccessPath, StateValue> {
        let mut storage = InMemoryStorage::with_capacity(self.resource_count());
        self.build_into(&mut storage);
        storage
    }

    /// Exact number of resources [`build_into`](Self::build_into) emits (for
    /// pre-sizing sinks).
    pub fn resource_count(&self) -> usize {
        let per_account = if self.lean_accounts { 2 } else { 6 };
        let per_token = |token: &TokenGenesis| {
            // Balances + supply resource + (optional) ring allowances.
            self.num_accounts as usize * if token.ring_allowance > 0 { 2 } else { 1 } + 1
        };
        let configs = if self.lean_accounts {
            0
        } else {
            ConfigId::ALL.len()
        };
        self.num_accounts as usize * per_account
            + configs
            + self.tokens.iter().map(per_token).sum::<usize>()
    }

    /// Materializes genesis **through a storage backend**: every resource is
    /// emitted to `sink` exactly once, in a deterministic order (configs, then
    /// accounts in index order, then token resources), with no key repeated —
    /// so any write-once backend (e.g. an append-only log) reproduces genesis
    /// byte-for-byte on reopen.
    pub fn build_into(&self, sink: &mut impl GenesisSink) {
        // On-chain configuration under the core address (skipped in lean mode:
        // the account-model workloads never read it).
        if !self.lean_accounts {
            for (i, id) in ConfigId::ALL.iter().enumerate() {
                let mut blob = vec![0u8; self.config_blob_size];
                for (j, byte) in blob.iter_mut().enumerate() {
                    *byte = (i as u8).wrapping_mul(31).wrapping_add(j as u8);
                }
                sink.put(AccessPath::config(*id), StateValue::Bytes(blob));
            }
        }

        // Funded accounts.
        for index in 0..self.num_accounts {
            let address = AccountAddress::from_index(index);
            sink.put(
                AccessPath::balance(address),
                StateValue::U64(self.initial_balance),
            );
            sink.put(
                AccessPath::sequence_number(address),
                StateValue::U64(self.initial_sequence_number),
            );
            if self.lean_accounts {
                continue;
            }
            let account =
                AccountResource::new(AccountResource::auth_key_for_index(index), u64::MAX / 2);
            sink.put(AccessPath::account(address), StateValue::Account(account));
            sink.put(AccessPath::freezing_bit(address), StateValue::Bool(false));
            sink.put(AccessPath::sent_events(address), StateValue::U64(0));
            sink.put(AccessPath::received_events(address), StateValue::U64(0));
        }

        // Token balances, supplies and ring allowances.
        for token in &self.tokens {
            for index in 0..self.num_accounts {
                let address = AccountAddress::from_index(index);
                sink.put(
                    AccessPath::token_balance(address, token.token),
                    StateValue::U64(token.balance_per_account),
                );
                if token.ring_allowance > 0 && self.num_accounts > 0 {
                    let spender =
                        AccountAddress::from_index((index + 1) % self.num_accounts.max(1));
                    sink.put(
                        AccessPath::token_allowance(address, token.token, spender),
                        StateValue::U64(token.ring_allowance),
                    );
                }
            }
            sink.put(
                AccessPath::token_supply(token.token),
                StateValue::U128(self.num_accounts as u128 * token.balance_per_account as u128),
            );
        }
    }

    /// Number of accounts this builder will create.
    pub fn num_accounts(&self) -> u64 {
        self.num_accounts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Storage;

    #[test]
    fn build_creates_expected_resource_count() {
        let storage = GenesisBuilder::new(10).build();
        assert_eq!(storage.len(), 10 * 6 + ConfigId::ALL.len());
    }

    #[test]
    fn accounts_are_funded_and_unfrozen() {
        let storage = GenesisBuilder::new(3).initial_balance(42).build();
        for index in 0..3 {
            let address = GenesisBuilder::account_address(index);
            assert_eq!(
                storage.get(&AccessPath::balance(address)),
                Some(StateValue::U64(42))
            );
            assert_eq!(
                storage.get(&AccessPath::sequence_number(address)),
                Some(StateValue::U64(0))
            );
            assert_eq!(
                storage.get(&AccessPath::freezing_bit(address)),
                Some(StateValue::Bool(false))
            );
            let account = storage.get(&AccessPath::account(address)).unwrap();
            assert!(!account.as_account().unwrap().frozen);
        }
    }

    #[test]
    fn config_resources_present_and_sized() {
        let storage = GenesisBuilder::new(0).config_blob_size(16).build();
        for id in ConfigId::ALL {
            let value = storage.get(&AccessPath::config(id)).unwrap();
            assert_eq!(value.as_bytes().unwrap().len(), 16);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = GenesisBuilder::new(25).build();
        let b = GenesisBuilder::new(25).build();
        assert_eq!(a.len(), b.len());
        for (key, value) in a.iter() {
            assert_eq!(b.get(key).as_ref(), Some(value));
        }
    }

    #[test]
    fn lean_mode_creates_only_balance_and_sequence_number() {
        let storage = GenesisBuilder::new(10).lean_accounts(true).build();
        assert_eq!(storage.len(), 10 * 2);
        let address = GenesisBuilder::account_address(3);
        assert!(storage.get(&AccessPath::balance(address)).is_some());
        assert!(storage.get(&AccessPath::sequence_number(address)).is_some());
        assert!(storage.get(&AccessPath::account(address)).is_none());
        for id in ConfigId::ALL {
            assert!(storage.get(&AccessPath::config(id)).is_none());
        }
    }

    #[test]
    fn token_genesis_funds_accounts_supply_and_ring_allowances() {
        let token = TokenGenesis {
            token: 7,
            balance_per_account: 500,
            ring_allowance: 120,
        };
        let storage = GenesisBuilder::new(4)
            .lean_accounts(true)
            .token(token)
            .build();
        // 2 per account + 2 token resources per account + 1 supply.
        assert_eq!(storage.len(), 4 * 2 + 4 * 2 + 1);
        for index in 0..4 {
            let address = GenesisBuilder::account_address(index);
            assert_eq!(
                storage.get(&AccessPath::token_balance(address, 7)),
                Some(StateValue::U64(500))
            );
            let spender = GenesisBuilder::account_address((index + 1) % 4);
            assert_eq!(
                storage.get(&AccessPath::token_allowance(address, 7, spender)),
                Some(StateValue::U64(120))
            );
        }
        assert_eq!(
            storage.get(&AccessPath::token_supply(7)),
            Some(StateValue::U128(4 * 500))
        );
    }

    #[test]
    fn zero_ring_allowance_creates_no_allowance_resources() {
        let token = TokenGenesis {
            token: 1,
            balance_per_account: 10,
            ring_allowance: 0,
        };
        let storage = GenesisBuilder::new(3)
            .lean_accounts(true)
            .token(token)
            .build();
        assert_eq!(storage.len(), 3 * 2 + 3 + 1);
    }

    #[test]
    fn lean_and_token_genesis_is_deterministic() {
        let make = || {
            GenesisBuilder::new(16)
                .lean_accounts(true)
                .token(TokenGenesis {
                    token: 2,
                    balance_per_account: 99,
                    ring_allowance: 5,
                })
                .build()
        };
        let (a, b) = (make(), make());
        assert_eq!(a.len(), b.len());
        for (key, value) in a.iter() {
            assert_eq!(b.get(key).as_ref(), Some(value));
        }
    }

    #[test]
    fn build_into_emits_each_resource_exactly_once_matching_build() {
        let builder = GenesisBuilder::new(12).token(TokenGenesis {
            token: 3,
            balance_per_account: 50,
            ring_allowance: 9,
        });
        let mut records: Vec<(AccessPath, StateValue)> = Vec::new();
        builder.build_into(&mut records);
        assert_eq!(records.len(), builder.resource_count(), "count is exact");
        // No key emitted twice: a write-once backend can ingest the stream.
        let mut seen = std::collections::HashSet::new();
        for (key, _) in &records {
            assert!(seen.insert(*key), "duplicate genesis key {key:?}");
        }
        // And the stream equals what build() materializes in memory.
        let storage = builder.build();
        assert_eq!(storage.len(), records.len());
        for (key, value) in &records {
            assert_eq!(storage.get(key).as_ref(), Some(value));
        }
    }

    #[test]
    fn build_into_is_deterministic_in_order_and_content() {
        let builder = GenesisBuilder::new(8).lean_accounts(true);
        let mut first: Vec<(AccessPath, StateValue)> = Vec::new();
        let mut second: Vec<(AccessPath, StateValue)> = Vec::new();
        builder.build_into(&mut first);
        builder.build_into(&mut second);
        assert_eq!(first, second);
    }

    #[test]
    fn initial_sequence_number_is_applied() {
        let storage = GenesisBuilder::new(1).initial_sequence_number(7).build();
        let address = GenesisBuilder::account_address(0);
        assert_eq!(
            storage.get(&AccessPath::sequence_number(address)),
            Some(StateValue::U64(7))
        );
    }
}
