//! Genesis (pre-block) state construction.

use crate::access_path::{AccessPath, AccountAddress, ConfigId};
use crate::account::AccountResource;
use crate::state_value::StateValue;
use crate::storage::InMemoryStorage;

/// Builds a realistic pre-block state for the benchmark workloads: a universe of `n`
/// funded accounts plus the on-chain configuration resources that Diem p2p transactions
/// read during their prologue.
///
/// The builder is deterministic: the same parameters always produce the same state, so
/// parallel and sequential executions of the same block can be compared byte-for-byte.
#[derive(Debug, Clone)]
pub struct GenesisBuilder {
    num_accounts: u64,
    initial_balance: u64,
    initial_sequence_number: u64,
    config_blob_size: usize,
}

impl Default for GenesisBuilder {
    fn default() -> Self {
        Self {
            num_accounts: 0,
            initial_balance: 1_000_000_000,
            initial_sequence_number: 0,
            config_blob_size: 64,
        }
    }
}

impl GenesisBuilder {
    /// Creates a builder for a universe of `num_accounts` accounts.
    pub fn new(num_accounts: u64) -> Self {
        Self {
            num_accounts,
            ..Self::default()
        }
    }

    /// Sets the initial balance of every account (default: 10^9).
    pub fn initial_balance(mut self, balance: u64) -> Self {
        self.initial_balance = balance;
        self
    }

    /// Sets the initial sequence number of every account (default: 0).
    pub fn initial_sequence_number(mut self, seq: u64) -> Self {
        self.initial_sequence_number = seq;
        self
    }

    /// Sets the size of each on-chain configuration blob (default: 64 bytes).
    pub fn config_blob_size(mut self, size: usize) -> Self {
        self.config_blob_size = size;
        self
    }

    /// Returns the address of workload account `index`.
    pub fn account_address(index: u64) -> AccountAddress {
        AccountAddress::from_index(index)
    }

    /// Materializes the pre-block storage.
    pub fn build(&self) -> InMemoryStorage<AccessPath, StateValue> {
        // 6 resources per account + the config resources.
        let capacity = self.num_accounts as usize * 6 + ConfigId::ALL.len();
        let mut storage = InMemoryStorage::with_capacity(capacity);

        // On-chain configuration under the core address.
        for (i, id) in ConfigId::ALL.iter().enumerate() {
            let mut blob = vec![0u8; self.config_blob_size];
            for (j, byte) in blob.iter_mut().enumerate() {
                *byte = (i as u8).wrapping_mul(31).wrapping_add(j as u8);
            }
            storage.insert(AccessPath::config(*id), StateValue::Bytes(blob));
        }

        // Funded accounts.
        for index in 0..self.num_accounts {
            let address = AccountAddress::from_index(index);
            let account =
                AccountResource::new(AccountResource::auth_key_for_index(index), u64::MAX / 2);
            storage.insert(
                AccessPath::balance(address),
                StateValue::U64(self.initial_balance),
            );
            storage.insert(
                AccessPath::sequence_number(address),
                StateValue::U64(self.initial_sequence_number),
            );
            storage.insert(AccessPath::account(address), StateValue::Account(account));
            storage.insert(AccessPath::freezing_bit(address), StateValue::Bool(false));
            storage.insert(AccessPath::sent_events(address), StateValue::U64(0));
            storage.insert(AccessPath::received_events(address), StateValue::U64(0));
        }

        storage
    }

    /// Number of accounts this builder will create.
    pub fn num_accounts(&self) -> u64 {
        self.num_accounts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::storage::Storage;

    #[test]
    fn build_creates_expected_resource_count() {
        let storage = GenesisBuilder::new(10).build();
        assert_eq!(storage.len(), 10 * 6 + ConfigId::ALL.len());
    }

    #[test]
    fn accounts_are_funded_and_unfrozen() {
        let storage = GenesisBuilder::new(3).initial_balance(42).build();
        for index in 0..3 {
            let address = GenesisBuilder::account_address(index);
            assert_eq!(
                storage.get(&AccessPath::balance(address)),
                Some(StateValue::U64(42))
            );
            assert_eq!(
                storage.get(&AccessPath::sequence_number(address)),
                Some(StateValue::U64(0))
            );
            assert_eq!(
                storage.get(&AccessPath::freezing_bit(address)),
                Some(StateValue::Bool(false))
            );
            let account = storage.get(&AccessPath::account(address)).unwrap();
            assert!(!account.as_account().unwrap().frozen);
        }
    }

    #[test]
    fn config_resources_present_and_sized() {
        let storage = GenesisBuilder::new(0).config_blob_size(16).build();
        for id in ConfigId::ALL {
            let value = storage.get(&AccessPath::config(id)).unwrap();
            assert_eq!(value.as_bytes().unwrap().len(), 16);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let a = GenesisBuilder::new(25).build();
        let b = GenesisBuilder::new(25).build();
        assert_eq!(a.len(), b.len());
        for (key, value) in a.iter() {
            assert_eq!(b.get(key).as_ref(), Some(value));
        }
    }

    #[test]
    fn initial_sequence_number_is_applied() {
        let storage = GenesisBuilder::new(1).initial_sequence_number(7).build();
        let address = GenesisBuilder::account_address(0);
        assert_eq!(
            storage.get(&AccessPath::sequence_number(address)),
            Some(StateValue::U64(7))
        );
    }
}
