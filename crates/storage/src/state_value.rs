//! Values stored at access paths.

use crate::account::AccountResource;
use serde::{Deserialize, Serialize};

/// The value stored at an [`AccessPath`](crate::AccessPath).
///
/// A real blockchain stores serialized Move resources (byte blobs); we keep typed
/// variants so workloads and tests can assert on semantic content (balances, sequence
/// numbers) without a serialization layer, plus a raw [`StateValue::Bytes`] variant for
/// configuration blobs and custom resources.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StateValue {
    /// An unsigned 64-bit quantity (balances, sequence numbers, event counters).
    U64(u64),
    /// An unsigned 128-bit quantity (total supply style values).
    U128(u128),
    /// A boolean flag (freezing bit).
    Bool(bool),
    /// A structured account resource.
    Account(AccountResource),
    /// An opaque blob (on-chain configuration, custom resources).
    Bytes(Vec<u8>),
}

impl StateValue {
    /// Returns the inner `u64`, if this value is a [`StateValue::U64`].
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            StateValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the inner `u128`, if this value is a [`StateValue::U128`].
    pub fn as_u128(&self) -> Option<u128> {
        match self {
            StateValue::U128(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the inner `bool`, if this value is a [`StateValue::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            StateValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the inner account resource, if this value is an [`StateValue::Account`].
    pub fn as_account(&self) -> Option<&AccountResource> {
        match self {
            StateValue::Account(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the inner byte blob, if this value is a [`StateValue::Bytes`].
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            StateValue::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Approximate in-memory size in bytes, used by the simulated gas model to charge
    /// proportionally to the amount of data read/written.
    pub fn size_hint(&self) -> usize {
        match self {
            StateValue::U64(_) => 8,
            StateValue::U128(_) => 16,
            StateValue::Bool(_) => 1,
            StateValue::Account(_) => AccountResource::SERIALIZED_SIZE,
            StateValue::Bytes(b) => b.len(),
        }
    }
}

impl From<u64> for StateValue {
    fn from(v: u64) -> Self {
        StateValue::U64(v)
    }
}

impl From<u128> for StateValue {
    fn from(v: u128) -> Self {
        StateValue::U128(v)
    }
}

impl From<bool> for StateValue {
    fn from(v: bool) -> Self {
        StateValue::Bool(v)
    }
}

impl From<AccountResource> for StateValue {
    fn from(v: AccountResource) -> Self {
        StateValue::Account(v)
    }
}

impl From<Vec<u8>> for StateValue {
    fn from(v: Vec<u8>) -> Self {
        StateValue::Bytes(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_match_variants() {
        assert_eq!(StateValue::U64(5).as_u64(), Some(5));
        assert_eq!(StateValue::U64(5).as_bool(), None);
        assert_eq!(StateValue::U128(7).as_u128(), Some(7));
        assert_eq!(StateValue::Bool(true).as_bool(), Some(true));
        assert_eq!(
            StateValue::Bytes(vec![1, 2, 3]).as_bytes(),
            Some(&[1u8, 2, 3][..])
        );
        let account = AccountResource::new([9u8; 32], 1_000);
        assert_eq!(
            StateValue::Account(account.clone()).as_account(),
            Some(&account)
        );
    }

    #[test]
    fn from_impls_produce_expected_variants() {
        assert_eq!(StateValue::from(1u64), StateValue::U64(1));
        assert_eq!(StateValue::from(2u128), StateValue::U128(2));
        assert_eq!(StateValue::from(true), StateValue::Bool(true));
        assert_eq!(StateValue::from(vec![9u8]), StateValue::Bytes(vec![9u8]));
    }

    #[test]
    fn size_hint_reflects_payload() {
        assert_eq!(StateValue::U64(0).size_hint(), 8);
        assert_eq!(StateValue::U128(0).size_hint(), 16);
        assert_eq!(StateValue::Bool(false).size_hint(), 1);
        assert_eq!(StateValue::Bytes(vec![0u8; 40]).size_hint(), 40);
        assert!(StateValue::Account(AccountResource::new([0; 32], 0)).size_hint() >= 40);
    }

    #[test]
    fn serde_roundtrip() {
        let value = StateValue::Account(AccountResource::new([3u8; 32], 77));
        let json = serde_json::to_string(&value).unwrap();
        assert_eq!(serde_json::from_str::<StateValue>(&json).unwrap(), value);
    }
}
