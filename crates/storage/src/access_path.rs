//! Account addresses, resource tags and access paths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A 16-byte account address, as used by Diem/Aptos.
///
/// Addresses are ordered and hashable so that they can key both the pre-block storage
/// and the multi-version memory. The convenience constructor
/// [`AccountAddress::from_index`] derives a deterministic address from a workload
/// account index, which is how the benchmark generators name their account universe.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AccountAddress(pub [u8; 16]);

impl AccountAddress {
    /// The all-zero address, reserved for on-chain configuration resources
    /// (the "core code address" in Diem terms).
    pub const CORE: AccountAddress = AccountAddress([0u8; 16]);

    /// Builds a deterministic address from a small integer index. Index `i` maps to an
    /// address whose low 8 bytes are a mixed version of `i`, so consecutive indices do
    /// not collide in the low bits used by hash sharding.
    pub fn from_index(index: u64) -> Self {
        // SplitMix64 finalizer: cheap, deterministic, well distributed.
        let mut z = index.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let mut bytes = [0u8; 16];
        bytes[..8].copy_from_slice(&index.to_be_bytes());
        bytes[8..].copy_from_slice(&z.to_be_bytes());
        AccountAddress(bytes)
    }

    /// Recovers the workload index this address was generated from (the high 8 bytes).
    /// Only meaningful for addresses created with [`from_index`](Self::from_index).
    pub fn index_hint(&self) -> u64 {
        let mut high = [0u8; 8];
        high.copy_from_slice(&self.0[..8]);
        u64::from_be_bytes(high)
    }

    /// Returns the raw bytes of the address.
    pub fn as_bytes(&self) -> &[u8; 16] {
        &self.0
    }
}

impl fmt::Debug for AccountAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x")?;
        for byte in &self.0 {
            write!(f, "{byte:02x}")?;
        }
        Ok(())
    }
}

impl fmt::Display for AccountAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// Identifier of an on-chain configuration resource stored under the core address.
///
/// Diem transactions consult a number of global configuration resources during the
/// prologue (transaction validation) phase — these account for most of the 21 reads a
/// Diem p2p transaction performs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ConfigId {
    /// Protocol version.
    Version,
    /// The chain id (mainnet / testnet / ...).
    ChainId,
    /// Gas schedule used to charge transactions.
    GasSchedule,
    /// Current block timestamp resource.
    BlockTimestamp,
    /// Consensus / validator-set configuration.
    ValidatorSet,
    /// Registered currency metadata (exchange rate to the gas currency).
    CurrencyInfo,
    /// Dual-attestation travel-rule limit.
    DualAttestationLimit,
    /// VM publishing / script allow-list option.
    VmPublishingOption,
    /// Epoch number resource.
    Epoch,
    /// Accrued transaction-fee resource.
    TransactionFees,
}

impl ConfigId {
    /// All configuration resources, in a fixed order (used by genesis and workloads).
    pub const ALL: [ConfigId; 10] = [
        ConfigId::Version,
        ConfigId::ChainId,
        ConfigId::GasSchedule,
        ConfigId::BlockTimestamp,
        ConfigId::ValidatorSet,
        ConfigId::CurrencyInfo,
        ConfigId::DualAttestationLimit,
        ConfigId::VmPublishingOption,
        ConfigId::Epoch,
        ConfigId::TransactionFees,
    ];
}

/// Identifier of an ERC20-style token contract. Each token owns its own balance
/// and allowance namespaces inside every account's storage, the way a real
/// token contract keys its `balances`/`allowances` maps by holder address.
pub type TokenId = u64;

/// The resource addressed within an account (or within the core address).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceTag {
    /// The account's coin balance.
    Balance,
    /// The account's sequence number (replay protection).
    SequenceNumber,
    /// The full account resource (authentication key, role, frozen flag).
    Account,
    /// The account's freezing bit, read during the prologue.
    FreezingBit,
    /// Event counter for sent-payment events.
    SentEvents,
    /// Event counter for received-payment events.
    ReceivedEvents,
    /// A global configuration resource (only meaningful under [`AccountAddress::CORE`]).
    Config(ConfigId),
    /// The account's balance in token `TokenId` (the token contract's
    /// `balances[address]` storage slot).
    TokenBalance(TokenId),
    /// The allowance `address` (the owner) has granted to `spender` in token
    /// `TokenId` (the contract's `allowances[owner][spender]` slot).
    TokenAllowance {
        /// The token contract the allowance belongs to.
        token: TokenId,
        /// The account allowed to spend the owner's tokens.
        spender: AccountAddress,
    },
    /// The total supply of token `TokenId` (only meaningful under
    /// [`AccountAddress::CORE`], where the token contract's fixed metadata lives).
    TokenSupply(TokenId),
    /// An arbitrary user-defined resource, for custom workloads and examples.
    Custom(u64),
}

/// A fully-qualified state key: which resource of which account.
///
/// This is the `location` / "access path" the paper's `MVMemory` maps to versioned
/// values.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AccessPath {
    /// The account that owns the resource.
    pub address: AccountAddress,
    /// The resource within the account.
    pub tag: ResourceTag,
}

impl AccessPath {
    /// Creates an access path.
    pub fn new(address: AccountAddress, tag: ResourceTag) -> Self {
        Self { address, tag }
    }

    /// The balance resource of `address`.
    pub fn balance(address: AccountAddress) -> Self {
        Self::new(address, ResourceTag::Balance)
    }

    /// The sequence-number resource of `address`.
    pub fn sequence_number(address: AccountAddress) -> Self {
        Self::new(address, ResourceTag::SequenceNumber)
    }

    /// The account resource of `address`.
    pub fn account(address: AccountAddress) -> Self {
        Self::new(address, ResourceTag::Account)
    }

    /// The freezing-bit resource of `address`.
    pub fn freezing_bit(address: AccountAddress) -> Self {
        Self::new(address, ResourceTag::FreezingBit)
    }

    /// The sent-events counter of `address`.
    pub fn sent_events(address: AccountAddress) -> Self {
        Self::new(address, ResourceTag::SentEvents)
    }

    /// The received-events counter of `address`.
    pub fn received_events(address: AccountAddress) -> Self {
        Self::new(address, ResourceTag::ReceivedEvents)
    }

    /// The global configuration resource `id` (owned by the core address).
    pub fn config(id: ConfigId) -> Self {
        Self::new(AccountAddress::CORE, ResourceTag::Config(id))
    }

    /// The balance of `address` in token `token`.
    pub fn token_balance(address: AccountAddress, token: TokenId) -> Self {
        Self::new(address, ResourceTag::TokenBalance(token))
    }

    /// The allowance `owner` has granted `spender` in token `token`.
    pub fn token_allowance(owner: AccountAddress, token: TokenId, spender: AccountAddress) -> Self {
        Self::new(owner, ResourceTag::TokenAllowance { token, spender })
    }

    /// The total-supply resource of token `token` (owned by the core address).
    pub fn token_supply(token: TokenId) -> Self {
        Self::new(AccountAddress::CORE, ResourceTag::TokenSupply(token))
    }

    /// A custom resource of `address`, for examples and synthetic workloads.
    pub fn custom(address: AccountAddress, id: u64) -> Self {
        Self::new(address, ResourceTag::Custom(id))
    }
}

impl fmt::Debug for AccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}::{:?}", self.address, self.tag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn from_index_is_deterministic_and_injective_for_small_indices() {
        let mut seen = HashSet::new();
        for i in 0..10_000u64 {
            let addr = AccountAddress::from_index(i);
            assert_eq!(addr, AccountAddress::from_index(i));
            assert_eq!(addr.index_hint(), i);
            assert!(seen.insert(addr), "collision at index {i}");
        }
    }

    #[test]
    fn core_address_is_all_zero() {
        assert_eq!(AccountAddress::CORE.as_bytes(), &[0u8; 16]);
    }

    #[test]
    fn display_formats_as_hex() {
        let addr = AccountAddress([0xab; 16]);
        let text = format!("{addr}");
        assert!(text.starts_with("0x"));
        assert_eq!(text.len(), 2 + 32);
        assert!(text[2..].chars().all(|c| c == 'a' || c == 'b'));
    }

    #[test]
    fn access_path_constructors_set_expected_tags() {
        let addr = AccountAddress::from_index(7);
        assert_eq!(AccessPath::balance(addr).tag, ResourceTag::Balance);
        assert_eq!(
            AccessPath::sequence_number(addr).tag,
            ResourceTag::SequenceNumber
        );
        assert_eq!(AccessPath::account(addr).tag, ResourceTag::Account);
        assert_eq!(AccessPath::freezing_bit(addr).tag, ResourceTag::FreezingBit);
        assert_eq!(
            AccessPath::config(ConfigId::GasSchedule).address,
            AccountAddress::CORE
        );
        assert_eq!(AccessPath::custom(addr, 3).tag, ResourceTag::Custom(3));
    }

    #[test]
    fn access_paths_are_distinct_per_tag() {
        let addr = AccountAddress::from_index(1);
        let paths = [
            AccessPath::balance(addr),
            AccessPath::sequence_number(addr),
            AccessPath::account(addr),
            AccessPath::freezing_bit(addr),
            AccessPath::sent_events(addr),
            AccessPath::received_events(addr),
        ];
        let unique: HashSet<_> = paths.iter().collect();
        assert_eq!(unique.len(), paths.len());
    }

    #[test]
    fn config_ids_all_distinct() {
        let unique: HashSet<_> = ConfigId::ALL.iter().collect();
        assert_eq!(unique.len(), ConfigId::ALL.len());
    }

    #[test]
    fn access_path_ordering_groups_by_address() {
        let a = AccountAddress::from_index(1);
        let b = AccountAddress::from_index(2);
        let mut paths = [
            AccessPath::balance(b),
            AccessPath::sequence_number(a),
            AccessPath::balance(a),
        ];
        paths.sort();
        assert_eq!(paths[0].address, paths[1].address);
    }

    #[test]
    fn serde_roundtrip() {
        let path = AccessPath::config(ConfigId::Epoch);
        let json = serde_json::to_string(&path).unwrap();
        let back: AccessPath = serde_json::from_str(&json).unwrap();
        assert_eq!(path, back);
    }

    #[test]
    fn token_paths_are_distinct_per_token_and_spender() {
        let owner = AccountAddress::from_index(1);
        let a = AccountAddress::from_index(2);
        let b = AccountAddress::from_index(3);
        let paths = [
            AccessPath::token_balance(owner, 0),
            AccessPath::token_balance(owner, 1),
            AccessPath::token_allowance(owner, 0, a),
            AccessPath::token_allowance(owner, 0, b),
            AccessPath::token_allowance(owner, 1, a),
            AccessPath::token_supply(0),
            AccessPath::token_supply(1),
            AccessPath::balance(owner),
        ];
        let unique: HashSet<_> = paths.iter().collect();
        assert_eq!(unique.len(), paths.len());
        assert_eq!(AccessPath::token_supply(0).address, AccountAddress::CORE);
    }

    #[test]
    fn token_paths_serde_roundtrip() {
        let owner = AccountAddress::from_index(4);
        let spender = AccountAddress::from_index(5);
        for path in [
            AccessPath::token_balance(owner, 7),
            AccessPath::token_allowance(owner, 7, spender),
            AccessPath::token_supply(7),
        ] {
            let json = serde_json::to_string(&path).unwrap();
            assert_eq!(serde_json::from_str::<AccessPath>(&json).unwrap(), path);
        }
    }
}
