//! The pre-block storage abstraction.

use std::collections::HashMap;
use std::hash::Hash;

/// Read-only pre-block state (the paper's `Storage` module).
///
/// During block execution, a read that finds no write by a lower transaction in the
/// multi-version memory falls back to this trait (Algorithm 3, `NOT_FOUND` case). The
/// trait is generic over key and value types so the execution engine can be reused
/// with non-blockchain state models in examples and property tests.
pub trait Storage<K, V>: Sync {
    /// Returns the value stored at `key` before the block executes, or `None` if the
    /// location does not exist.
    fn get(&self, key: &K) -> Option<V>;

    /// Returns whether the location exists in the pre-block state.
    fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }
}

/// A simple hash-map backed [`Storage`] implementation.
///
/// The map is immutable during block execution (shared by reference across worker
/// threads); populate it up-front via [`InMemoryStorage::from_iter`],
/// [`InMemoryStorage::insert`] or the genesis builder, then hand it to an executor.
#[derive(Debug, Clone, Default)]
pub struct InMemoryStorage<K, V> {
    values: HashMap<K, V>,
}

impl<K, V> InMemoryStorage<K, V>
where
    K: Eq + Hash,
{
    /// Creates an empty storage.
    pub fn new() -> Self {
        Self {
            values: HashMap::new(),
        }
    }

    /// Creates a storage with pre-allocated capacity.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            values: HashMap::with_capacity(capacity),
        }
    }

    /// Inserts a value (pre-block population).
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        self.values.insert(key, value)
    }

    /// Removes a value.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        self.values.remove(key)
    }

    /// Number of stored locations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the storage is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Applies a block's output (key/value updates) to produce the post-block state.
    /// Used by tests and examples that chain several blocks.
    pub fn apply_updates(&mut self, updates: impl IntoIterator<Item = (K, V)>) {
        for (key, value) in updates {
            self.values.insert(key, value);
        }
    }

    /// Iterates over all stored entries.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.values.iter()
    }
}

impl<K, V> FromIterator<(K, V)> for InMemoryStorage<K, V>
where
    K: Eq + Hash,
{
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        Self {
            values: iter.into_iter().collect(),
        }
    }
}

impl<K, V> Storage<K, V> for InMemoryStorage<K, V>
where
    K: Eq + Hash + Sync,
    V: Clone + Sync,
{
    fn get(&self, key: &K) -> Option<V> {
        self.values.get(key).cloned()
    }

    fn contains(&self, key: &K) -> bool {
        self.values.contains_key(key)
    }
}

/// Blanket implementation so `&S`, `Arc<S>` and `Box<S>` can be passed wherever a
/// storage is expected.
impl<K, V, S> Storage<K, V> for &S
where
    S: Storage<K, V> + ?Sized,
{
    fn get(&self, key: &K) -> Option<V> {
        (**self).get(key)
    }

    fn contains(&self, key: &K) -> bool {
        (**self).contains(key)
    }
}

impl<K, V, S> Storage<K, V> for std::sync::Arc<S>
where
    S: Storage<K, V> + Send + Sync + ?Sized,
{
    fn get(&self, key: &K) -> Option<V> {
        (**self).get(key)
    }

    fn contains(&self, key: &K) -> bool {
        (**self).contains(key)
    }
}

/// An empty storage: every read misses. Useful for tests whose transactions only read
/// locations written within the block.
#[derive(Debug, Default, Clone, Copy)]
pub struct EmptyStorage;

impl<K, V> Storage<K, V> for EmptyStorage
where
    K: Sync,
{
    fn get(&self, _key: &K) -> Option<V> {
        None
    }

    fn contains(&self, _key: &K) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn insert_get_contains() {
        let mut storage = InMemoryStorage::new();
        storage.insert("a", 1u64);
        assert_eq!(Storage::get(&storage, &"a"), Some(1));
        assert!(Storage::contains(&storage, &"a"));
        assert_eq!(Storage::get(&storage, &"b"), None);
        assert!(!Storage::contains(&storage, &"b"));
    }

    #[test]
    fn from_iter_and_len() {
        let storage: InMemoryStorage<u32, u32> = (0..10).map(|i| (i, i * i)).collect();
        assert_eq!(storage.len(), 10);
        assert!(!storage.is_empty());
        assert_eq!(Storage::get(&storage, &3), Some(9));
    }

    #[test]
    fn apply_updates_overwrites() {
        let mut storage: InMemoryStorage<&str, u64> = InMemoryStorage::new();
        storage.insert("x", 1);
        storage.apply_updates(vec![("x", 2), ("y", 3)]);
        assert_eq!(Storage::get(&storage, &"x"), Some(2));
        assert_eq!(Storage::get(&storage, &"y"), Some(3));
    }

    #[test]
    fn reference_and_arc_forwarding() {
        let mut storage = InMemoryStorage::new();
        storage.insert(1u8, 10u8);
        let by_ref: &InMemoryStorage<u8, u8> = &storage;
        assert_eq!(Storage::get(&by_ref, &1), Some(10));
        let by_arc = Arc::new(storage);
        assert_eq!(Storage::get(&by_arc, &1), Some(10));
        assert!(Storage::contains(&by_arc, &1));
    }

    #[test]
    fn empty_storage_always_misses() {
        let storage = EmptyStorage;
        let value: Option<u64> = Storage::<u32, u64>::get(&storage, &1);
        assert_eq!(value, None);
        assert!(!Storage::<u32, u64>::contains(&storage, &1));
    }
}
