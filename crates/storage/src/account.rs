//! Account resources.

use serde::{Deserialize, Serialize};

/// The structured account record stored under `ResourceTag::Account`.
///
/// Mirrors the fields a Diem p2p transaction prologue touches: the authentication key
/// (checked against the transaction's public key), the role/frozen information, and
/// bookkeeping for event streams. The balance and sequence number live in their own
/// resources ([`ResourceTag::Balance`](crate::ResourceTag::Balance) and
/// [`ResourceTag::SequenceNumber`](crate::ResourceTag::SequenceNumber)) because the
/// paper's workload counts them as separate reads/writes.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccountResource {
    /// Hash of the public key authorized to send from this account.
    pub authentication_key: [u8; 32],
    /// Role identifier (parent VASP, child VASP, designated dealer, ...).
    pub role_id: u64,
    /// Whether the account has been administratively frozen.
    pub frozen: bool,
    /// Number of payment events emitted by this account.
    pub sent_event_count: u64,
    /// Number of payment events received by this account.
    pub received_event_count: u64,
    /// A deposit limit used by the travel-rule check (dual attestation).
    pub deposit_limit: u64,
}

impl AccountResource {
    /// Approximate serialized size of an account resource, used by the gas model.
    pub const SERIALIZED_SIZE: usize = 32 + 8 + 1 + 8 + 8 + 8;

    /// Creates an unfrozen account with the given authentication key and deposit limit.
    pub fn new(authentication_key: [u8; 32], deposit_limit: u64) -> Self {
        Self {
            authentication_key,
            role_id: 0,
            frozen: false,
            sent_event_count: 0,
            received_event_count: 0,
            deposit_limit,
        }
    }

    /// Derives a deterministic authentication key for workload account `index`.
    pub fn auth_key_for_index(index: u64) -> [u8; 32] {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&index.to_le_bytes());
        key[8..16].copy_from_slice(&index.wrapping_mul(0x9E37_79B9).to_le_bytes());
        key[16..24].copy_from_slice(&(!index).to_le_bytes());
        key[24..].copy_from_slice(&index.rotate_left(17).to_le_bytes());
        key
    }

    /// Returns a copy with the sent-event counter incremented (what a p2p transaction
    /// does to the sender's account resource).
    pub fn with_sent_event(&self) -> Self {
        let mut next = self.clone();
        next.sent_event_count += 1;
        next
    }

    /// Returns a copy with the received-event counter incremented.
    pub fn with_received_event(&self) -> Self {
        let mut next = self.clone();
        next.received_event_count += 1;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_account_is_unfrozen_with_zero_events() {
        let account = AccountResource::new([1u8; 32], 500);
        assert!(!account.frozen);
        assert_eq!(account.sent_event_count, 0);
        assert_eq!(account.received_event_count, 0);
        assert_eq!(account.deposit_limit, 500);
    }

    #[test]
    fn auth_keys_differ_by_index() {
        let a = AccountResource::auth_key_for_index(1);
        let b = AccountResource::auth_key_for_index(2);
        assert_ne!(a, b);
        assert_eq!(a, AccountResource::auth_key_for_index(1));
    }

    #[test]
    fn event_helpers_increment_counters() {
        let account = AccountResource::new([0u8; 32], 0);
        let sent = account.with_sent_event();
        assert_eq!(sent.sent_event_count, 1);
        assert_eq!(sent.received_event_count, 0);
        let received = sent.with_received_event();
        assert_eq!(received.sent_event_count, 1);
        assert_eq!(received.received_event_count, 1);
    }

    #[test]
    fn serialized_size_matches_field_sum() {
        assert_eq!(AccountResource::SERIALIZED_SIZE, 65);
    }
}
