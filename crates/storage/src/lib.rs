//! Blockchain state substrate for the Block-STM reproduction.
//!
//! The paper evaluates Block-STM inside the Diem/Aptos blockchain, where transaction
//! reads and writes target *access paths*: `(account address, resource tag)` pairs
//! addressing Move resources such as the account's balance, its sequence number, the
//! freezing flag, on-chain configuration entries and block metadata. The engine itself
//! only needs a key/value interface, but the evaluation workloads (Diem p2p with
//! 21 reads / 4 writes, Aptos p2p with 8 reads / 5 writes) are defined in terms of
//! these resources, so this crate models them faithfully:
//!
//! * [`AccountAddress`] — a 16-byte account identifier (Diem-style).
//! * [`ResourceTag`] / [`AccessPath`] — what a transaction reads or writes.
//! * [`StateValue`] — the value stored at an access path (balances, sequence numbers,
//!   serialized resources, configuration blobs).
//! * [`AccountResource`] — the account record (balance, sequence number, frozen flag).
//! * [`Storage`] / [`InMemoryStorage`] — the *pre-block* state that every read falls
//!   back to when no smaller transaction in the block wrote the location
//!   (the `Storage` module abstracted in Algorithm 3 of the paper).
//! * [`GenesisBuilder`] — constructs a realistic pre-block state: `n` funded accounts
//!   plus the on-chain configuration entries that Diem p2p transactions read.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod access_path;
mod account;
mod genesis;
mod state_value;
mod storage;

pub use access_path::{AccessPath, AccountAddress, ConfigId, ResourceTag, TokenId};
pub use account::AccountResource;
pub use genesis::{GenesisBuilder, GenesisSink, TokenGenesis};
pub use state_value::StateValue;
pub use storage::{EmptyStorage, InMemoryStorage, Storage};
