//! Execution failure types.

use crate::types::TxnIndex;
use std::fmt;

/// A read could not be served speculatively because the location currently holds an
/// `ESTIMATE` marker written by a lower transaction: the transaction has a *dependency*
/// on `blocking_txn_idx` and its execution must be retried after that transaction's
/// next incarnation completes (the `READ_ERROR` of Algorithm 2/3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadDependency {
    /// The lower transaction whose estimated write blocks this read.
    pub blocking_txn_idx: TxnIndex,
}

impl ReadDependency {
    /// Creates a dependency on `blocking_txn_idx`.
    pub fn new(blocking_txn_idx: TxnIndex) -> Self {
        Self { blocking_txn_idx }
    }
}

impl fmt::Display for ReadDependency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "read blocked by estimate of txn {}",
            self.blocking_txn_idx
        )
    }
}

/// A deterministic, transaction-level abort code (the Move VM's equivalent of a failed
/// prologue check or an explicit `abort` instruction).
///
/// Aborted transactions still commit "successfully" from the engine's point of view —
/// they simply produce an empty write-set — exactly as a blockchain discards the
/// effects of a transaction whose payload aborts while still charging and sequencing
/// it. Keeping abort codes deterministic is essential: parallel and sequential
/// execution must agree on which transactions aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortCode {
    /// The sending account does not exist in the pre-block state.
    AccountNotFound,
    /// The sending account is frozen.
    AccountFrozen,
    /// Insufficient balance for the attempted operation.
    InsufficientBalance,
    /// The transaction's declared sequence number does not match the sender's
    /// on-chain sequence number (the classic prologue nonce check).
    NonceMismatch,
    /// An ERC20-style `transferFrom` exceeded the allowance the owner granted
    /// the spender.
    AllowanceExceeded,
    /// A resource had an unexpected type (storage corruption or test misconfiguration).
    TypeMismatch,
    /// A commutative delta write would have pushed its aggregator outside
    /// `[0, limit]` (the aggregator equivalent of an arithmetic overflow abort).
    /// Like every abort code this is deterministic: parallel execution converges
    /// on the same abort decision as the sequential order via (re-)validation of
    /// the bounds predicate.
    DeltaOverflow,
    /// Generic user-defined abort with a code, mirroring Move's `abort <code>`.
    User(u64),
}

impl fmt::Display for AbortCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbortCode::AccountNotFound => write!(f, "account not found"),
            AbortCode::AccountFrozen => write!(f, "account frozen"),
            AbortCode::InsufficientBalance => write!(f, "insufficient balance"),
            AbortCode::NonceMismatch => write!(f, "sequence number mismatch"),
            AbortCode::AllowanceExceeded => write!(f, "allowance exceeded"),
            AbortCode::TypeMismatch => write!(f, "resource type mismatch"),
            AbortCode::DeltaOverflow => write!(f, "aggregator delta out of bounds"),
            AbortCode::User(code) => write!(f, "user abort({code})"),
        }
    }
}

/// Why a transaction's `execute` returned early.
///
/// `Dependency` propagates a [`ReadDependency`] out of the transaction body (the `?`
/// operator converts automatically); `Abort` is a deterministic transaction abort.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionFailure {
    /// The execution must be suspended/re-scheduled: a read hit an ESTIMATE marker.
    Dependency(ReadDependency),
    /// The transaction aborted deterministically.
    Abort(AbortCode),
}

impl From<ReadDependency> for ExecutionFailure {
    fn from(dep: ReadDependency) -> Self {
        ExecutionFailure::Dependency(dep)
    }
}

impl From<AbortCode> for ExecutionFailure {
    fn from(code: AbortCode) -> Self {
        ExecutionFailure::Abort(code)
    }
}

impl fmt::Display for ExecutionFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecutionFailure::Dependency(dep) => write!(f, "{dep}"),
            ExecutionFailure::Abort(code) => write!(f, "abort: {code}"),
        }
    }
}

impl std::error::Error for ExecutionFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dependency_converts_into_failure() {
        let failure: ExecutionFailure = ReadDependency::new(4).into();
        assert_eq!(
            failure,
            ExecutionFailure::Dependency(ReadDependency {
                blocking_txn_idx: 4
            })
        );
    }

    #[test]
    fn abort_code_converts_into_failure() {
        let failure: ExecutionFailure = AbortCode::InsufficientBalance.into();
        assert_eq!(
            failure,
            ExecutionFailure::Abort(AbortCode::InsufficientBalance)
        );
    }

    #[test]
    fn display_messages_are_informative() {
        assert!(format!("{}", ReadDependency::new(9)).contains('9'));
        assert!(format!("{}", ExecutionFailure::Abort(AbortCode::User(42))).contains("42"));
        assert!(format!("{}", AbortCode::AccountFrozen).contains("frozen"));
        assert!(format!("{}", AbortCode::NonceMismatch).contains("sequence"));
        assert!(format!("{}", AbortCode::AllowanceExceeded).contains("allowance"));
    }
}
