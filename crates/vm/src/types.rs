//! Fundamental index types shared by the whole engine.

/// The position of a transaction within the block — the *preset serialization order*.
///
/// Transaction `tx_1 < tx_2 < ... < tx_n` of the paper corresponds to indices
/// `0, 1, ..., n-1` here.
pub type TxnIndex = usize;

/// The ordinal of a (re-)execution of a transaction: the first execution is
/// incarnation `0`, and each abort increments it.
pub type Incarnation = usize;

/// A *version* identifies one specific incarnation of one transaction:
/// `(transaction index, incarnation number)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Version {
    /// Position of the transaction in the block's preset order.
    pub txn_idx: TxnIndex,
    /// Incarnation number of this execution.
    pub incarnation: Incarnation,
}

impl Version {
    /// Creates a version.
    pub fn new(txn_idx: TxnIndex, incarnation: Incarnation) -> Self {
        Self {
            txn_idx,
            incarnation,
        }
    }

    /// The initial incarnation of transaction `txn_idx`.
    pub fn initial(txn_idx: TxnIndex) -> Self {
        Self::new(txn_idx, 0)
    }

    /// The version of the next incarnation of the same transaction.
    pub fn next_incarnation(&self) -> Self {
        Self::new(self.txn_idx, self.incarnation + 1)
    }
}

impl From<(TxnIndex, Incarnation)> for Version {
    fn from((txn_idx, incarnation): (TxnIndex, Incarnation)) -> Self {
        Self::new(txn_idx, incarnation)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_constructors() {
        let v = Version::new(3, 2);
        assert_eq!(v.txn_idx, 3);
        assert_eq!(v.incarnation, 2);
        assert_eq!(Version::initial(5), Version::new(5, 0));
        assert_eq!(Version::from((1, 4)), Version::new(1, 4));
    }

    #[test]
    fn next_incarnation_increments_only_incarnation() {
        let v = Version::new(7, 0).next_incarnation();
        assert_eq!(v, Version::new(7, 1));
    }

    #[test]
    fn version_ordering_is_by_index_then_incarnation() {
        assert!(Version::new(1, 5) < Version::new(2, 0));
        assert!(Version::new(2, 0) < Version::new(2, 1));
    }
}
