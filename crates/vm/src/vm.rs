//! The VM driver: executes one transaction against a state reader.

use crate::context::TransactionContext;
use crate::errors::{ExecutionFailure, ReadDependency};
use crate::gas::GasSchedule;
use crate::transaction::{Transaction, TransactionOutput};
use crate::types::TxnIndex;
use crate::view::StateReader;

/// Status part of a [`VmResult`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VmStatus<K, V> {
    /// The incarnation ran to completion; the output (write-set) is attached.
    /// Deterministic transaction aborts are *also* reported here, with an empty
    /// write-set and `abort_code` set — from the engine's perspective they committed.
    Done(TransactionOutput<K, V>),
    /// The incarnation could not complete because a read hit an ESTIMATE marker:
    /// `blocking_txn_idx` must finish its next incarnation first (the paper's
    /// `READ_ERROR` / `blocking_txn_idx` result of `VM.execute`).
    ReadError {
        /// The lower transaction this execution depends on.
        blocking_txn_idx: TxnIndex,
    },
}

/// Result of [`Vm::execute`].
pub type VmResult<K, V> = VmStatus<K, V>;

/// The virtual machine: a thin, stateless driver that wires a [`Transaction`]'s logic
/// to a [`TransactionContext`] and converts failures into engine-visible statuses.
///
/// The VM is `Copy`-cheap and shared by reference across worker threads; all mutable
/// execution state lives in the per-execution context.
#[derive(Debug, Clone, Copy)]
pub struct Vm {
    schedule: GasSchedule,
}

impl Vm {
    /// Creates a VM with the given gas schedule.
    pub fn new(schedule: GasSchedule) -> Self {
        Self { schedule }
    }

    /// A VM that charges gas but performs no synthetic work (unit tests).
    pub fn for_testing() -> Self {
        Self::new(GasSchedule::zero_work())
    }

    /// The gas schedule in force.
    pub fn schedule(&self) -> GasSchedule {
        self.schedule
    }

    /// Executes `txn` against `reader`.
    ///
    /// Never touches shared state: all effects are returned in the write-set of the
    /// [`VmStatus::Done`] output.
    pub fn execute<T, R>(&self, txn: &T, reader: &R) -> VmResult<T::Key, T::Value>
    where
        T: Transaction,
        R: StateReader<T::Key, T::Value>,
    {
        let mut ctx = TransactionContext::new(reader, self.schedule);
        match txn.execute(&mut ctx) {
            Ok(()) => VmStatus::Done(ctx.into_output()),
            Err(ExecutionFailure::Abort(code)) => VmStatus::Done(ctx.into_aborted_output(code)),
            Err(ExecutionFailure::Dependency(ReadDependency { blocking_txn_idx })) => {
                VmStatus::ReadError { blocking_txn_idx }
            }
        }
    }
}

impl Default for Vm {
    fn default() -> Self {
        Self::new(GasSchedule::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::AbortCode;
    use crate::view::ReadOutcome;
    use std::collections::HashMap;

    /// A transaction that reads `source`, adds `delta` and writes the result to `dest`;
    /// aborts if `source` is missing and `require_source` is set.
    struct AddTxn {
        source: u64,
        dest: u64,
        delta: u64,
        require_source: bool,
    }

    impl Transaction for AddTxn {
        type Key = u64;
        type Value = u64;

        fn execute<R: StateReader<u64, u64>>(
            &self,
            ctx: &mut TransactionContext<'_, u64, u64, R>,
        ) -> Result<(), ExecutionFailure> {
            let base = if self.require_source {
                ctx.read_required(&self.source, AbortCode::AccountNotFound)?
            } else {
                ctx.read(&self.source)?.unwrap_or(0)
            };
            ctx.write(self.dest, base + self.delta);
            Ok(())
        }

        fn label(&self) -> &'static str {
            "add"
        }
    }

    struct MapReader {
        values: HashMap<u64, u64>,
        estimate_at: Option<(u64, TxnIndex)>,
    }

    impl StateReader<u64, u64> for MapReader {
        fn read(&self, key: &u64) -> ReadOutcome<u64> {
            if let Some((k, blocking)) = self.estimate_at {
                if k == *key {
                    return ReadOutcome::Dependency(blocking);
                }
            }
            match self.values.get(key) {
                Some(v) => ReadOutcome::Value(*v),
                None => ReadOutcome::NotFound,
            }
        }
    }

    #[test]
    fn successful_execution_produces_write_set() {
        let reader = MapReader {
            values: HashMap::from([(1, 41)]),
            estimate_at: None,
        };
        let vm = Vm::for_testing();
        let txn = AddTxn {
            source: 1,
            dest: 2,
            delta: 1,
            require_source: true,
        };
        match vm.execute(&txn, &reader) {
            VmStatus::Done(output) => {
                assert_eq!(output.writes.len(), 1);
                assert_eq!(output.writes[0].key, 2);
                assert_eq!(output.writes[0].value, 42);
                assert!(output.gas_used > 0);
            }
            other => panic!("unexpected status: {other:?}"),
        }
    }

    #[test]
    fn deterministic_abort_commits_with_empty_write_set() {
        let reader = MapReader {
            values: HashMap::new(),
            estimate_at: None,
        };
        let vm = Vm::for_testing();
        let txn = AddTxn {
            source: 1,
            dest: 2,
            delta: 1,
            require_source: true,
        };
        match vm.execute(&txn, &reader) {
            VmStatus::Done(output) => {
                assert!(output.writes.is_empty());
                assert_eq!(output.abort_code, Some(AbortCode::AccountNotFound));
            }
            other => panic!("unexpected status: {other:?}"),
        }
    }

    #[test]
    fn dependency_read_surfaces_as_read_error() {
        let reader = MapReader {
            values: HashMap::new(),
            estimate_at: Some((1, 7)),
        };
        let vm = Vm::for_testing();
        let txn = AddTxn {
            source: 1,
            dest: 2,
            delta: 1,
            require_source: false,
        };
        assert_eq!(
            vm.execute(&txn, &reader),
            VmStatus::ReadError {
                blocking_txn_idx: 7
            }
        );
    }

    #[test]
    fn missing_optional_read_defaults_to_zero() {
        let reader = MapReader {
            values: HashMap::new(),
            estimate_at: None,
        };
        let vm = Vm::for_testing();
        let txn = AddTxn {
            source: 5,
            dest: 6,
            delta: 3,
            require_source: false,
        };
        match vm.execute(&txn, &reader) {
            VmStatus::Done(output) => assert_eq!(output.writes[0].value, 3),
            other => panic!("unexpected status: {other:?}"),
        }
    }
}
