//! The transaction trait and transaction outputs.

use crate::context::TransactionContext;
use crate::delta::{AggregatorValue, DeltaOp};
use crate::errors::{AbortCode, ExecutionFailure};
use crate::view::StateReader;
use std::fmt::Debug;
use std::hash::Hash;

/// Declared read/write access sets for one transaction — the structured form of
/// the conflict-specification hints the scheduling layers consume.
///
/// Hints are **advisory for scheduling** (pre-registering dependencies, choosing
/// an initial execution order) and may be partial, stale or plain wrong without
/// affecting the committed output. The one correctness-bearing bit is
/// [`exact`](AccessHints::exact): an exact hint *promises* that `writes` is a
/// superset of every location any execution of the transaction may write
/// (including delta applications). Engines that rely on that promise — Bohm's
/// pre-built version chains, hinted Block-STM's private-read validation
/// skipping — enforce it at run time and fail the block with a typed error
/// ([`UndeclaredWrite`](https://docs.rs/block-stm)-style) instead of committing
/// a wrong state when a transaction breaks it. `reads` is always advisory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessHints<K> {
    /// Locations the transaction is expected to read (advisory, may be partial).
    pub reads: Vec<K>,
    /// Locations the transaction is expected to write. Only a superset guarantee
    /// when [`exact`](AccessHints::exact) is set; advisory otherwise.
    pub writes: Vec<K>,
    /// Whether `writes` is guaranteed to cover every possible write.
    pub exact: bool,
}

impl<K> AccessHints<K> {
    /// Exact hints: `writes` is a superset of every possible write.
    pub fn exact(reads: Vec<K>, writes: Vec<K>) -> Self {
        Self {
            reads,
            writes,
            exact: true,
        }
    }

    /// Advisory hints: best-effort sets that engines may only use for
    /// scheduling, never for correctness.
    pub fn advisory(reads: Vec<K>, writes: Vec<K>) -> Self {
        Self {
            reads,
            writes,
            exact: false,
        }
    }

    /// Total number of hinted locations (used as a cheap per-txn work estimate).
    pub fn len(&self) -> usize {
        self.reads.len() + self.writes.len()
    }

    /// Whether both sets are empty.
    pub fn is_empty(&self) -> bool {
        self.reads.is_empty() && self.writes.is_empty()
    }
}

/// A single write produced by a transaction: the new value of one location.
///
/// The paper's write-sets are `(memory location, value)` pairs; we keep the pair as a
/// named struct so baselines and tests can pattern-match on it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteOp<K, V> {
    /// The written location.
    pub key: K,
    /// The new value.
    pub value: V,
}

impl<K, V> WriteOp<K, V> {
    /// Creates a write operation.
    pub fn new(key: K, value: V) -> Self {
        Self { key, value }
    }
}

/// The result of one successful (non-interrupted) transaction execution: the buffered
/// write-set plus bookkeeping the benchmarks report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionOutput<K, V> {
    /// The write-set, deduplicated: the *last* value written per location
    /// (Algorithm 3, Lines 78–81).
    pub writes: Vec<WriteOp<K, V>>,
    /// The delta-set: one merged commutative [`DeltaOp`] per aggregator location
    /// the transaction applied deltas to (disjoint from `writes` — a full write
    /// to the same location absorbs earlier deltas and later deltas fold into
    /// the buffered value). Applied on top of the prior state at commit.
    pub deltas: Vec<(K, DeltaOp)>,
    /// Gas consumed by the execution.
    pub gas_used: u64,
    /// If the transaction aborted deterministically (e.g. insufficient balance), the
    /// abort code. Aborted transactions produce an empty write-set but still commit.
    pub abort_code: Option<AbortCode>,
    /// Number of reads the execution performed (including reads of its own writes).
    pub reads_performed: usize,
    /// Opaque accumulator from the synthetic gas work; folding it into the output
    /// prevents the work loop from being optimized away.
    pub work_sink: u64,
}

impl<K, V> TransactionOutput<K, V> {
    /// An output with no effects (used for deterministically aborted transactions).
    pub fn empty() -> Self {
        Self {
            writes: Vec::new(),
            deltas: Vec::new(),
            gas_used: 0,
            abort_code: None,
            reads_performed: 0,
            work_sink: 0,
        }
    }

    /// Whether the transaction produced any commutative delta writes.
    pub fn has_deltas(&self) -> bool {
        !self.deltas.is_empty()
    }

    /// Whether the transaction aborted deterministically.
    pub fn is_aborted(&self) -> bool {
        self.abort_code.is_some()
    }

    /// Iterates over `(key, value)` pairs of the write-set.
    pub fn write_pairs(&self) -> impl Iterator<Item = (&K, &V)> {
        self.writes.iter().map(|w| (&w.key, &w.value))
    }
}

/// The trait implemented by every transaction type executed by the engines in this
/// workspace ("the smart contract code").
///
/// Implementations perform *all* state access through the provided
/// [`TransactionContext`]: reads via [`TransactionContext::read`] (which transparently
/// checks the transaction's own pending writes first, then asks the engine), writes via
/// [`TransactionContext::write`], and optional extra gas via
/// [`TransactionContext::charge_gas`]. The engine guarantees the context never exposes
/// state written by *higher* transactions in the preset order.
///
/// `execute` must be **deterministic**: given the same values returned by the reads, it
/// must produce the same writes and the same abort decision. This is what lets every
/// engine (and every incarnation) arrive at the same committed state.
pub trait Transaction: Send + Sync {
    /// The memory-location key type. `'static` because executors keep reusable
    /// per-block structures (multi-version memory, output slots) typed by `Key` alive
    /// across blocks; keys are plain data in every realistic state model.
    type Key: Eq + Hash + Ord + Clone + Debug + Send + Sync + 'static;
    /// The value type stored at locations (`'static` for the same reason as `Key`).
    ///
    /// [`AggregatorValue`] gives the engines a total, deterministic embedding of
    /// values into the `u128` aggregator domain so commutative delta writes can
    /// be resolved over any state model. Models that never use deltas implement
    /// it with any canonical embedding (e.g. everything maps to `0`).
    type Value: Clone + PartialEq + Debug + Send + Sync + AggregatorValue + 'static;

    /// Executes the transaction logic against the instrumented context.
    ///
    /// Returning `Err(ExecutionFailure::Dependency(_))` aborts the incarnation because
    /// a read hit an ESTIMATE marker (propagated automatically by `?` on context
    /// reads). Returning `Err(ExecutionFailure::Abort(_))` is a deterministic
    /// transaction abort: the engine commits the transaction with an empty write-set.
    fn execute<R: StateReader<Self::Key, Self::Value>>(
        &self,
        ctx: &mut TransactionContext<'_, Self::Key, Self::Value, R>,
    ) -> Result<(), ExecutionFailure>;

    /// A human-readable label used in logs and benchmark output.
    fn label(&self) -> &'static str {
        "txn"
    }

    /// The transaction's declared access sets, when the model can provide them.
    ///
    /// Block-STM never needs hints (run-time write-set estimation is its whole
    /// point), but it can *use* them: the hinted scheduler pre-registers
    /// dependencies and reorders initial execution from them, and the Bohm
    /// baseline builds its placeholder version chains from exact hints when
    /// driven through the engine-agnostic `BlockExecutor` interface. The
    /// default (`None`) opts out: hint-aware engines fall back to plain
    /// speculation, and engines that *require* hints (Bohm) report a typed
    /// error rather than guess.
    fn access_hints(&self) -> Option<AccessHints<Self::Key>> {
        None
    }

    /// The transaction's *declared* write-set — a superset of every location any
    /// execution of it may write — when the transaction model guarantees one.
    ///
    /// Derived from [`access_hints`](Transaction::access_hints): only an
    /// `exact` hint carries the superset guarantee, so advisory hints yield
    /// `None` here. Kept as a convenience for consumers that only care about
    /// guaranteed write-sets (Bohm's chains, the persistence layer's commit
    /// prefetch); implementors should override `access_hints`, not this.
    fn declared_write_set(&self) -> Option<Vec<Self::Key>> {
        self.access_hints()
            .filter(|hints| hints.exact)
            .map(|hints| hints.writes)
    }
}

/// A transaction wrapper that overrides the hints of its inner transaction.
///
/// Workload generators use this to emit deliberately imprecise or partial hint
/// sets (the accuracy knob of the adaptive benchmarks), and the property tests
/// use it to hand engines *wrong* hints and assert the committed output still
/// matches sequential execution byte for byte.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintedTransaction<T: Transaction> {
    /// The wrapped transaction; execution delegates to it unchanged.
    pub inner: T,
    /// The hints to expose instead of the inner transaction's own
    /// (`None` = expose no hints at all).
    pub hints: Option<AccessHints<T::Key>>,
}

impl<T: Transaction> HintedTransaction<T> {
    /// Wraps `inner`, exposing `hints` instead of its own.
    pub fn new(inner: T, hints: Option<AccessHints<T::Key>>) -> Self {
        Self { inner, hints }
    }

    /// Wraps `inner`, exposing no hints (the "coverage gap" case).
    pub fn unhinted(inner: T) -> Self {
        Self { inner, hints: None }
    }
}

impl<T: Transaction> Transaction for HintedTransaction<T> {
    type Key = T::Key;
    type Value = T::Value;

    fn execute<R: StateReader<Self::Key, Self::Value>>(
        &self,
        ctx: &mut TransactionContext<'_, Self::Key, Self::Value, R>,
    ) -> Result<(), ExecutionFailure> {
        self.inner.execute(ctx)
    }

    fn label(&self) -> &'static str {
        self.inner.label()
    }

    fn access_hints(&self) -> Option<AccessHints<Self::Key>> {
        self.hints.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_op_holds_key_and_value() {
        let op = WriteOp::new("k", 7u64);
        assert_eq!(op.key, "k");
        assert_eq!(op.value, 7);
    }

    #[test]
    fn empty_output_has_no_effects() {
        let output: TransactionOutput<u64, u64> = TransactionOutput::empty();
        assert!(output.writes.is_empty());
        assert!(!output.is_aborted());
        assert_eq!(output.gas_used, 0);
    }

    #[test]
    fn write_pairs_iterates_in_order() {
        let output = TransactionOutput {
            writes: vec![WriteOp::new(1u32, 10u32), WriteOp::new(2, 20)],
            deltas: vec![],
            gas_used: 5,
            abort_code: None,
            reads_performed: 0,
            work_sink: 0,
        };
        let pairs: Vec<_> = output.write_pairs().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(pairs, vec![(1, 10), (2, 20)]);
    }

    struct NoHints;
    impl Transaction for NoHints {
        type Key = u64;
        type Value = u64;
        fn execute<R: StateReader<u64, u64>>(
            &self,
            _ctx: &mut TransactionContext<'_, u64, u64, R>,
        ) -> Result<(), ExecutionFailure> {
            Ok(())
        }
    }

    #[test]
    fn declared_write_set_requires_exact_hints() {
        struct Advisory;
        impl Transaction for Advisory {
            type Key = u64;
            type Value = u64;
            fn execute<R: StateReader<u64, u64>>(
                &self,
                _ctx: &mut TransactionContext<'_, u64, u64, R>,
            ) -> Result<(), ExecutionFailure> {
                Ok(())
            }
            fn access_hints(&self) -> Option<AccessHints<u64>> {
                Some(AccessHints::advisory(vec![1], vec![2]))
            }
        }
        struct Exact;
        impl Transaction for Exact {
            type Key = u64;
            type Value = u64;
            fn execute<R: StateReader<u64, u64>>(
                &self,
                _ctx: &mut TransactionContext<'_, u64, u64, R>,
            ) -> Result<(), ExecutionFailure> {
                Ok(())
            }
            fn access_hints(&self) -> Option<AccessHints<u64>> {
                Some(AccessHints::exact(vec![1], vec![2]))
            }
        }
        assert_eq!(NoHints.declared_write_set(), None);
        assert_eq!(
            Advisory.declared_write_set(),
            None,
            "advisory hints carry no guarantee"
        );
        assert_eq!(Exact.declared_write_set(), Some(vec![2]));
    }

    #[test]
    fn hinted_transaction_overrides_hints_only() {
        let wrapped = HintedTransaction::new(NoHints, Some(AccessHints::advisory(vec![7], vec![])));
        assert_eq!(
            wrapped.access_hints(),
            Some(AccessHints::advisory(vec![7], vec![]))
        );
        assert_eq!(HintedTransaction::unhinted(NoHints).access_hints(), None);
    }

    #[test]
    fn access_hints_len_counts_both_sets() {
        let hints = AccessHints::exact(vec![1u64, 2], vec![3]);
        assert_eq!(hints.len(), 3);
        assert!(!hints.is_empty());
        assert!(AccessHints::<u64>::advisory(vec![], vec![]).is_empty());
    }

    #[test]
    fn aborted_output_reports_is_aborted() {
        let output: TransactionOutput<u64, u64> = TransactionOutput {
            abort_code: Some(AbortCode::User(3)),
            ..TransactionOutput::empty()
        };
        assert!(output.is_aborted());
    }
}
