//! A deterministic synthetic gas model.
//!
//! The paper's throughput numbers are dominated by Move VM interpretation: a single
//! Diem p2p transaction costs roughly twice as much VM time as an Aptos p2p transaction
//! (§4.1: sequential throughput of ~5k tps vs ~10k tps). We do not interpret Move
//! bytecode; instead each transaction *burns* a configurable number of abstract gas
//! units, and every unit performs a fixed amount of real CPU work (an integer-mixing
//! loop that the optimizer cannot remove because the result feeds a `black_box`-style
//! accumulator carried in the meter).
//!
//! This keeps the simulated workloads honest in the two ways that matter for
//! reproducing the evaluation's *shape*:
//!
//! * the ratio between engine overhead (scheduling, validation, map operations) and
//!   "real" VM work is realistic and tunable, and
//! * the Diem-vs-Aptos cost ratio (~2x) is preserved by giving the two transaction
//!   profiles different gas budgets.

use serde::{Deserialize, Serialize};

/// Per-operation gas costs, in abstract units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GasSchedule {
    /// Flat cost charged for every transaction (signature check, prologue, epilogue).
    pub base_cost: u64,
    /// Cost charged per read, plus `per_byte_cost` for each byte read.
    pub read_cost: u64,
    /// Cost charged per write, plus `per_byte_cost` for each byte written.
    pub write_cost: u64,
    /// Additional cost per byte moved.
    pub per_byte_cost: u64,
    /// How many iterations of the synthetic work loop one gas unit corresponds to.
    /// `0` disables synthetic work entirely (useful for pure scheduler benchmarks).
    pub work_per_unit: u64,
}

impl GasSchedule {
    /// A schedule that charges gas but performs no synthetic CPU work. Used by unit
    /// tests where wall-clock time does not matter.
    pub const fn zero_work() -> Self {
        Self {
            base_cost: 10,
            read_cost: 1,
            write_cost: 2,
            per_byte_cost: 0,
            work_per_unit: 0,
        }
    }

    /// Default schedule used by the benchmark workloads. The constants were picked so
    /// that, combined with the Diem/Aptos per-transaction budgets in
    /// [`crate::p2p::P2pFlavor`], a sequential execution spends on the order of 100 µs
    /// per Diem p2p transaction (~10k sequential tps) — about half the per-transaction
    /// cost of the real Move VM in the paper (5k tps), but large enough that the
    /// engine's bookkeeping is a small fraction of each transaction, as it is in
    /// production. See EXPERIMENTS.md for the calibration notes.
    pub const fn benchmark() -> Self {
        Self {
            base_cost: 40,
            read_cost: 4,
            write_cost: 8,
            per_byte_cost: 0,
            work_per_unit: 100,
        }
    }

    /// Scales the synthetic work factor, leaving relative per-op costs untouched.
    pub fn with_work_per_unit(mut self, work_per_unit: u64) -> Self {
        self.work_per_unit = work_per_unit;
        self
    }
}

impl Default for GasSchedule {
    fn default() -> Self {
        Self::benchmark()
    }
}

/// Tracks gas consumption of one transaction execution and performs the corresponding
/// synthetic CPU work.
#[derive(Debug, Clone)]
pub struct GasMeter {
    schedule: GasSchedule,
    used: u64,
    /// Accumulator for the synthetic work loop; reading it in [`Self::finish`] keeps
    /// the loop observable so it cannot be optimized away.
    sink: u64,
}

impl GasMeter {
    /// Creates a meter with the given schedule.
    pub fn new(schedule: GasSchedule) -> Self {
        Self {
            schedule,
            used: 0,
            sink: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The schedule in force.
    pub fn schedule(&self) -> &GasSchedule {
        &self.schedule
    }

    /// Gas consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Charges the flat per-transaction base cost.
    pub fn charge_base(&mut self) {
        self.charge_units(self.schedule.base_cost);
    }

    /// Charges for a read of `bytes` bytes.
    pub fn charge_read(&mut self, bytes: usize) {
        self.charge_units(self.schedule.read_cost + self.schedule.per_byte_cost * bytes as u64);
    }

    /// Charges for a write of `bytes` bytes.
    pub fn charge_write(&mut self, bytes: usize) {
        self.charge_units(self.schedule.write_cost + self.schedule.per_byte_cost * bytes as u64);
    }

    /// Charges `units` abstract gas units and performs the associated synthetic work.
    pub fn charge_units(&mut self, units: u64) {
        self.used += units;
        let iterations = units * self.schedule.work_per_unit;
        let mut x = self.sink ^ units.wrapping_mul(0xD129_0CB3_9B7A_AC15);
        for _ in 0..iterations {
            // xorshift64* round: cheap, dependent operations that do not vectorize to
            // nothing and keep a serial dependency chain (like bytecode dispatch).
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            x = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
        }
        self.sink = x;
    }

    /// Finishes metering, returning `(gas_used, work_sink)`. The sink value is folded
    /// into outputs by callers that need to guarantee the synthetic work is observable.
    pub fn finish(self) -> (u64, u64) {
        (self.used, self.sink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_according_to_schedule() {
        let schedule = GasSchedule {
            base_cost: 5,
            read_cost: 2,
            write_cost: 3,
            per_byte_cost: 1,
            work_per_unit: 0,
        };
        let mut meter = GasMeter::new(schedule);
        meter.charge_base();
        meter.charge_read(4);
        meter.charge_write(10);
        assert_eq!(meter.used(), 5 + (2 + 4) + (3 + 10));
    }

    #[test]
    fn zero_work_schedule_burns_no_time_but_counts_gas() {
        let mut meter = GasMeter::new(GasSchedule::zero_work());
        meter.charge_units(1_000_000);
        assert_eq!(meter.used(), 1_000_000);
    }

    #[test]
    fn synthetic_work_changes_the_sink_deterministically() {
        let schedule = GasSchedule::zero_work().with_work_per_unit(8);
        let mut a = GasMeter::new(schedule);
        let mut b = GasMeter::new(schedule);
        a.charge_units(100);
        b.charge_units(100);
        let (gas_a, sink_a) = a.finish();
        let (gas_b, sink_b) = b.finish();
        assert_eq!(gas_a, gas_b);
        assert_eq!(sink_a, sink_b);

        let mut c = GasMeter::new(schedule);
        c.charge_units(101);
        let (_, sink_c) = c.finish();
        assert_ne!(sink_a, sink_c, "different work must yield different sinks");
    }

    #[test]
    fn benchmark_schedule_is_more_expensive_than_zero_work() {
        let bench = GasSchedule::benchmark();
        assert!(bench.work_per_unit > 0);
        assert!(bench.base_cost > 0);
    }

    #[test]
    fn schedule_serde_roundtrip() {
        let schedule = GasSchedule::benchmark();
        let json = serde_json::to_string(&schedule).unwrap();
        let back: GasSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(schedule, back);
    }
}
