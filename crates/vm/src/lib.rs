//! Simulated smart-contract virtual machine for the Block-STM reproduction.
//!
//! The paper executes Move transactions inside the Diem/Aptos VM. The engine only
//! requires three properties of that VM (§2 and §3.2.1):
//!
//! 1. **Instrumented reads and writes.** Every read goes through a view the engine
//!    controls (so it can be served from the multi-version memory or storage and
//!    recorded in the read-set), and writes are buffered into a write-set that is
//!    applied to shared memory only after the execution finishes.
//! 2. **No side effects outside the write-set** — `VM.execute` "does not write to
//!    shared memory" (Algorithm 1, Line 12), making speculative execution safe.
//! 3. **Error encapsulation** — the VM "captures all execution errors that could stem
//!    from inconsistent reads during speculative transaction execution" (§4), so
//!    opacity is not required.
//!
//! This crate provides a small deterministic VM with those properties:
//!
//! * [`Transaction`] — the trait user transactions implement ("smart contract code"),
//!   generic over key and value types.
//! * [`StateReader`] / [`ReadOutcome`] — the interface the execution engine implements
//!   to serve reads (from `MVMemory` + `Storage` in the parallel executor, or from the
//!   current state in the sequential one).
//! * [`TransactionContext`] — the instrumented view handed to transaction code:
//!   read-your-own-writes, write buffering, gas metering, dependency interrupts.
//! * [`Vm`] — drives one transaction execution and produces a [`VmResult`]
//!   (write-set, gas used, or a read dependency / abort).
//! * [`p2p`] — Diem-style (21 reads / 4 writes) and Aptos-style (8 reads / 5 writes)
//!   peer-to-peer payment transactions used throughout the paper's evaluation.
//! * [`synthetic`] — configurable read/write transactions over small integer key
//!   spaces, used by property tests and the examples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod context;
pub mod delta;
mod errors;
mod gas;
pub mod p2p;
pub mod synthetic;
mod transaction;
mod types;
mod view;
mod vm;

pub use context::TransactionContext;
pub use delta::{AggregatorValue, DeltaOp, DeltaProbe};
pub use errors::{AbortCode, ExecutionFailure, ReadDependency};
pub use gas::{GasMeter, GasSchedule};
pub use transaction::{AccessHints, HintedTransaction, Transaction, TransactionOutput, WriteOp};
pub use types::{Incarnation, TxnIndex, Version};
pub use view::{ReadOutcome, StateReader};
pub use vm::{Vm, VmResult, VmStatus};
