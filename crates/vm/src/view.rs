//! The read interface the execution engine exposes to the VM.

use crate::delta::{AggregatorValue, DeltaOp, DeltaProbe};
use crate::types::TxnIndex;

/// Outcome of a speculative read issued by the VM for transaction `txn_idx`.
///
/// Mirrors the return statuses of `MVMemory.read` in Algorithm 2:
/// `OK` → [`ReadOutcome::Value`], `NOT_FOUND` → [`ReadOutcome::NotFound`] (the caller
/// then falls back to pre-block storage, which the engine's reader already does for
/// convenience, so `NotFound` here means "absent from both the multi-version memory
/// and storage"), `READ_ERROR` → [`ReadOutcome::Dependency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome<V> {
    /// The location exists and holds `V`.
    Value(V),
    /// The location does not exist (neither written by a lower transaction nor present
    /// in pre-block storage).
    NotFound,
    /// The location currently holds an ESTIMATE marker written by the given lower
    /// transaction; the read cannot be served speculatively.
    Dependency(TxnIndex),
}

impl<V> ReadOutcome<V> {
    /// Maps the contained value.
    pub fn map<U>(self, f: impl FnOnce(V) -> U) -> ReadOutcome<U> {
        match self {
            ReadOutcome::Value(v) => ReadOutcome::Value(f(v)),
            ReadOutcome::NotFound => ReadOutcome::NotFound,
            ReadOutcome::Dependency(idx) => ReadOutcome::Dependency(idx),
        }
    }

    /// Returns the value if present.
    pub fn into_value(self) -> Option<V> {
        match self {
            ReadOutcome::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// The engine-provided state reader used to serve VM reads.
///
/// * In the **parallel executor**, the implementation reads the multi-version memory
///   for the highest write below the executing transaction's index, falls back to
///   pre-block storage, and records the `(location, version)` pair in the read-set
///   (Algorithm 3, Lines 83–95).
/// * In the **sequential executor**, it reads the current materialized state.
/// * In **baselines** (Bohm, LiTM) it implements each engine's own read rule.
///
/// Implementations use interior mutability to capture read-sets; the trait therefore
/// takes `&self`.
pub trait StateReader<K, V> {
    /// Serves a read of `key` on behalf of the executing transaction.
    fn read(&self, key: &K) -> ReadOutcome<V>;

    /// Speculative bounds probe for a commutative delta write: may `op` be
    /// applied on top of the current value of `key` plus the transaction's own
    /// earlier cumulative delta `prior`?
    ///
    /// The default implementation resolves the base through [`read`](Self::read)
    /// (a missing location has aggregator value `0`), which is correct for every
    /// engine. The **parallel executor overrides it**: instead of recording a
    /// value/version read (which would make hot-key deltas conflict exactly like
    /// read-modify-writes), it records only the *bounds predicate* in the
    /// read-set, so validation re-checks "still in bounds?" rather than "same
    /// value?" — interleaved in-bounds deltas never abort each other.
    fn probe_delta(&self, key: &K, prior: i128, op: DeltaOp) -> DeltaProbe
    where
        V: AggregatorValue,
    {
        match self.read(key) {
            ReadOutcome::Value(value) => {
                if op.in_bounds_on(value.to_aggregator(), prior) {
                    DeltaProbe::InBounds
                } else {
                    DeltaProbe::OutOfBounds
                }
            }
            ReadOutcome::NotFound => {
                if op.in_bounds_on(0, prior) {
                    DeltaProbe::InBounds
                } else {
                    DeltaProbe::OutOfBounds
                }
            }
            ReadOutcome::Dependency(blocking_txn_idx) => DeltaProbe::Dependency(blocking_txn_idx),
        }
    }
}

impl<K, V, S> StateReader<K, V> for &S
where
    S: StateReader<K, V> + ?Sized,
{
    fn read(&self, key: &K) -> ReadOutcome<V> {
        (**self).read(key)
    }

    fn probe_delta(&self, key: &K, prior: i128, op: DeltaOp) -> DeltaProbe
    where
        V: AggregatorValue,
    {
        (**self).probe_delta(key, prior, op)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapReader(HashMap<u64, u64>);

    impl StateReader<u64, u64> for MapReader {
        fn read(&self, key: &u64) -> ReadOutcome<u64> {
            match self.0.get(key) {
                Some(v) => ReadOutcome::Value(*v),
                None => ReadOutcome::NotFound,
            }
        }
    }

    #[test]
    fn map_and_into_value() {
        let outcome = ReadOutcome::Value(21u64).map(|v| v * 2);
        assert_eq!(outcome, ReadOutcome::Value(42));
        assert_eq!(outcome.into_value(), Some(42));
        assert_eq!(ReadOutcome::<u64>::NotFound.into_value(), None);
        assert_eq!(
            ReadOutcome::<u64>::Dependency(3).map(|v| v + 1),
            ReadOutcome::Dependency(3)
        );
    }

    #[test]
    fn reference_forwarding_works() {
        let reader = MapReader(HashMap::from([(1, 10)]));
        let by_ref: &MapReader = &reader;
        assert_eq!(StateReader::read(&by_ref, &1), ReadOutcome::Value(10));
        assert_eq!(StateReader::read(&by_ref, &2), ReadOutcome::NotFound);
    }
}
