//! The read interface the execution engine exposes to the VM.

use crate::types::TxnIndex;

/// Outcome of a speculative read issued by the VM for transaction `txn_idx`.
///
/// Mirrors the return statuses of `MVMemory.read` in Algorithm 2:
/// `OK` → [`ReadOutcome::Value`], `NOT_FOUND` → [`ReadOutcome::NotFound`] (the caller
/// then falls back to pre-block storage, which the engine's reader already does for
/// convenience, so `NotFound` here means "absent from both the multi-version memory
/// and storage"), `READ_ERROR` → [`ReadOutcome::Dependency`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadOutcome<V> {
    /// The location exists and holds `V`.
    Value(V),
    /// The location does not exist (neither written by a lower transaction nor present
    /// in pre-block storage).
    NotFound,
    /// The location currently holds an ESTIMATE marker written by the given lower
    /// transaction; the read cannot be served speculatively.
    Dependency(TxnIndex),
}

impl<V> ReadOutcome<V> {
    /// Maps the contained value.
    pub fn map<U>(self, f: impl FnOnce(V) -> U) -> ReadOutcome<U> {
        match self {
            ReadOutcome::Value(v) => ReadOutcome::Value(f(v)),
            ReadOutcome::NotFound => ReadOutcome::NotFound,
            ReadOutcome::Dependency(idx) => ReadOutcome::Dependency(idx),
        }
    }

    /// Returns the value if present.
    pub fn into_value(self) -> Option<V> {
        match self {
            ReadOutcome::Value(v) => Some(v),
            _ => None,
        }
    }
}

/// The engine-provided state reader used to serve VM reads.
///
/// * In the **parallel executor**, the implementation reads the multi-version memory
///   for the highest write below the executing transaction's index, falls back to
///   pre-block storage, and records the `(location, version)` pair in the read-set
///   (Algorithm 3, Lines 83–95).
/// * In the **sequential executor**, it reads the current materialized state.
/// * In **baselines** (Bohm, LiTM) it implements each engine's own read rule.
///
/// Implementations use interior mutability to capture read-sets; the trait therefore
/// takes `&self`.
pub trait StateReader<K, V> {
    /// Serves a read of `key` on behalf of the executing transaction.
    fn read(&self, key: &K) -> ReadOutcome<V>;
}

impl<K, V, S> StateReader<K, V> for &S
where
    S: StateReader<K, V> + ?Sized,
{
    fn read(&self, key: &K) -> ReadOutcome<V> {
        (**self).read(key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    struct MapReader(HashMap<u64, u64>);

    impl StateReader<u64, u64> for MapReader {
        fn read(&self, key: &u64) -> ReadOutcome<u64> {
            match self.0.get(key) {
                Some(v) => ReadOutcome::Value(*v),
                None => ReadOutcome::NotFound,
            }
        }
    }

    #[test]
    fn map_and_into_value() {
        let outcome = ReadOutcome::Value(21u64).map(|v| v * 2);
        assert_eq!(outcome, ReadOutcome::Value(42));
        assert_eq!(outcome.into_value(), Some(42));
        assert_eq!(ReadOutcome::<u64>::NotFound.into_value(), None);
        assert_eq!(
            ReadOutcome::<u64>::Dependency(3).map(|v| v + 1),
            ReadOutcome::Dependency(3)
        );
    }

    #[test]
    fn reference_forwarding_works() {
        let reader = MapReader(HashMap::from([(1, 10)]));
        let by_ref: &MapReader = &reader;
        assert_eq!(StateReader::read(&by_ref, &1), ReadOutcome::Value(10));
        assert_eq!(StateReader::read(&by_ref, &2), ReadOutcome::NotFound);
    }
}
