//! Peer-to-peer payment transactions, in Diem and Aptos flavours.
//!
//! These are the workloads used throughout the paper's evaluation (§4.1):
//!
//! * **Diem p2p** — "perform 21 reads and 4 writes. [...] the 4 writes of the
//!   transaction involve updating balances and sequence numbers of A and B. The reason
//!   for 21 reads is that every Diem transaction is verified against some on-chain
//!   information [...]. During this process, information such as the correct block time
//!   and whether or not the account is frozen is read."
//! * **Aptos p2p** — "perform 8 reads and 5 writes each, where the Aptos p2p
//!   transactions reduce many of the verification and on-chain reads". A single Diem
//!   p2p costs roughly 2x the VM time of an Aptos p2p.
//!
//! The transaction below reproduces both access patterns exactly (read/write counts and
//!   which resources they touch) and uses the synthetic gas model to reproduce the 2:1
//! execution-cost ratio. The payment semantics are simple and deterministic: transfer
//! `amount`, or transfer nothing if the balance is insufficient (the real chain would
//! abort; keeping the transaction committed with a partial effect keeps balance
//! conservation easy to assert in tests — an explicit abort mode is also available).

use crate::context::TransactionContext;
use crate::delta::AggregatorValue;
use crate::errors::{AbortCode, ExecutionFailure};
use crate::transaction::{AccessHints, Transaction};
use crate::view::StateReader;
use block_stm_storage::{AccessPath, AccountAddress, ConfigId, StateValue};
use serde::{Deserialize, Serialize};

/// Numeric state values embed exactly into the aggregator domain (total-supply
/// style counters are `U64`/`U128` resources); structured values embed as `0`
/// and a materialized aggregator becomes a `U128` resource. Both directions are
/// total and deterministic, as the engines require.
impl AggregatorValue for StateValue {
    fn to_aggregator(&self) -> u128 {
        match self {
            StateValue::U64(v) => *v as u128,
            StateValue::U128(v) => *v,
            _ => 0,
        }
    }

    fn from_aggregator(raw: u128) -> Self {
        StateValue::U128(raw)
    }
}

/// Which chain's p2p access pattern (and VM cost) to simulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum P2pFlavor {
    /// Diem-style transfer: 21 reads, 4 writes, ~2x the execution gas of Aptos.
    Diem,
    /// Aptos-style transfer: 8 reads, 5 writes.
    Aptos,
}

impl P2pFlavor {
    /// Number of reads this flavour performs.
    pub const fn expected_reads(&self) -> usize {
        match self {
            P2pFlavor::Diem => 21,
            P2pFlavor::Aptos => 8,
        }
    }

    /// Number of writes this flavour performs.
    pub const fn expected_writes(&self) -> usize {
        match self {
            P2pFlavor::Diem => 4,
            P2pFlavor::Aptos => 5,
        }
    }

    /// Extra execution gas charged on top of per-read/per-write costs, calibrated so a
    /// Diem p2p costs about twice an Aptos p2p end to end.
    pub const fn execution_gas(&self) -> u64 {
        match self {
            P2pFlavor::Diem => 260,
            P2pFlavor::Aptos => 110,
        }
    }
}

/// How the transaction behaves when the sender's balance is insufficient.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InsufficientBalanceBehavior {
    /// Transfer nothing but still bump sequence numbers (default; keeps every
    /// transaction committed, which matches how the benchmarks fund accounts so that
    /// transfers never fail).
    TransferZero,
    /// Abort the transaction deterministically with
    /// [`AbortCode::InsufficientBalance`].
    Abort,
}

/// A peer-to-peer payment of `amount` from `sender` to `receiver`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeerToPeerTransaction {
    /// Paying account.
    pub sender: AccountAddress,
    /// Receiving account.
    pub receiver: AccountAddress,
    /// Amount to transfer.
    pub amount: u64,
    /// Diem or Aptos access pattern.
    pub flavor: P2pFlavor,
    /// Behaviour on insufficient balance.
    pub on_insufficient: InsufficientBalanceBehavior,
}

impl PeerToPeerTransaction {
    /// Creates a Diem-flavoured transfer.
    pub fn diem(sender: AccountAddress, receiver: AccountAddress, amount: u64) -> Self {
        Self {
            sender,
            receiver,
            amount,
            flavor: P2pFlavor::Diem,
            on_insufficient: InsufficientBalanceBehavior::TransferZero,
        }
    }

    /// Creates an Aptos-flavoured transfer.
    pub fn aptos(sender: AccountAddress, receiver: AccountAddress, amount: u64) -> Self {
        Self {
            sender,
            receiver,
            amount,
            flavor: P2pFlavor::Aptos,
            on_insufficient: InsufficientBalanceBehavior::TransferZero,
        }
    }

    /// Switches the insufficient-balance behaviour.
    pub fn with_insufficient_behavior(mut self, behavior: InsufficientBalanceBehavior) -> Self {
        self.on_insufficient = behavior;
        self
    }

    /// The exact set of access paths this transaction may write — its *perfect
    /// write-set*, used to drive the Bohm baseline ("we artificially provide Bohm with
    /// perfect write-sets information", §4.1).
    pub fn perfect_write_set(&self) -> Vec<AccessPath> {
        match self.flavor {
            P2pFlavor::Diem => vec![
                AccessPath::balance(self.sender),
                AccessPath::sequence_number(self.sender),
                AccessPath::balance(self.receiver),
                AccessPath::sequence_number(self.receiver),
            ],
            P2pFlavor::Aptos => vec![
                AccessPath::balance(self.sender),
                AccessPath::sequence_number(self.sender),
                AccessPath::balance(self.receiver),
                AccessPath::account(self.sender),
                AccessPath::account(self.receiver),
            ],
        }
    }

    fn read_u64<R: StateReader<AccessPath, StateValue>>(
        ctx: &mut TransactionContext<'_, AccessPath, StateValue, R>,
        path: &AccessPath,
    ) -> Result<u64, ExecutionFailure> {
        match ctx.read(path)? {
            Some(StateValue::U64(v)) => Ok(v),
            Some(_) => Err(ExecutionFailure::Abort(AbortCode::TypeMismatch)),
            None => Err(ExecutionFailure::Abort(AbortCode::AccountNotFound)),
        }
    }

    fn execute_diem<R: StateReader<AccessPath, StateValue>>(
        &self,
        ctx: &mut TransactionContext<'_, AccessPath, StateValue, R>,
    ) -> Result<(), ExecutionFailure> {
        // --- Prologue: 10 on-chain configuration reads (block time, gas schedule,
        // chain id, currency info, dual attestation, ...).
        for id in ConfigId::ALL {
            let _ = ctx.read(&AccessPath::config(id))?;
        }

        // --- Sender verification: 6 reads.
        let sender_account = ctx.read(&AccessPath::account(self.sender))?;
        let sender_frozen = ctx.read(&AccessPath::freezing_bit(self.sender))?;
        let sender_balance = Self::read_u64(ctx, &AccessPath::balance(self.sender))?;
        let sender_seq = Self::read_u64(ctx, &AccessPath::sequence_number(self.sender))?;
        let _sender_sent = ctx.read(&AccessPath::sent_events(self.sender))?;
        let _sender_received = ctx.read(&AccessPath::received_events(self.sender))?;

        // --- Receiver verification: 5 reads.
        let _receiver_account = ctx.read(&AccessPath::account(self.receiver))?;
        let receiver_frozen = ctx.read(&AccessPath::freezing_bit(self.receiver))?;
        let receiver_balance = Self::read_u64(ctx, &AccessPath::balance(self.receiver))?;
        let receiver_seq = Self::read_u64(ctx, &AccessPath::sequence_number(self.receiver))?;
        let _receiver_received = ctx.read(&AccessPath::received_events(self.receiver))?;

        if sender_account.is_none() {
            return Err(ExecutionFailure::Abort(AbortCode::AccountNotFound));
        }
        if sender_frozen == Some(StateValue::Bool(true))
            || receiver_frozen == Some(StateValue::Bool(true))
        {
            return Err(ExecutionFailure::Abort(AbortCode::AccountFrozen));
        }

        // --- Synthetic Move interpretation work (prologue checks, event emission, ...).
        ctx.charge_gas(self.flavor.execution_gas());

        let transferred = self.settle_amount(sender_balance)?;

        // --- 4 writes: balances and sequence numbers of both parties.
        ctx.write(
            AccessPath::balance(self.sender),
            StateValue::U64(sender_balance - transferred),
        );
        ctx.write(
            AccessPath::sequence_number(self.sender),
            StateValue::U64(sender_seq + 1),
        );
        if self.sender == self.receiver {
            // Self-payment: the balance is unchanged overall and the sequence number
            // write below supersedes the one above (write-set keeps the latest value).
            ctx.write(
                AccessPath::balance(self.receiver),
                StateValue::U64(sender_balance),
            );
            ctx.write(
                AccessPath::sequence_number(self.receiver),
                StateValue::U64(sender_seq + 1),
            );
        } else {
            ctx.write(
                AccessPath::balance(self.receiver),
                StateValue::U64(receiver_balance + transferred),
            );
            ctx.write(
                AccessPath::sequence_number(self.receiver),
                StateValue::U64(receiver_seq),
            );
        }
        Ok(())
    }

    fn execute_aptos<R: StateReader<AccessPath, StateValue>>(
        &self,
        ctx: &mut TransactionContext<'_, AccessPath, StateValue, R>,
    ) -> Result<(), ExecutionFailure> {
        // --- Prologue: 3 configuration reads (Aptos trims most on-chain verification).
        let _ = ctx.read(&AccessPath::config(ConfigId::BlockTimestamp))?;
        let _ = ctx.read(&AccessPath::config(ConfigId::GasSchedule))?;
        let _ = ctx.read(&AccessPath::config(ConfigId::ChainId))?;

        // --- Sender: 3 reads; receiver: 2 reads.
        let sender_account = ctx.read(&AccessPath::account(self.sender))?;
        let sender_balance = Self::read_u64(ctx, &AccessPath::balance(self.sender))?;
        let sender_seq = Self::read_u64(ctx, &AccessPath::sequence_number(self.sender))?;
        let receiver_account = ctx.read(&AccessPath::account(self.receiver))?;
        let receiver_balance = Self::read_u64(ctx, &AccessPath::balance(self.receiver))?;

        let sender_resource = match sender_account {
            Some(StateValue::Account(account)) => account,
            Some(_) => return Err(ExecutionFailure::Abort(AbortCode::TypeMismatch)),
            None => return Err(ExecutionFailure::Abort(AbortCode::AccountNotFound)),
        };
        let receiver_resource = match receiver_account {
            Some(StateValue::Account(account)) => account,
            Some(_) => return Err(ExecutionFailure::Abort(AbortCode::TypeMismatch)),
            None => return Err(ExecutionFailure::Abort(AbortCode::AccountNotFound)),
        };

        ctx.charge_gas(self.flavor.execution_gas());

        let transferred = self.settle_amount(sender_balance)?;

        // --- 5 writes: sender balance & sequence number, receiver balance, and both
        // account resources (event counters).
        ctx.write(
            AccessPath::balance(self.sender),
            StateValue::U64(sender_balance - transferred),
        );
        ctx.write(
            AccessPath::sequence_number(self.sender),
            StateValue::U64(sender_seq + 1),
        );
        if self.sender == self.receiver {
            ctx.write(
                AccessPath::balance(self.receiver),
                StateValue::U64(sender_balance),
            );
            let updated = sender_resource.with_sent_event().with_received_event();
            ctx.write(
                AccessPath::account(self.sender),
                StateValue::Account(updated.clone()),
            );
            ctx.write(
                AccessPath::account(self.receiver),
                StateValue::Account(updated),
            );
        } else {
            ctx.write(
                AccessPath::balance(self.receiver),
                StateValue::U64(receiver_balance + transferred),
            );
            ctx.write(
                AccessPath::account(self.sender),
                StateValue::Account(sender_resource.with_sent_event()),
            );
            ctx.write(
                AccessPath::account(self.receiver),
                StateValue::Account(receiver_resource.with_received_event()),
            );
        }
        Ok(())
    }

    fn settle_amount(&self, sender_balance: u64) -> Result<u64, ExecutionFailure> {
        if sender_balance >= self.amount {
            Ok(self.amount)
        } else {
            match self.on_insufficient {
                InsufficientBalanceBehavior::TransferZero => Ok(0),
                InsufficientBalanceBehavior::Abort => {
                    Err(ExecutionFailure::Abort(AbortCode::InsufficientBalance))
                }
            }
        }
    }
}

impl Transaction for PeerToPeerTransaction {
    type Key = AccessPath;
    type Value = StateValue;

    fn execute<R: StateReader<AccessPath, StateValue>>(
        &self,
        ctx: &mut TransactionContext<'_, AccessPath, StateValue, R>,
    ) -> Result<(), ExecutionFailure> {
        match self.flavor {
            P2pFlavor::Diem => self.execute_diem(ctx),
            P2pFlavor::Aptos => self.execute_aptos(ctx),
        }
    }

    fn label(&self) -> &'static str {
        match self.flavor {
            P2pFlavor::Diem => "diem-p2p",
            P2pFlavor::Aptos => "aptos-p2p",
        }
    }

    /// Exact hints. Every written location is also read by both flavours, so
    /// the perfect write-set doubles as the (advisory) read hint; the shared
    /// read-only configuration paths are omitted — nothing ever writes them,
    /// so they can never contribute a scheduling conflict.
    fn access_hints(&self) -> Option<AccessHints<AccessPath>> {
        Some(AccessHints::exact(
            self.perfect_write_set(),
            self.perfect_write_set(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ReadOutcome;
    use crate::vm::{Vm, VmStatus};
    use block_stm_storage::{GenesisBuilder, InMemoryStorage, Storage};

    /// A reader backed directly by pre-block storage (sequential, no block context).
    struct StorageReader<'a>(&'a InMemoryStorage<AccessPath, StateValue>);

    impl StateReader<AccessPath, StateValue> for StorageReader<'_> {
        fn read(&self, key: &AccessPath) -> ReadOutcome<StateValue> {
            match self.0.get(key) {
                Some(v) => ReadOutcome::Value(v),
                None => ReadOutcome::NotFound,
            }
        }
    }

    fn run(
        txn: &PeerToPeerTransaction,
        storage: &InMemoryStorage<AccessPath, StateValue>,
    ) -> crate::transaction::TransactionOutput<AccessPath, StateValue> {
        let vm = Vm::for_testing();
        match vm.execute(txn, &StorageReader(storage)) {
            VmStatus::Done(output) => output,
            VmStatus::ReadError { .. } => panic!("unexpected dependency"),
        }
    }

    #[test]
    fn diem_p2p_performs_21_reads_and_4_writes() {
        let storage = GenesisBuilder::new(4).initial_balance(1_000).build();
        let txn = PeerToPeerTransaction::diem(
            GenesisBuilder::account_address(0),
            GenesisBuilder::account_address(1),
            10,
        );
        let output = run(&txn, &storage);
        assert_eq!(output.reads_performed, P2pFlavor::Diem.expected_reads());
        assert_eq!(output.writes.len(), P2pFlavor::Diem.expected_writes());
        assert!(!output.is_aborted());
    }

    #[test]
    fn aptos_p2p_performs_8_reads_and_5_writes() {
        let storage = GenesisBuilder::new(4).initial_balance(1_000).build();
        let txn = PeerToPeerTransaction::aptos(
            GenesisBuilder::account_address(2),
            GenesisBuilder::account_address(3),
            10,
        );
        let output = run(&txn, &storage);
        assert_eq!(output.reads_performed, P2pFlavor::Aptos.expected_reads());
        assert_eq!(output.writes.len(), P2pFlavor::Aptos.expected_writes());
    }

    #[test]
    fn transfer_moves_funds_and_bumps_sequence_number() {
        let storage = GenesisBuilder::new(2).initial_balance(500).build();
        let sender = GenesisBuilder::account_address(0);
        let receiver = GenesisBuilder::account_address(1);
        let txn = PeerToPeerTransaction::diem(sender, receiver, 123);
        let output = run(&txn, &storage);
        let mut post = storage.clone();
        post.apply_updates(output.writes.iter().map(|w| (w.key, w.value.clone())));
        assert_eq!(
            post.get(&AccessPath::balance(sender)),
            Some(StateValue::U64(500 - 123))
        );
        assert_eq!(
            post.get(&AccessPath::balance(receiver)),
            Some(StateValue::U64(500 + 123))
        );
        assert_eq!(
            post.get(&AccessPath::sequence_number(sender)),
            Some(StateValue::U64(1))
        );
    }

    #[test]
    fn insufficient_balance_transfers_zero_by_default() {
        let storage = GenesisBuilder::new(2).initial_balance(10).build();
        let sender = GenesisBuilder::account_address(0);
        let receiver = GenesisBuilder::account_address(1);
        let txn = PeerToPeerTransaction::diem(sender, receiver, 1_000);
        let output = run(&txn, &storage);
        assert!(!output.is_aborted());
        let mut post = storage.clone();
        post.apply_updates(output.writes.iter().map(|w| (w.key, w.value.clone())));
        assert_eq!(
            post.get(&AccessPath::balance(sender)),
            Some(StateValue::U64(10))
        );
        assert_eq!(
            post.get(&AccessPath::balance(receiver)),
            Some(StateValue::U64(10))
        );
    }

    #[test]
    fn insufficient_balance_abort_mode_aborts() {
        let storage = GenesisBuilder::new(2).initial_balance(10).build();
        let txn = PeerToPeerTransaction::aptos(
            GenesisBuilder::account_address(0),
            GenesisBuilder::account_address(1),
            1_000,
        )
        .with_insufficient_behavior(InsufficientBalanceBehavior::Abort);
        let output = run(&txn, &storage);
        assert_eq!(output.abort_code, Some(AbortCode::InsufficientBalance));
        assert!(output.writes.is_empty());
    }

    #[test]
    fn missing_sender_aborts_with_account_not_found() {
        let storage = GenesisBuilder::new(1).build();
        let txn = PeerToPeerTransaction::diem(
            GenesisBuilder::account_address(10),
            GenesisBuilder::account_address(0),
            1,
        );
        let output = run(&txn, &storage);
        assert_eq!(output.abort_code, Some(AbortCode::AccountNotFound));
    }

    #[test]
    fn self_payment_preserves_balance() {
        let storage = GenesisBuilder::new(1).initial_balance(700).build();
        let addr = GenesisBuilder::account_address(0);
        for txn in [
            PeerToPeerTransaction::diem(addr, addr, 100),
            PeerToPeerTransaction::aptos(addr, addr, 100),
        ] {
            let output = run(&txn, &storage);
            let mut post = storage.clone();
            post.apply_updates(output.writes.iter().map(|w| (w.key, w.value.clone())));
            assert_eq!(
                post.get(&AccessPath::balance(addr)),
                Some(StateValue::U64(700)),
                "flavor {:?}",
                txn.flavor
            );
            assert_eq!(
                post.get(&AccessPath::sequence_number(addr)),
                Some(StateValue::U64(1))
            );
        }
    }

    #[test]
    fn perfect_write_set_covers_actual_writes() {
        let storage = GenesisBuilder::new(2).initial_balance(1_000).build();
        for txn in [
            PeerToPeerTransaction::diem(
                GenesisBuilder::account_address(0),
                GenesisBuilder::account_address(1),
                5,
            ),
            PeerToPeerTransaction::aptos(
                GenesisBuilder::account_address(0),
                GenesisBuilder::account_address(1),
                5,
            ),
        ] {
            let declared = txn.perfect_write_set();
            let output = run(&txn, &storage);
            for write in &output.writes {
                assert!(
                    declared.contains(&write.key),
                    "write to {:?} not declared in perfect write-set of {:?}",
                    write.key,
                    txn.flavor
                );
            }
            assert_eq!(declared.len(), txn.flavor.expected_writes());
        }
    }

    #[test]
    fn diem_costs_roughly_twice_aptos() {
        let storage = GenesisBuilder::new(2).initial_balance(1_000).build();
        let diem = run(
            &PeerToPeerTransaction::diem(
                GenesisBuilder::account_address(0),
                GenesisBuilder::account_address(1),
                5,
            ),
            &storage,
        );
        let aptos = run(
            &PeerToPeerTransaction::aptos(
                GenesisBuilder::account_address(0),
                GenesisBuilder::account_address(1),
                5,
            ),
            &storage,
        );
        let ratio = diem.gas_used as f64 / aptos.gas_used as f64;
        assert!(
            (1.6..=2.6).contains(&ratio),
            "Diem/Aptos gas ratio {ratio} outside expected band"
        );
    }
}
