//! Synthetic read/write transactions over a small integer key space.
//!
//! These transactions are the workhorse of the correctness test suite: property tests
//! generate random blocks of them and assert that every engine (Block-STM, Bohm, LiTM,
//! sequential) produces the identical final state. They are intentionally nastier than
//! p2p payments:
//!
//! * the write *value* is a deterministic function of everything the transaction read,
//!   so any stale or reordered read changes the committed state and is caught;
//! * an optional *conditional* write-set makes the set of written locations depend on
//!   the read values, exercising the `wrote_new_location` path of
//!   `MVMemory.record` / `Scheduler.finish_execution` (Algorithm 2, Line 35) where a
//!   re-execution writes to locations its previous incarnation did not.

use crate::context::TransactionContext;
use crate::delta::DeltaOp;
use crate::errors::{AbortCode, ExecutionFailure};
use crate::transaction::{AccessHints, Transaction};
use crate::view::StateReader;
use serde::{Deserialize, Serialize};

/// Key type of synthetic transactions.
pub type Key = u64;
/// Value type of synthetic transactions.
pub type Value = u64;

/// A synthetic transaction: read `reads`, combine the values, write a derived value to
/// every key in `writes` (always) and `conditional_writes` (only when the combined read
/// value is odd).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyntheticTransaction {
    /// Locations read unconditionally, in order.
    pub reads: Vec<Key>,
    /// Locations written unconditionally.
    pub writes: Vec<Key>,
    /// Locations written only when the mixed read value is odd.
    pub conditional_writes: Vec<Key>,
    /// A per-transaction salt mixed into written values (makes transactions with the
    /// same access pattern distinguishable).
    pub salt: u64,
    /// Extra synthetic gas to burn, simulating contract computation.
    pub extra_gas: u64,
    /// If set, the transaction aborts deterministically with this user code when the
    /// mixed read value is divisible by the given modulus (exercises abort paths).
    pub abort_when_divisible_by: Option<u64>,
    /// Commutative delta applications `(key, delta)`: applied via
    /// `TransactionContext::apply_delta` with bound `[0, delta_limit]`, in order,
    /// after the full writes. An out-of-bounds application aborts the transaction
    /// with [`AbortCode::DeltaOverflow`].
    pub deltas: Vec<(Key, i128)>,
    /// Inclusive upper bound for every delta application of this transaction.
    pub delta_limit: u128,
}

impl SyntheticTransaction {
    /// A transaction that reads nothing and writes `value` to `key`.
    pub fn put(key: Key, value: Value) -> Self {
        Self {
            reads: vec![],
            writes: vec![key],
            conditional_writes: vec![],
            salt: value,
            extra_gas: 0,
            abort_when_divisible_by: None,
            deltas: vec![],
            delta_limit: u64::MAX as u128,
        }
    }

    /// A read-modify-write of a single location (classic counter increment): reads
    /// `key` and writes a value derived from it back to `key`. Blocks of these over a
    /// single key are inherently sequential — the worst case for any parallel engine.
    pub fn increment(key: Key) -> Self {
        Self {
            reads: vec![key],
            writes: vec![key],
            conditional_writes: vec![],
            salt: 1,
            extra_gas: 0,
            abort_when_divisible_by: None,
            deltas: vec![],
            delta_limit: u64::MAX as u128,
        }
    }

    /// A transfer-shaped transaction: reads and writes `from` and `to`.
    pub fn transfer(from: Key, to: Key, salt: u64) -> Self {
        Self {
            reads: vec![from, to],
            writes: vec![from, to],
            conditional_writes: vec![],
            salt,
            extra_gas: 0,
            abort_when_divisible_by: None,
            deltas: vec![],
            delta_limit: u64::MAX as u128,
        }
    }

    /// A pure commutative increment of the aggregator at `key`: applies `delta`
    /// bounded by `[0, limit]` and touches nothing else. Blocks of these over a
    /// single hot key are the delta machinery's headline case — they commute, so
    /// the parallel engine commits them without a single abort.
    pub fn delta_add(key: Key, delta: i128, limit: u128) -> Self {
        Self {
            reads: vec![],
            writes: vec![],
            conditional_writes: vec![],
            salt: 0,
            extra_gas: 0,
            abort_when_divisible_by: None,
            deltas: vec![(key, delta)],
            delta_limit: limit,
        }
    }

    /// Builder: replaces the delta applications.
    pub fn with_deltas(mut self, deltas: Vec<(Key, i128)>, limit: u128) -> Self {
        self.deltas = deltas;
        self.delta_limit = limit;
        self
    }

    /// Builder: adds extra gas.
    pub fn with_extra_gas(mut self, gas: u64) -> Self {
        self.extra_gas = gas;
        self
    }

    /// Builder: adds conditional writes.
    pub fn with_conditional_writes(mut self, keys: Vec<Key>) -> Self {
        self.conditional_writes = keys;
        self
    }

    /// Builder: aborts when the mixed read value is divisible by `modulus`.
    pub fn with_abort_divisor(mut self, modulus: u64) -> Self {
        self.abort_when_divisible_by = Some(modulus.max(1));
        self
    }

    /// The full set of locations this transaction may write (unconditional plus
    /// conditional) — its perfect write-set for the Bohm baseline.
    pub fn perfect_write_set(&self) -> Vec<Key> {
        let mut set = self.writes.clone();
        set.extend(self.conditional_writes.iter().copied());
        set.extend(self.deltas.iter().map(|(key, _)| *key));
        set.sort_unstable();
        set.dedup();
        set
    }

    /// Deterministically mixes a read value into an accumulator.
    fn mix(acc: u64, value: u64) -> u64 {
        acc.rotate_left(7) ^ value.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    /// The value written to `key` given the mixed read accumulator.
    fn written_value(&self, mixed: u64, key: Key) -> Value {
        mixed
            .wrapping_add(self.salt.wrapping_mul(0x1000_0001))
            .wrapping_add(key.rotate_left(13))
    }
}

impl Transaction for SyntheticTransaction {
    type Key = Key;
    type Value = Value;

    fn execute<R: StateReader<Key, Value>>(
        &self,
        ctx: &mut TransactionContext<'_, Key, Value, R>,
    ) -> Result<(), ExecutionFailure> {
        let mut mixed = 0xABCD_EF01_2345_6789u64;
        for key in &self.reads {
            let value = ctx.read(key)?.unwrap_or(0);
            mixed = Self::mix(mixed, value);
        }
        if self.extra_gas > 0 {
            ctx.charge_gas(self.extra_gas);
        }
        if let Some(modulus) = self.abort_when_divisible_by {
            if mixed.is_multiple_of(modulus) {
                return Err(ExecutionFailure::Abort(AbortCode::User(modulus)));
            }
        }
        for key in &self.writes {
            let value = self.written_value(mixed, *key);
            ctx.write(*key, value);
        }
        if mixed % 2 == 1 {
            for key in &self.conditional_writes {
                let value = self.written_value(mixed, *key).wrapping_add(1);
                ctx.write(*key, value);
            }
        }
        for (key, delta) in &self.deltas {
            ctx.apply_delta(*key, DeltaOp::add(*delta, self.delta_limit))?;
        }
        Ok(())
    }

    fn label(&self) -> &'static str {
        "synthetic"
    }

    /// Exact hints: the read list is the literal read set and
    /// [`perfect_write_set`](SyntheticTransaction::perfect_write_set) covers
    /// every possible write (conditional writes and delta keys included).
    fn access_hints(&self) -> Option<AccessHints<Key>> {
        Some(AccessHints::exact(
            self.reads.clone(),
            self.perfect_write_set(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::view::ReadOutcome;
    use crate::vm::{Vm, VmStatus};
    use std::collections::HashMap;

    struct MapReader(HashMap<Key, Value>);

    impl StateReader<Key, Value> for MapReader {
        fn read(&self, key: &Key) -> ReadOutcome<Value> {
            match self.0.get(key) {
                Some(v) => ReadOutcome::Value(*v),
                None => ReadOutcome::NotFound,
            }
        }
    }

    fn run(
        txn: &SyntheticTransaction,
        state: &HashMap<Key, Value>,
    ) -> crate::transaction::TransactionOutput<Key, Value> {
        match Vm::for_testing().execute(txn, &MapReader(state.clone())) {
            VmStatus::Done(output) => output,
            VmStatus::ReadError { .. } => panic!("unexpected dependency"),
        }
    }

    #[test]
    fn put_writes_single_key() {
        let output = run(&SyntheticTransaction::put(5, 99), &HashMap::new());
        assert_eq!(output.writes.len(), 1);
        assert_eq!(output.writes[0].key, 5);
    }

    #[test]
    fn execution_is_deterministic_given_same_reads() {
        let state = HashMap::from([(1, 10), (2, 20)]);
        let txn = SyntheticTransaction::transfer(1, 2, 7);
        let a = run(&txn, &state);
        let b = run(&txn, &state);
        assert_eq!(a.writes, b.writes);
    }

    #[test]
    fn written_values_depend_on_read_values() {
        let txn = SyntheticTransaction::transfer(1, 2, 7);
        let a = run(&txn, &HashMap::from([(1, 10), (2, 20)]));
        let b = run(&txn, &HashMap::from([(1, 11), (2, 20)]));
        assert_ne!(
            a.writes, b.writes,
            "a change in a read value must change the written values"
        );
    }

    #[test]
    fn conditional_writes_toggle_with_read_parity() {
        let txn = SyntheticTransaction {
            reads: vec![1],
            writes: vec![2],
            conditional_writes: vec![3],
            salt: 0,
            extra_gas: 0,
            abort_when_divisible_by: None,
            deltas: vec![],
            delta_limit: u64::MAX as u128,
        };
        // Find two input values producing different parities of the mixed accumulator.
        let mut with_conditional = None;
        let mut without_conditional = None;
        for value in 0..64u64 {
            let output = run(&txn, &HashMap::from([(1, value)]));
            match output.writes.len() {
                2 => with_conditional = Some(value),
                1 => without_conditional = Some(value),
                n => panic!("unexpected write count {n}"),
            }
            if with_conditional.is_some() && without_conditional.is_some() {
                break;
            }
        }
        assert!(
            with_conditional.is_some(),
            "no input triggered the conditional write"
        );
        assert!(
            without_conditional.is_some(),
            "every input triggered the conditional write"
        );
    }

    #[test]
    fn abort_divisor_aborts_deterministically() {
        let txn = SyntheticTransaction::increment(1).with_abort_divisor(1);
        let output = run(&txn, &HashMap::from([(1, 5)]));
        assert!(output.is_aborted());
        assert!(output.writes.is_empty());
    }

    #[test]
    fn perfect_write_set_is_sorted_unique_superset() {
        let txn = SyntheticTransaction {
            reads: vec![],
            writes: vec![3, 1, 3],
            conditional_writes: vec![2, 1],
            salt: 0,
            extra_gas: 0,
            abort_when_divisible_by: None,
            deltas: vec![],
            delta_limit: u64::MAX as u128,
        };
        assert_eq!(txn.perfect_write_set(), vec![1, 2, 3]);
    }

    #[test]
    fn increment_chain_applied_sequentially_changes_value_each_step() {
        let mut state = HashMap::from([(1u64, 0u64)]);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10 {
            let output = run(&SyntheticTransaction::increment(1), &state);
            let new_value = output.writes[0].value;
            assert!(seen.insert(new_value), "values must keep changing");
            state.insert(1, new_value);
        }
    }
}
