//! Commutative delta (aggregator) writes.
//!
//! Block-STM's ordered-commit design collapses to sequential speed on hot-key
//! workloads: every read-modify-write of a shared counter conflicts with every
//! other one, even though *increments commute*. A [`DeltaOp`] declares **how** a
//! location is mutated instead of publishing the resulting value: `+δ` with a
//! bound, applied to whatever the prior value turns out to be. Two interleaved
//! increments no longer invalidate each other — the engine validates the
//! *bounds predicate* of each application (and the *resolved sum* of explicit
//! aggregator reads) rather than the exact version of the observed value.
//!
//! The semantics are fixed so every engine (parallel, sequential, baselines)
//! agrees byte-for-byte:
//!
//! * an aggregator value is a `u128` obtained through [`AggregatorValue`];
//!   a location absent from state has aggregator value `0`;
//! * applying `δ` to value `v` **succeeds** iff `0 <= v + δ <= limit` (checked
//!   `i128`/`u128` arithmetic, no wrapping); a failing application aborts the
//!   transaction deterministically with
//!   [`AbortCode::DeltaOverflow`](crate::AbortCode::DeltaOverflow);
//! * several applications by one transaction merge into a single cumulative op
//!   (each individual application's bound is still checked at its point of
//!   application);
//! * resolution of a *speculative* chain uses the clamped form
//!   ([`DeltaOp::apply_clamped`]) so doomed interleavings stay deterministic;
//!   on the committed state the clamp never engages (every application's
//!   predicate was validated against exactly that state).

use std::fmt;

/// A commutative update of an aggregator location: add `delta` (which may be
/// negative) to the current value, requiring the result to stay in
/// `[0, limit]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DeltaOp {
    /// The signed amount to add.
    pub delta: i128,
    /// Inclusive upper bound of the aggregator (`u64` state models should use
    /// limits `<= u64::MAX`). The lower bound is always `0`.
    pub limit: u128,
}

impl DeltaOp {
    /// An addition of `delta` bounded by `[0, limit]`.
    pub fn add(delta: i128, limit: u128) -> Self {
        Self { delta, limit }
    }

    /// An unbounded-for-practical-purposes addition (limit `u64::MAX`, the
    /// natural ceiling of `u64` state models).
    pub fn add_u64(delta: i128) -> Self {
        Self::add(delta, u64::MAX as u128)
    }

    /// Checked application: `base + delta` iff the result lies in
    /// `[0, self.limit]`.
    pub fn apply_checked(&self, base: u128) -> Option<u128> {
        base.checked_add_signed(self.delta)
            .filter(|result| *result <= self.limit)
    }

    /// Clamped application: `base + delta` saturated into `[0, self.limit]`.
    /// Used when resolving *speculative* chains, where a torn interleaving may
    /// momentarily violate a bound — the result stays deterministic and
    /// validation converges on the checked outcome.
    pub fn apply_clamped(&self, base: u128) -> u128 {
        match base.checked_add_signed(self.delta) {
            Some(result) => result.min(self.limit),
            None if self.delta < 0 => 0,
            None => self.limit,
        }
    }

    /// The bounds predicate validated for each application: would applying this
    /// op on top of `base + prior` (the engine-resolved value plus the
    /// transaction's own earlier deltas) stay within `[0, limit]`?
    pub fn in_bounds_on(&self, base: u128, prior: i128) -> bool {
        base.checked_add_signed(prior)
            .and_then(|with_prior| with_prior.checked_add_signed(self.delta))
            .is_some_and(|result| result <= self.limit)
    }

    /// Merges a later application by the *same transaction* into this op: the
    /// deltas accumulate and the later bound wins (each individual bound was
    /// already checked at its point of application).
    pub fn merge(&mut self, later: DeltaOp) {
        self.delta = self.delta.saturating_add(later.delta);
        self.limit = later.limit;
    }
}

impl fmt::Display for DeltaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:+} (limit {})", self.delta, self.limit)
    }
}

/// Conversion between a state model's value type and the `u128` aggregator
/// domain deltas operate on.
///
/// Every [`Transaction::Value`](crate::Transaction::Value) provides this so the
/// engines can resolve delta chains over any state model. Numeric types
/// round-trip exactly; non-numeric values choose a canonical (deterministic)
/// embedding — both conversions **must be total and deterministic**, since
/// parallel and sequential execution have to agree on the result of applying a
/// delta to any value. A model that never uses deltas can embed everything as
/// `0` and materialize `from_aggregator` arbitrarily (but deterministically).
pub trait AggregatorValue: Sized {
    /// The value's position in the aggregator domain.
    fn to_aggregator(&self) -> u128;
    /// Materializes an aggregator value back into the state model.
    fn from_aggregator(raw: u128) -> Self;
}

impl AggregatorValue for u64 {
    fn to_aggregator(&self) -> u128 {
        *self as u128
    }

    fn from_aggregator(raw: u128) -> Self {
        // Aggregators over u64 state use limits <= u64::MAX; the clamp keeps
        // the conversion total for hand-built out-of-range ops.
        raw.min(u64::MAX as u128) as u64
    }
}

impl AggregatorValue for u128 {
    fn to_aggregator(&self) -> u128 {
        *self
    }

    fn from_aggregator(raw: u128) -> Self {
        raw
    }
}

impl AggregatorValue for u32 {
    fn to_aggregator(&self) -> u128 {
        *self as u128
    }

    fn from_aggregator(raw: u128) -> Self {
        raw.min(u32::MAX as u128) as u32
    }
}

impl AggregatorValue for usize {
    fn to_aggregator(&self) -> u128 {
        *self as u128
    }

    fn from_aggregator(raw: u128) -> Self {
        raw.min(usize::MAX as u128) as usize
    }
}

/// Outcome of a speculative bounds probe ([`StateReader::probe_delta`]
/// (crate::StateReader::probe_delta)): may the delta be applied on the current
/// value of the location?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaProbe {
    /// The application stays within bounds.
    InBounds,
    /// The application would leave `[0, limit]`: the transaction must abort
    /// deterministically with `AbortCode::DeltaOverflow`.
    OutOfBounds,
    /// The probe's resolution hit an ESTIMATE marker left by the given lower
    /// transaction; the incarnation must suspend on it.
    Dependency(crate::TxnIndex),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_apply_enforces_both_bounds() {
        let op = DeltaOp::add(5, 10);
        assert_eq!(op.apply_checked(3), Some(8));
        assert_eq!(op.apply_checked(6), None, "over the limit");
        assert_eq!(DeltaOp::add(-4, 10).apply_checked(3), None, "below zero");
        assert_eq!(DeltaOp::add(-3, 10).apply_checked(3), Some(0));
        assert_eq!(DeltaOp::add(0, 0).apply_checked(0), Some(0));
    }

    #[test]
    fn clamped_apply_saturates_into_the_bounds() {
        let op = DeltaOp::add(5, 10);
        assert_eq!(op.apply_clamped(8), 10);
        assert_eq!(DeltaOp::add(-9, 10).apply_clamped(3), 0);
        assert_eq!(op.apply_clamped(3), 8, "in-bounds is untouched");
        assert_eq!(
            DeltaOp::add(1, u128::MAX).apply_clamped(u128::MAX),
            u128::MAX
        );
        assert_eq!(DeltaOp::add(-1, 8).apply_clamped(0), 0);
    }

    #[test]
    fn in_bounds_predicate_accounts_for_prior_own_deltas() {
        let op = DeltaOp::add(3, 10);
        assert!(op.in_bounds_on(2, 4)); // 2 + 4 + 3 = 9 <= 10
        assert!(!op.in_bounds_on(2, 6)); // 11 > 10
        assert!(!op.in_bounds_on(2, -6)); // intermediate -4 < 0
        assert!(DeltaOp::add(-2, 10).in_bounds_on(5, -3));
    }

    #[test]
    fn merge_accumulates_deltas_and_keeps_last_limit() {
        let mut op = DeltaOp::add(3, 10);
        op.merge(DeltaOp::add(-1, 7));
        assert_eq!(op, DeltaOp::add(2, 7));
    }

    #[test]
    fn u64_roundtrip_and_truncation() {
        assert_eq!(7u64.to_aggregator(), 7);
        assert_eq!(u64::from_aggregator(7), 7);
        assert_eq!(u64::from_aggregator(u128::MAX), u64::MAX);
        assert_eq!(u128::from_aggregator(u128::MAX), u128::MAX);
    }
}
