//! The instrumented execution context handed to transaction code.

use crate::delta::{AggregatorValue, DeltaOp, DeltaProbe};
use crate::errors::{AbortCode, ExecutionFailure, ReadDependency};
use crate::gas::{GasMeter, GasSchedule};
use crate::transaction::{TransactionOutput, WriteOp};
use crate::view::{ReadOutcome, StateReader};
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// Size estimator used for gas charging when values do not expose a size.
fn default_size_of<V>(_: &V) -> usize {
    std::mem::size_of::<V>()
}

/// The VM-side view of one transaction execution (Algorithm 3).
///
/// The context owns the incarnation's write-set buffer and gas meter, and borrows the
/// engine's [`StateReader`]. It implements the paper's read/write interception rules:
///
/// * **writes** are buffered locally; only the latest value per location is kept
///   (Lines 78–81). The engine applies the buffered write-set to shared memory after
///   the execution finishes — the VM never touches shared state.
/// * **reads** first consult the local write buffer (read-your-own-writes, Line 84),
///   then ask the engine's reader. A [`ReadOutcome::Dependency`] is surfaced as an
///   [`ExecutionFailure::Dependency`] so the `?` operator aborts the incarnation at the
///   exact read that encountered the ESTIMATE marker (Line 95).
pub struct TransactionContext<'a, K, V, R> {
    reader: &'a R,
    writes: Vec<WriteOp<K, V>>,
    write_index: HashMap<K, usize>,
    /// Buffered commutative delta writes: one merged op per location, disjoint
    /// from `writes` (a full write absorbs the location's pending delta, and a
    /// delta on a buffered full write folds into that value locally).
    deltas: Vec<(K, DeltaOp)>,
    delta_index: HashMap<K, usize>,
    gas: GasMeter,
    reads_performed: usize,
    size_of: fn(&V) -> usize,
}

impl<'a, K, V, R> TransactionContext<'a, K, V, R>
where
    K: Eq + Hash + Clone + Debug,
    V: Clone + Debug + AggregatorValue,
    R: StateReader<K, V>,
{
    /// Creates a context over the engine's reader with the given gas schedule.
    pub fn new(reader: &'a R, schedule: GasSchedule) -> Self {
        let mut gas = GasMeter::new(schedule);
        gas.charge_base();
        Self {
            reader,
            writes: Vec::new(),
            write_index: HashMap::new(),
            deltas: Vec::new(),
            delta_index: HashMap::new(),
            gas,
            reads_performed: 0,
            size_of: default_size_of::<V>,
        }
    }

    /// Overrides how value sizes are estimated for per-byte gas charging.
    pub fn with_size_estimator(mut self, size_of: fn(&V) -> usize) -> Self {
        self.size_of = size_of;
        self
    }

    /// Reads `key`, returning `None` if the location does not exist.
    ///
    /// Propagates a dependency as an error so transaction code can simply use `?`.
    pub fn read(&mut self, key: &K) -> Result<Option<V>, ExecutionFailure> {
        self.reads_performed += 1;
        // Read-your-own-writes: the VM observes its latest buffered value.
        if let Some(&idx) = self.write_index.get(key) {
            let value = self.writes[idx].value.clone();
            self.gas.charge_read((self.size_of)(&value));
            return Ok(Some(value));
        }
        let pending_delta = self.delta_index.get(key).map(|&idx| self.deltas[idx].1);
        match self.reader.read(key) {
            ReadOutcome::Value(value) => {
                self.gas.charge_read((self.size_of)(&value));
                // Read-your-own-deltas: the buffered delta applies on top of the
                // engine-resolved base (clamped: a doomed speculative base stays
                // deterministic and is corrected by validation).
                match pending_delta {
                    Some(op) => Ok(Some(V::from_aggregator(
                        op.apply_clamped(value.to_aggregator()),
                    ))),
                    None => Ok(Some(value)),
                }
            }
            ReadOutcome::NotFound => {
                self.gas.charge_read(0);
                // An absent aggregator has value 0; a pending delta materializes it.
                match pending_delta {
                    Some(op) => Ok(Some(V::from_aggregator(op.apply_clamped(0)))),
                    None => Ok(None),
                }
            }
            ReadOutcome::Dependency(blocking_txn_idx) => Err(ExecutionFailure::Dependency(
                ReadDependency::new(blocking_txn_idx),
            )),
        }
    }

    /// Reads `key` and fails with the given abort code if the location is absent.
    pub fn read_required(
        &mut self,
        key: &K,
        missing: crate::errors::AbortCode,
    ) -> Result<V, ExecutionFailure> {
        match self.read(key)? {
            Some(value) => Ok(value),
            None => Err(ExecutionFailure::Abort(missing)),
        }
    }

    /// Buffers a write of `value` to `key`, replacing any earlier buffered value
    /// (and absorbing any pending delta on the location — the full write wins).
    pub fn write(&mut self, key: K, value: V) {
        self.gas.charge_write((self.size_of)(&value));
        if let Some(idx) = self.delta_index.remove(&key) {
            self.deltas.swap_remove(idx);
            if let Some((moved_key, _)) = self.deltas.get(idx) {
                self.delta_index.insert(moved_key.clone(), idx);
            }
        }
        match self.write_index.get(&key) {
            Some(&idx) => self.writes[idx].value = value,
            None => {
                self.write_index.insert(key.clone(), self.writes.len());
                self.writes.push(WriteOp::new(key, value));
            }
        }
    }

    /// Applies a commutative delta to the aggregator at `key` (see
    /// [`DeltaOp`]): the update is buffered as a *delta*, not a value, so the
    /// parallel engine never needs to know the base — interleaved in-bounds
    /// deltas commute instead of conflicting.
    ///
    /// Deterministic failure modes mirror a sequential execution exactly:
    /// an application that would leave `[0, op.limit]` aborts the transaction
    /// with [`AbortCode::DeltaOverflow`]; a probe that hits an ESTIMATE marker
    /// suspends the incarnation (parallel engine only).
    pub fn apply_delta(&mut self, key: K, op: DeltaOp) -> Result<(), ExecutionFailure> {
        self.gas.charge_write(std::mem::size_of::<DeltaOp>());
        // A delta on the transaction's own buffered full write folds locally —
        // the base is known exactly, no engine probe needed.
        if let Some(&idx) = self.write_index.get(&key) {
            let base = self.writes[idx].value.to_aggregator();
            return match op.apply_checked(base) {
                Some(new) => {
                    self.writes[idx].value = V::from_aggregator(new);
                    Ok(())
                }
                None => Err(ExecutionFailure::Abort(AbortCode::DeltaOverflow)),
            };
        }
        let prior = self
            .delta_index
            .get(&key)
            .map_or(0, |&idx| self.deltas[idx].1.delta);
        match self.reader.probe_delta(&key, prior, op) {
            DeltaProbe::InBounds => {
                match self.delta_index.get(&key) {
                    Some(&idx) => self.deltas[idx].1.merge(op),
                    None => {
                        self.delta_index.insert(key.clone(), self.deltas.len());
                        self.deltas.push((key, op));
                    }
                }
                Ok(())
            }
            DeltaProbe::OutOfBounds => Err(ExecutionFailure::Abort(AbortCode::DeltaOverflow)),
            DeltaProbe::Dependency(blocking_txn_idx) => Err(ExecutionFailure::Dependency(
                ReadDependency::new(blocking_txn_idx),
            )),
        }
    }

    /// Reads the aggregator value at `key` (an absent location reads as `0`).
    ///
    /// This is a *value* read: in the parallel engine it resolves the delta
    /// chain and is validated on the resolved sum, so it does re-introduce a
    /// (value-level) dependency on lower transactions — use it only where the
    /// logic genuinely needs the number.
    pub fn read_aggregator(&mut self, key: &K) -> Result<u128, ExecutionFailure> {
        Ok(self.read(key)?.map_or(0, |value| value.to_aggregator()))
    }

    /// Charges `units` of additional gas (synthetic contract computation).
    pub fn charge_gas(&mut self, units: u64) {
        self.gas.charge_units(units);
    }

    /// Number of reads performed so far.
    pub fn reads_performed(&self) -> usize {
        self.reads_performed
    }

    /// Number of distinct locations written so far.
    pub fn writes_pending(&self) -> usize {
        self.writes.len()
    }

    /// Finalizes the context into a [`TransactionOutput`] containing the write-set.
    pub(crate) fn into_output(self) -> TransactionOutput<K, V> {
        let (gas_used, work_sink) = self.gas.finish();
        TransactionOutput {
            writes: self.writes,
            deltas: self.deltas,
            gas_used,
            abort_code: None,
            reads_performed: self.reads_performed,
            work_sink,
        }
    }

    /// Finalizes the context into an aborted output: gas is still charged, but the
    /// write-set is discarded (the blockchain semantics of a transaction abort).
    pub(crate) fn into_aborted_output(
        self,
        code: crate::errors::AbortCode,
    ) -> TransactionOutput<K, V> {
        let (gas_used, work_sink) = self.gas.finish();
        TransactionOutput {
            writes: Vec::new(),
            deltas: Vec::new(),
            gas_used,
            abort_code: Some(code),
            reads_performed: self.reads_performed,
            work_sink,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::errors::AbortCode;
    use std::collections::HashMap;

    struct FixtureReader {
        values: HashMap<u64, u64>,
        estimates: HashMap<u64, usize>,
    }

    impl StateReader<u64, u64> for FixtureReader {
        fn read(&self, key: &u64) -> ReadOutcome<u64> {
            if let Some(&blocking) = self.estimates.get(key) {
                return ReadOutcome::Dependency(blocking);
            }
            match self.values.get(key) {
                Some(v) => ReadOutcome::Value(*v),
                None => ReadOutcome::NotFound,
            }
        }
    }

    fn reader() -> FixtureReader {
        FixtureReader {
            values: HashMap::from([(1, 100), (2, 200)]),
            estimates: HashMap::from([(9, 3)]),
        }
    }

    #[test]
    fn reads_hit_reader_and_misses_return_none() {
        let r = reader();
        let mut ctx = TransactionContext::new(&r, GasSchedule::zero_work());
        assert_eq!(ctx.read(&1).unwrap(), Some(100));
        assert_eq!(ctx.read(&5).unwrap(), None);
        assert_eq!(ctx.reads_performed(), 2);
    }

    #[test]
    fn read_your_own_writes() {
        let r = reader();
        let mut ctx = TransactionContext::new(&r, GasSchedule::zero_work());
        ctx.write(1, 111);
        assert_eq!(ctx.read(&1).unwrap(), Some(111));
        ctx.write(1, 222);
        assert_eq!(ctx.read(&1).unwrap(), Some(222));
        assert_eq!(
            ctx.writes_pending(),
            1,
            "writes to the same key are coalesced"
        );
    }

    #[test]
    fn dependency_reads_become_failures() {
        let r = reader();
        let mut ctx = TransactionContext::new(&r, GasSchedule::zero_work());
        let err = ctx.read(&9).unwrap_err();
        assert_eq!(err, ExecutionFailure::Dependency(ReadDependency::new(3)));
    }

    #[test]
    fn read_required_aborts_on_missing() {
        let r = reader();
        let mut ctx = TransactionContext::new(&r, GasSchedule::zero_work());
        assert_eq!(
            ctx.read_required(&1, AbortCode::AccountNotFound).unwrap(),
            100
        );
        let err = ctx
            .read_required(&5, AbortCode::AccountNotFound)
            .unwrap_err();
        assert_eq!(err, ExecutionFailure::Abort(AbortCode::AccountNotFound));
    }

    #[test]
    fn into_output_contains_latest_writes_and_gas() {
        let r = reader();
        let mut ctx = TransactionContext::new(&r, GasSchedule::zero_work());
        ctx.write(7, 70);
        ctx.write(8, 80);
        ctx.write(7, 71);
        ctx.charge_gas(5);
        let output = ctx.into_output();
        assert_eq!(
            output.writes,
            vec![WriteOp::new(7, 71), WriteOp::new(8, 80)]
        );
        assert!(output.gas_used >= 5);
        assert!(!output.is_aborted());
    }

    #[test]
    fn aborted_output_drops_writes_but_keeps_gas() {
        let r = reader();
        let mut ctx = TransactionContext::new(&r, GasSchedule::zero_work());
        ctx.write(7, 70);
        ctx.apply_delta(8, DeltaOp::add_u64(3)).unwrap();
        let output = ctx.into_aborted_output(AbortCode::User(9));
        assert!(output.writes.is_empty());
        assert!(output.deltas.is_empty(), "aborts drop the delta-set too");
        assert_eq!(output.abort_code, Some(AbortCode::User(9)));
        assert!(output.gas_used > 0);
    }

    #[test]
    fn deltas_merge_per_location_and_read_their_own_effect() {
        let r = reader();
        let mut ctx = TransactionContext::new(&r, GasSchedule::zero_work());
        // Key 1 holds 100 in the reader.
        ctx.apply_delta(1, DeltaOp::add(5, 1_000)).unwrap();
        ctx.apply_delta(1, DeltaOp::add(-2, 1_000)).unwrap();
        assert_eq!(ctx.read(&1).unwrap(), Some(103), "read-your-own-delta");
        // A missing location behaves as aggregator 0.
        ctx.apply_delta(5, DeltaOp::add(7, 1_000)).unwrap();
        assert_eq!(ctx.read(&5).unwrap(), Some(7));
        let output = ctx.into_output();
        assert!(output.writes.is_empty());
        assert_eq!(
            output.deltas,
            vec![(1, DeltaOp::add(3, 1_000)), (5, DeltaOp::add(7, 1_000))]
        );
    }

    #[test]
    fn delta_on_own_write_folds_locally_and_write_absorbs_delta() {
        let r = reader();
        let mut ctx = TransactionContext::new(&r, GasSchedule::zero_work());
        ctx.write(7, 70);
        ctx.apply_delta(7, DeltaOp::add(5, 1_000)).unwrap();
        assert_eq!(ctx.read(&7).unwrap(), Some(75));
        // A later full write on a delta'd location absorbs the pending delta.
        ctx.apply_delta(8, DeltaOp::add(1, 1_000)).unwrap();
        ctx.write(8, 42);
        let output = ctx.into_output();
        assert_eq!(
            output.writes,
            vec![WriteOp::new(7, 75), WriteOp::new(8, 42)]
        );
        assert!(output.deltas.is_empty());
    }

    #[test]
    fn out_of_bounds_deltas_abort_deterministically() {
        let r = reader();
        let mut ctx = TransactionContext::new(&r, GasSchedule::zero_work());
        // Key 1 holds 100: +1 with limit 100 is fine, +1 more is not.
        ctx.apply_delta(1, DeltaOp::add(0, 100)).unwrap();
        let err = ctx.apply_delta(1, DeltaOp::add(1, 100)).unwrap_err();
        assert_eq!(err, ExecutionFailure::Abort(AbortCode::DeltaOverflow));
        // Below zero on the transaction's own buffered write.
        let mut ctx = TransactionContext::new(&r, GasSchedule::zero_work());
        ctx.write(7, 3);
        let err = ctx.apply_delta(7, DeltaOp::add(-4, 100)).unwrap_err();
        assert_eq!(err, ExecutionFailure::Abort(AbortCode::DeltaOverflow));
    }

    #[test]
    fn read_aggregator_reads_resolved_sums() {
        let r = reader();
        let mut ctx = TransactionContext::new(&r, GasSchedule::zero_work());
        assert_eq!(ctx.read_aggregator(&1).unwrap(), 100);
        assert_eq!(ctx.read_aggregator(&5).unwrap(), 0, "missing reads as 0");
        ctx.apply_delta(1, DeltaOp::add(11, 1_000)).unwrap();
        assert_eq!(ctx.read_aggregator(&1).unwrap(), 111);
    }
}
