//! The LiTM baseline: round-based deterministic software transactional memory.
//!
//! LiTM [Xia et al., PMAM'19] is the state-of-the-art deterministic STM the paper
//! compares against (§5): *"All transactions are executed from the initial state and
//! the maximum independent set of transactions (i.e., with no conflicts among them) is
//! committed, arriving to a new state. The remaining transactions are executed from the
//! new state, the maximum independent set is committed, and so on. This approach
//! thrives for low conflict workloads, but otherwise suffers from high overhead."*
//!
//! Our implementation:
//!
//! 1. Every round, all not-yet-committed transactions are executed in parallel against
//!    the state committed so far (reads never see writes of the same round).
//! 2. The commit phase scans the round's transactions in block order and commits the
//!    greedy maximal independent set: a transaction commits unless one of its reads or
//!    writes overlaps with a write of a transaction already committed *this round*.
//! 3. Committed writes are applied, the committed set shrinks the work list, and the
//!    next round begins. Termination is guaranteed because the first uncommitted
//!    transaction in block order never conflicts with an earlier one and therefore
//!    commits every round.
//!
//! The committed serialization is deterministic but generally *not* the preset block
//! order (unlike Block-STM and Bohm), which matches the real system's semantics.

use block_stm::{BlockExecutor, BlockOutput, ExecutionError, PanicCollector};
use block_stm_metrics::ExecutionMetrics;
use block_stm_storage::Storage;
use block_stm_vm::{
    AggregatorValue, ReadOutcome, StateReader, Transaction, TransactionOutput, Vm, VmStatus,
};
use parking_lot::Mutex;
use std::collections::{HashMap, HashSet};
use std::fmt::Debug;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// The LiTM deterministic STM executor.
#[derive(Debug, Clone)]
pub struct LitmExecutor {
    vm: Vm,
    concurrency: usize,
}

/// Result of one speculative execution within a round.
struct RoundExecution<K, V> {
    txn_idx: usize,
    reads: Vec<K>,
    output: TransactionOutput<K, V>,
}

impl LitmExecutor {
    /// Creates a LiTM executor with the given VM and worker-thread count.
    pub fn new(vm: Vm, concurrency: usize) -> Self {
        Self {
            vm,
            concurrency: concurrency.max(1),
        }
    }

    /// Executes `block` against `storage`, returning the committed output.
    pub fn execute_block<T, S>(
        &self,
        block: &[T],
        storage: &S,
    ) -> Result<BlockOutput<T::Key, T::Value>, ExecutionError>
    where
        T: Transaction,
        S: Storage<T::Key, T::Value>,
    {
        let num_txns = block.len();
        let metrics = ExecutionMetrics::new();
        metrics.record_block(num_txns);
        if num_txns == 0 {
            return Ok(BlockOutput::new(Vec::new(), Vec::new(), metrics.snapshot()));
        }

        let mut committed_state: HashMap<T::Key, T::Value> = HashMap::new();
        let mut final_outputs: Vec<Option<TransactionOutput<T::Key, T::Value>>> =
            (0..num_txns).map(|_| None).collect();
        let mut remaining: Vec<usize> = (0..num_txns).collect();
        let mut rounds = 0u64;

        while !remaining.is_empty() {
            rounds += 1;
            // ---- Execution phase: run every remaining transaction in parallel from
            // the committed state snapshot. ----
            type RoundSlot<T> =
                Mutex<Option<RoundExecution<<T as Transaction>::Key, <T as Transaction>::Value>>>;
            let results: Vec<RoundSlot<T>> = remaining.iter().map(|_| Mutex::new(None)).collect();
            let cursor = AtomicUsize::new(0);
            let panics = PanicCollector::new();
            // Raised on the first caught panic: sibling workers stop claiming the
            // round's remaining (doomed) transactions instead of executing them.
            let halted = std::sync::atomic::AtomicBool::new(false);
            let threads = self.concurrency.min(remaining.len());
            std::thread::scope(|scope| {
                for _ in 0..threads {
                    let cursor = &cursor;
                    let results = &results;
                    let remaining = &remaining;
                    let committed_state = &committed_state;
                    let metrics = &metrics;
                    let vm = &self.vm;
                    let panics = &panics;
                    let halted = &halted;
                    scope.spawn(move || loop {
                        if halted.load(Ordering::SeqCst) {
                            break;
                        }
                        let slot = cursor.fetch_add(1, Ordering::SeqCst);
                        if slot >= remaining.len() {
                            break;
                        }
                        let txn_idx = remaining[slot];
                        metrics.record_incarnation();
                        let executed = catch_unwind(AssertUnwindSafe(|| {
                            let view = LitmView {
                                committed: committed_state,
                                storage,
                                reads: Mutex::new(Vec::new()),
                            };
                            let output = match vm.execute(&block[txn_idx], &view) {
                                VmStatus::Done(output) => output,
                                VmStatus::ReadError { .. } => {
                                    // LiTM reads never observe estimates; fail the
                                    // block with a typed error via the panic counter.
                                    panic!("LiTM read returned a dependency (engine bug)");
                                }
                            };
                            let reads = view.reads.into_inner();
                            *results[slot].lock() = Some(RoundExecution {
                                txn_idx,
                                reads,
                                output,
                            });
                        }));
                        if let Err(payload) = executed {
                            panics.record(&*payload);
                            halted.store(true, Ordering::SeqCst);
                            break;
                        }
                    });
                }
            });
            if let Some(error) = panics.into_error() {
                return Err(error);
            }

            // ---- Commit phase: greedy maximal independent set in block order. ----
            let mut written_this_round: HashSet<T::Key> = HashSet::new();
            let mut still_remaining = Vec::new();
            for (slot, cell) in results.into_iter().enumerate() {
                let Some(execution) = cell.into_inner() else {
                    return Err(ExecutionError::MissingOutput {
                        txn_idx: remaining[slot],
                    });
                };
                // Delta writes are treated conservatively as read-modify-writes
                // here: LiTM's round model has no lazy-resolution machinery, so a
                // delta'd key conflicts like any other write (the probe's base
                // read already appears in `reads` as well).
                let conflicts = execution
                    .reads
                    .iter()
                    .any(|key| written_this_round.contains(key))
                    || execution
                        .output
                        .writes
                        .iter()
                        .any(|write| written_this_round.contains(&write.key))
                    || execution
                        .output
                        .deltas
                        .iter()
                        .any(|(key, _)| written_this_round.contains(key));
                metrics.record_validation(!conflicts);
                if conflicts {
                    still_remaining.push(execution.txn_idx);
                    continue;
                }
                for write in &execution.output.writes {
                    written_this_round.insert(write.key.clone());
                    committed_state.insert(write.key.clone(), write.value.clone());
                }
                // Commutative deltas materialize against the committed state the
                // round executed from (no same-round writer touched the key — the
                // conflict check above deferred those).
                for (key, op) in &execution.output.deltas {
                    let base = committed_state
                        .get(key)
                        .map(|value| value.to_aggregator())
                        .or_else(|| storage.get(key).map(|value| value.to_aggregator()))
                        .unwrap_or(0);
                    written_this_round.insert(key.clone());
                    committed_state.insert(
                        key.clone(),
                        <T::Value as AggregatorValue>::from_aggregator(op.apply_clamped(base)),
                    );
                }
                final_outputs[execution.txn_idx] = Some(execution.output);
            }
            remaining = still_remaining;
        }

        metrics.record_rounds(rounds);
        let mut outputs = Vec::with_capacity(num_txns);
        for (txn_idx, output) in final_outputs.into_iter().enumerate() {
            // Termination guarantees every transaction committed in some round;
            // report the broken invariant instead of unwinding.
            match output {
                Some(output) => outputs.push(output),
                None => return Err(ExecutionError::MissingOutput { txn_idx }),
            }
        }
        Ok(BlockOutput::new(
            committed_state.into_iter().collect(),
            outputs,
            metrics.snapshot(),
        ))
    }
}

impl<T, S> BlockExecutor<T, S> for LitmExecutor
where
    T: Transaction,
    S: Storage<T::Key, T::Value>,
{
    fn name(&self) -> &'static str {
        "litm"
    }

    fn execute_block(
        &self,
        block: &[T],
        storage: &S,
    ) -> Result<BlockOutput<T::Key, T::Value>, ExecutionError> {
        LitmExecutor::execute_block(self, block, storage)
    }

    /// LiTM commits a deterministic serialization that is generally *not* the preset
    /// block order (see the module docs).
    fn preserves_preset_order(&self) -> bool {
        false
    }
}

/// Read view of one LiTM speculative execution: committed state + pre-block storage,
/// with read-key capture for the commit phase's conflict detection.
struct LitmView<'a, K, V, S> {
    committed: &'a HashMap<K, V>,
    storage: &'a S,
    reads: Mutex<Vec<K>>,
}

impl<K, V, S> StateReader<K, V> for LitmView<'_, K, V, S>
where
    K: Eq + Hash + Clone + Debug,
    V: Clone + Debug,
    S: Storage<K, V>,
{
    fn read(&self, key: &K) -> ReadOutcome<V> {
        self.reads.lock().push(key.clone());
        if let Some(value) = self.committed.get(key) {
            return ReadOutcome::Value(value.clone());
        }
        match self.storage.get(key) {
            Some(value) => ReadOutcome::Value(value),
            None => ReadOutcome::NotFound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use block_stm::SequentialExecutor;
    use block_stm_storage::InMemoryStorage;
    use block_stm_vm::synthetic::SyntheticTransaction;

    fn storage_with_keys(keys: u64) -> InMemoryStorage<u64, u64> {
        (0..keys).map(|k| (k, k * 1_000)).collect()
    }

    #[test]
    fn empty_block() {
        let storage = storage_with_keys(1);
        let litm = LitmExecutor::new(Vm::for_testing(), 4);
        let output = litm
            .execute_block::<SyntheticTransaction, _>(&[], &storage)
            .unwrap();
        assert_eq!(output.num_txns(), 0);
        assert_eq!(output.metrics.rounds, 0);
    }

    #[test]
    fn independent_transactions_commit_in_one_round() {
        let storage = storage_with_keys(0);
        let block: Vec<_> = (0..64).map(|i| SyntheticTransaction::put(i, i)).collect();
        let litm = LitmExecutor::new(Vm::for_testing(), 4);
        let output = litm.execute_block(&block, &storage).unwrap();
        assert_eq!(output.metrics.rounds, 1);
        // With no conflicts the result equals the preset-order (sequential) state.
        let sequential = SequentialExecutor::new(Vm::for_testing());
        assert_eq!(
            output.updates,
            sequential.execute_block(&block, &storage).unwrap().updates
        );
    }

    #[test]
    fn fully_conflicting_block_needs_one_round_per_transaction() {
        let storage = storage_with_keys(1);
        let block: Vec<_> = (0..10)
            .map(|_| SyntheticTransaction::increment(0))
            .collect();
        let litm = LitmExecutor::new(Vm::for_testing(), 4);
        let output = litm.execute_block(&block, &storage).unwrap();
        assert_eq!(
            output.metrics.rounds, 10,
            "one commit per round on a hot key"
        );
        assert_eq!(output.num_txns(), 10);
    }

    #[test]
    fn result_is_deterministic_across_runs_and_thread_counts() {
        let storage = storage_with_keys(4);
        let block: Vec<_> = (0..60)
            .map(|i| SyntheticTransaction::transfer(i % 4, (i * 7 + 1) % 4, i))
            .collect();
        let reference = LitmExecutor::new(Vm::for_testing(), 1)
            .execute_block(&block, &storage)
            .unwrap();
        for threads in [2, 4, 8] {
            let run = LitmExecutor::new(Vm::for_testing(), threads)
                .execute_block(&block, &storage)
                .unwrap();
            assert_eq!(reference.updates, run.updates, "threads = {threads}");
        }
    }

    #[test]
    fn committed_state_is_serializable() {
        // Replaying the committed transactions in *some* order must reproduce the
        // committed state; for LiTM that order is "round by round, block order within
        // a round". We verify a necessary condition cheaply: every committed write
        // value appears in the final state unless overwritten by a later-committed
        // transaction, and all transactions committed exactly once.
        let storage = storage_with_keys(3);
        let block: Vec<_> = (0..30)
            .map(|i| SyntheticTransaction::transfer(i % 3, (i + 1) % 3, i))
            .collect();
        let litm = LitmExecutor::new(Vm::for_testing(), 4);
        let output = litm.execute_block(&block, &storage).unwrap();
        assert_eq!(output.outputs.len(), block.len());
        assert!(output.metrics.rounds >= 1);
        // Every non-aborted transaction produced writes that target existing keys.
        for txn_output in &output.outputs {
            for write in &txn_output.writes {
                assert!(write.key < 3 + 100, "unexpected key {}", write.key);
            }
        }
    }

    #[test]
    fn rounds_decrease_with_lower_contention() {
        let litm = LitmExecutor::new(Vm::for_testing(), 4);
        let contended_storage = storage_with_keys(2);
        let contended: Vec<_> = (0..40)
            .map(|i| SyntheticTransaction::transfer(i % 2, (i + 1) % 2, i))
            .collect();
        let spread_storage = storage_with_keys(1_000);
        let spread: Vec<_> = (0..40)
            .map(|i| SyntheticTransaction::transfer(i * 13 % 1_000, (i * 17 + 500) % 1_000, i))
            .collect();
        let contended_rounds = litm
            .execute_block(&contended, &contended_storage)
            .unwrap()
            .metrics
            .rounds;
        let spread_rounds = litm
            .execute_block(&spread, &spread_storage)
            .unwrap()
            .metrics
            .rounds;
        assert!(
            contended_rounds > spread_rounds,
            "contended {contended_rounds} rounds should exceed spread {spread_rounds}"
        );
    }
}
