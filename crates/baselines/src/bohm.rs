//! The Bohm baseline: deterministic multi-version execution with perfect write-sets.
//!
//! Bohm [Faleiro & Abadi, VLDB'15] enforces the same preset serialization order as
//! Block-STM but assumes the write-set of every transaction is known *before*
//! execution. It proceeds in two phases:
//!
//! 1. **Insertion phase** — build a multi-version structure containing, for every
//!    declared `(location, txn)` write, a *placeholder* entry. The paper's evaluation
//!    notes this construction cost is significant; we parallelize it by partitioning
//!    locations across threads, as Bohm partitions records across its concurrency-
//!    control threads.
//! 2. **Execution phase** — execute transactions in parallel. A read by `tx_j` finds
//!    the placeholder of the highest declaring transaction below `j` and, if the value
//!    has not been produced yet, *waits* for it (the dependency is guaranteed to
//!    resolve because lower transactions were claimed earlier). Transactions that end
//!    up not writing a declared location mark the placeholder as skipped, and readers
//!    fall through to the next lower version.
//!
//! There are no aborts and no validations: with perfect write-sets every transaction
//! executes exactly once. The price is the up-front knowledge and the insertion phase,
//! which is exactly the trade-off the paper's Figure 3 explores.

use block_stm::BlockOutput;
use block_stm_metrics::ExecutionMetrics;
use block_stm_storage::Storage;
use block_stm_sync::{Backoff, ShardedMap};
use block_stm_vm::{
    ReadOutcome, StateReader, Transaction, TransactionOutput, TxnIndex, Vm, VmStatus,
};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// State of one declared write slot.
#[derive(Debug, Clone)]
enum Slot<V> {
    /// The owning transaction has not executed yet.
    Pending,
    /// The owning transaction wrote this value.
    Written(Arc<V>),
    /// The owning transaction executed but did not write the declared location
    /// (over-approximated write-set or a deterministic abort).
    Skipped,
}

/// Per-location version chain: declared writers (by transaction index) and the state
/// of each slot.
type VersionChain<V> = BTreeMap<TxnIndex, RwLock<Slot<V>>>;

/// The Bohm baseline executor.
#[derive(Debug, Clone)]
pub struct BohmExecutor {
    vm: Vm,
    concurrency: usize,
}

impl BohmExecutor {
    /// Creates a Bohm executor with the given VM and worker-thread count.
    pub fn new(vm: Vm, concurrency: usize) -> Self {
        Self {
            vm,
            concurrency: concurrency.max(1),
        }
    }

    /// Executes `block` given its `perfect_write_sets` (one declared write-set per
    /// transaction, aligned by index) against the pre-block `storage`.
    ///
    /// # Panics
    /// Panics if `perfect_write_sets.len() != block.len()`, or (in debug builds) if a
    /// transaction writes a location it did not declare — that would violate Bohm's
    /// core assumption.
    pub fn execute_block<T, S>(
        &self,
        block: &[T],
        perfect_write_sets: &[Vec<T::Key>],
        storage: &S,
    ) -> BlockOutput<T::Key, T::Value>
    where
        T: Transaction,
        S: Storage<T::Key, T::Value>,
    {
        assert_eq!(
            block.len(),
            perfect_write_sets.len(),
            "one perfect write-set per transaction is required"
        );
        let num_txns = block.len();
        let metrics = ExecutionMetrics::new();
        metrics.record_block(num_txns);
        if num_txns == 0 {
            return BlockOutput::new(Vec::new(), Vec::new(), metrics.snapshot());
        }

        // ---- Phase 1: insertion (parallel over location partitions). ----
        let chains: ShardedMap<T::Key, VersionChain<T::Value>> = ShardedMap::default();
        let threads = self.concurrency.min(num_txns);
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let chains = &chains;
                scope.spawn(move || {
                    for (txn_idx, write_set) in perfect_write_sets.iter().enumerate() {
                        for location in write_set {
                            // Partition the insertion work by location so that two
                            // threads never insert into the same chain concurrently
                            // more than the sharded map already tolerates.
                            if location_partition(location, threads) == worker {
                                chains.mutate(location.clone(), |chain| {
                                    chain.insert(txn_idx, RwLock::new(Slot::Pending));
                                });
                            }
                        }
                    }
                });
            }
        });

        // ---- Phase 2: parallel execution in index order. ----
        type OutputSlot<T> =
            Mutex<Option<TransactionOutput<<T as Transaction>::Key, <T as Transaction>::Value>>>;
        let outputs: Vec<OutputSlot<T>> = (0..num_txns).map(|_| Mutex::new(None)).collect();
        let next_txn = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let chains = &chains;
                let outputs = &outputs;
                let next_txn = &next_txn;
                let metrics = &metrics;
                let vm = &self.vm;
                scope.spawn(move || loop {
                    let txn_idx = next_txn.fetch_add(1, Ordering::SeqCst);
                    if txn_idx >= num_txns {
                        break;
                    }
                    metrics.record_incarnation();
                    let view = BohmView {
                        chains,
                        storage,
                        txn_idx,
                        metrics,
                    };
                    let output = match vm.execute(&block[txn_idx], &view) {
                        VmStatus::Done(output) => output,
                        VmStatus::ReadError { .. } => {
                            unreachable!("Bohm reads never observe estimates")
                        }
                    };
                    publish_writes(chains, txn_idx, &perfect_write_sets[txn_idx], &output);
                    *outputs[txn_idx].lock() = Some(output);
                });
            }
        });

        // ---- Collect the final state: highest written slot per location. ----
        let mut updates = Vec::new();
        chains.for_each(|location, chain| {
            for (_, slot) in chain.iter().rev() {
                match &*slot.read() {
                    Slot::Written(value) => {
                        updates.push((location.clone(), (**value).clone()));
                        break;
                    }
                    Slot::Skipped => continue,
                    Slot::Pending => unreachable!("all transactions have executed"),
                }
            }
        });
        let outputs = outputs
            .into_iter()
            .map(|cell| cell.into_inner().expect("every transaction executed"))
            .collect();
        BlockOutput::new(updates, outputs, metrics.snapshot())
    }
}

/// Deterministically assigns a location to an insertion-phase partition.
fn location_partition<K: Hash>(location: &K, partitions: usize) -> usize {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hasher;
    let mut hasher = DefaultHasher::new();
    location.hash(&mut hasher);
    (hasher.finish() as usize) % partitions
}

/// Fills the declared slots of `txn_idx` from the actual execution output: declared
/// locations that were written get the value, the rest are marked skipped.
fn publish_writes<K, V>(
    chains: &ShardedMap<K, VersionChain<V>>,
    txn_idx: TxnIndex,
    declared: &[K],
    output: &TransactionOutput<K, V>,
) where
    K: Eq + Hash + Clone + Debug,
    V: Clone + Debug,
{
    debug_assert!(
        output
            .writes
            .iter()
            .all(|write| declared.contains(&write.key)),
        "transaction {txn_idx} wrote a location missing from its perfect write-set"
    );
    for location in declared {
        let value = output
            .writes
            .iter()
            .find(|write| &write.key == location)
            .map(|write| Arc::new(write.value.clone()));
        chains.read_with(location, |chain| {
            let slot = chain
                .expect("declared location must have a chain")
                .get(&txn_idx)
                .expect("declared slot must exist");
            *slot.write() = match &value {
                Some(value) => Slot::Written(Arc::clone(value)),
                None => Slot::Skipped,
            };
        });
    }
}

/// The read view of one Bohm transaction execution.
struct BohmView<'a, K, V, S> {
    chains: &'a ShardedMap<K, VersionChain<V>>,
    storage: &'a S,
    txn_idx: TxnIndex,
    metrics: &'a ExecutionMetrics,
}

impl<K, V, S> BohmView<'_, K, V, S>
where
    K: Eq + Hash + Clone + Debug,
    V: Clone + Debug,
    S: Storage<K, V>,
{
    /// Reads the highest resolved version below `self.txn_idx`, waiting for pending
    /// slots of lower transactions to resolve.
    fn read_versioned(&self, key: &K) -> Option<V> {
        // Collect the candidate writer indices below us once; the set of *declared*
        // writers never changes during the execution phase.
        let writers: Vec<TxnIndex> = self.chains.read_with(key, |chain| {
            chain
                .map(|chain| chain.range(..self.txn_idx).map(|(idx, _)| *idx).collect())
                .unwrap_or_default()
        });
        // Walk writers from highest to lowest: wait on pending, skip skipped.
        for txn_idx in writers.into_iter().rev() {
            let mut backoff = Backoff::new();
            loop {
                let resolved: Option<Option<V>> = self.chains.read_with(key, |chain| {
                    let slot = chain
                        .expect("chain existed a moment ago")
                        .get(&txn_idx)
                        .expect("slot existed a moment ago");
                    match &*slot.read() {
                        Slot::Pending => None,
                        Slot::Written(value) => Some(Some((**value).clone())),
                        Slot::Skipped => Some(None),
                    }
                });
                match resolved {
                    Some(Some(value)) => return Some(value),
                    Some(None) => break, // skipped: fall through to the next lower writer
                    None => {
                        self.metrics.record_blocked_read_spins(1);
                        backoff.snooze();
                    }
                }
            }
        }
        None
    }
}

impl<K, V, S> StateReader<K, V> for BohmView<'_, K, V, S>
where
    K: Eq + Hash + Clone + Debug,
    V: Clone + Debug,
    S: Storage<K, V>,
{
    fn read(&self, key: &K) -> ReadOutcome<V> {
        // Per-read metric counters are skipped on this hot path for the same reason as
        // in Block-STM's view: a shared atomic increment per read is pure contention.
        if let Some(value) = self.read_versioned(key) {
            return ReadOutcome::Value(value);
        }
        match self.storage.get(key) {
            Some(value) => ReadOutcome::Value(value),
            None => ReadOutcome::NotFound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use block_stm::SequentialExecutor;
    use block_stm_storage::InMemoryStorage;
    use block_stm_vm::synthetic::SyntheticTransaction;

    fn storage_with_keys(keys: u64) -> InMemoryStorage<u64, u64> {
        (0..keys).map(|k| (k, k * 1_000)).collect()
    }

    fn run_both(
        block: &[SyntheticTransaction],
        storage: &InMemoryStorage<u64, u64>,
        threads: usize,
    ) {
        let write_sets: Vec<Vec<u64>> = block.iter().map(|t| t.perfect_write_set()).collect();
        let bohm = BohmExecutor::new(Vm::for_testing(), threads);
        let sequential = SequentialExecutor::new(Vm::for_testing());
        let bohm_output = bohm.execute_block(block, &write_sets, storage);
        let sequential_output = sequential.execute_block(block, storage);
        assert_eq!(
            bohm_output.updates, sequential_output.updates,
            "Bohm must commit the preset-order state"
        );
    }

    #[test]
    fn empty_block() {
        let storage = storage_with_keys(1);
        let bohm = BohmExecutor::new(Vm::for_testing(), 4);
        let output = bohm.execute_block::<SyntheticTransaction, _>(&[], &[], &storage);
        assert_eq!(output.num_txns(), 0);
    }

    #[test]
    fn independent_transactions() {
        let storage = storage_with_keys(0);
        let block: Vec<_> = (0..64).map(|i| SyntheticTransaction::put(i, i)).collect();
        run_both(&block, &storage, 4);
    }

    #[test]
    fn sequential_chain_matches_preset_order() {
        let storage = storage_with_keys(1);
        let block: Vec<_> = (0..50)
            .map(|_| SyntheticTransaction::increment(0))
            .collect();
        run_both(&block, &storage, 4);
    }

    #[test]
    fn transfers_over_small_universe() {
        let storage = storage_with_keys(4);
        let block: Vec<_> = (0..80)
            .map(|i| SyntheticTransaction::transfer(i % 4, (i + 1) % 4, i))
            .collect();
        run_both(&block, &storage, 8);
    }

    #[test]
    fn over_approximate_write_sets_are_handled_via_skipped_slots() {
        // Conditional writes may or may not happen; the declared (perfect) write-set
        // includes them, so some slots end up skipped and readers must fall through.
        let storage = storage_with_keys(6);
        let block: Vec<_> = (0..60)
            .map(|i| {
                SyntheticTransaction::transfer(i % 6, (i + 2) % 6, i)
                    .with_conditional_writes(vec![(i + 3) % 6])
            })
            .collect();
        run_both(&block, &storage, 4);
    }

    #[test]
    fn aborted_transactions_write_nothing() {
        let storage = storage_with_keys(3);
        let block: Vec<_> = (0..40)
            .map(|i| SyntheticTransaction::increment(i % 3).with_abort_divisor(4))
            .collect();
        run_both(&block, &storage, 4);
    }

    #[test]
    fn single_thread_execution_works() {
        let storage = storage_with_keys(2);
        let block: Vec<_> = (0..20)
            .map(|i| SyntheticTransaction::transfer(i % 2, (i + 1) % 2, i))
            .collect();
        run_both(&block, &storage, 1);
    }

    #[test]
    #[should_panic(expected = "one perfect write-set per transaction")]
    fn mismatched_write_set_length_panics() {
        let storage = storage_with_keys(1);
        let block = vec![SyntheticTransaction::put(0, 1)];
        let bohm = BohmExecutor::new(Vm::for_testing(), 2);
        let _ = bohm.execute_block(&block, &[], &storage);
    }
}
