//! The Bohm baseline: deterministic multi-version execution with perfect write-sets.
//!
//! Bohm [Faleiro & Abadi, VLDB'15] enforces the same preset serialization order as
//! Block-STM but assumes the write-set of every transaction is known *before*
//! execution. It proceeds in two phases:
//!
//! 1. **Insertion phase** — build a multi-version structure containing, for every
//!    declared `(location, txn)` write, a *placeholder* entry. The paper's evaluation
//!    notes this construction cost is significant; we parallelize it by partitioning
//!    locations across threads, as Bohm partitions records across its concurrency-
//!    control threads.
//! 2. **Execution phase** — execute transactions in parallel. A read by `tx_j` finds
//!    the placeholder of the highest declaring transaction below `j` and, if the value
//!    has not been produced yet, *waits* for it (the dependency is guaranteed to
//!    resolve because lower transactions were claimed earlier). Transactions that end
//!    up not writing a declared location mark the placeholder as skipped, and readers
//!    fall through to the next lower version.
//!
//! There are no aborts and no validations: with perfect write-sets every transaction
//! executes exactly once. The price is the up-front knowledge and the insertion phase,
//! which is exactly the trade-off the paper's Figure 3 explores.
//!
//! Through the [`BlockExecutor`] interface the write-sets come from
//! [`Transaction::access_hints`] — and they must be **exact** hints: Bohm's
//! chains are only sound when the declared writes are a superset of the actual
//! writes. Transaction models that declare no hints make the engine return
//! [`ExecutionError::MissingWriteSet`], and advisory-only hints are refused
//! with [`ExecutionError::InexactHints`] instead of being trusted.

use block_stm::{BlockExecutor, BlockOutput, ExecutionError, PanicCollector};
use block_stm_metrics::ExecutionMetrics;
use block_stm_storage::Storage;
use block_stm_sync::{Backoff, ShardedMap};
use block_stm_vm::{
    ReadOutcome, StateReader, Transaction, TransactionOutput, TxnIndex, Vm, VmStatus,
};
use parking_lot::{Mutex, RwLock};
use std::collections::BTreeMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// State of one declared write slot.
#[derive(Debug, Clone)]
enum Slot<V> {
    /// The owning transaction has not executed yet.
    Pending,
    /// The owning transaction wrote this value.
    Written(Arc<V>),
    /// The owning transaction executed but did not write the declared location
    /// (over-approximated write-set or a deterministic abort).
    Skipped,
}

/// Per-location version chain: declared writers (by transaction index) and the state
/// of each slot.
type VersionChain<V> = BTreeMap<TxnIndex, RwLock<Slot<V>>>;

/// The Bohm baseline executor.
#[derive(Debug, Clone)]
pub struct BohmExecutor {
    vm: Vm,
    concurrency: usize,
}

impl BohmExecutor {
    /// Creates a Bohm executor with the given VM and worker-thread count.
    pub fn new(vm: Vm, concurrency: usize) -> Self {
        Self {
            vm,
            concurrency: concurrency.max(1),
        }
    }

    /// Executes `block`, deriving the perfect write-sets from
    /// [`Transaction::access_hints`]. Fails with
    /// [`ExecutionError::MissingWriteSet`] if a transaction declares no hints
    /// at all, and with [`ExecutionError::InexactHints`] if its hints are
    /// advisory-only — Bohm's pre-built version chains require the exact
    /// write-superset guarantee, which advisory hints do not carry.
    pub fn execute_block<T, S>(
        &self,
        block: &[T],
        storage: &S,
    ) -> Result<BlockOutput<T::Key, T::Value>, ExecutionError>
    where
        T: Transaction,
        S: Storage<T::Key, T::Value>,
    {
        let mut write_sets = Vec::with_capacity(block.len());
        for (txn_idx, txn) in block.iter().enumerate() {
            let hints = txn
                .access_hints()
                .ok_or(ExecutionError::MissingWriteSet { txn_idx })?;
            if !hints.exact {
                return Err(ExecutionError::InexactHints { txn_idx });
            }
            write_sets.push(hints.writes);
        }
        self.execute_with_write_sets(block, &write_sets, storage)
    }

    /// Executes `block` given externally supplied `perfect_write_sets` (one declared
    /// write-set per transaction, aligned by index) against the pre-block `storage`.
    ///
    /// Benchmarks that want the write-set derivation outside the timed region use
    /// this entry point directly.
    pub fn execute_with_write_sets<T, S>(
        &self,
        block: &[T],
        perfect_write_sets: &[Vec<T::Key>],
        storage: &S,
    ) -> Result<BlockOutput<T::Key, T::Value>, ExecutionError>
    where
        T: Transaction,
        S: Storage<T::Key, T::Value>,
    {
        if block.len() != perfect_write_sets.len() {
            return Err(ExecutionError::WriteSetMismatch {
                block_len: block.len(),
                write_sets_len: perfect_write_sets.len(),
            });
        }
        let num_txns = block.len();
        let metrics = ExecutionMetrics::new();
        metrics.record_block(num_txns);
        if num_txns == 0 {
            return Ok(BlockOutput::new(Vec::new(), Vec::new(), metrics.snapshot()));
        }

        // ---- Phase 1: insertion (parallel over location partitions). ----
        let chains: ShardedMap<T::Key, VersionChain<T::Value>> = ShardedMap::default();
        let threads = self.concurrency.min(num_txns);
        std::thread::scope(|scope| {
            for worker in 0..threads {
                let chains = &chains;
                scope.spawn(move || {
                    for (txn_idx, write_set) in perfect_write_sets.iter().enumerate() {
                        for location in write_set {
                            // Partition the insertion work by location so that two
                            // threads never insert into the same chain concurrently
                            // more than the sharded map already tolerates.
                            if location_partition(location, threads) == worker {
                                chains.mutate(location.clone(), |chain| {
                                    chain.insert(txn_idx, RwLock::new(Slot::Pending));
                                });
                            }
                        }
                    }
                });
            }
        });

        // ---- Phase 2: parallel execution in index order. ----
        type OutputSlot<T> =
            Mutex<Option<TransactionOutput<<T as Transaction>::Key, <T as Transaction>::Value>>>;
        let outputs: Vec<OutputSlot<T>> = (0..num_txns).map(|_| Mutex::new(None)).collect();
        let next_txn = AtomicUsize::new(0);
        // Raised when a worker panics or detects a broken contract: blocked readers
        // stop waiting for values that will never arrive, and the block is reported
        // as failed.
        let halted = AtomicBool::new(false);
        let panics = PanicCollector::new();
        let first_error: Mutex<Option<ExecutionError>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let chains = &chains;
                let outputs = &outputs;
                let next_txn = &next_txn;
                let metrics = &metrics;
                let vm = &self.vm;
                let halted = &halted;
                let panics = &panics;
                let first_error = &first_error;
                scope.spawn(move || loop {
                    if halted.load(Ordering::SeqCst) {
                        break;
                    }
                    let txn_idx = next_txn.fetch_add(1, Ordering::SeqCst);
                    if txn_idx >= num_txns {
                        break;
                    }
                    metrics.record_incarnation();
                    let view = BohmView {
                        chains,
                        storage,
                        txn_idx,
                        metrics,
                        halted,
                    };
                    let executed =
                        catch_unwind(AssertUnwindSafe(|| -> Result<(), ExecutionError> {
                            match vm.execute(&block[txn_idx], &view) {
                                VmStatus::Done(output) => {
                                    publish_writes(
                                        chains,
                                        txn_idx,
                                        &perfect_write_sets[txn_idx],
                                        &output,
                                    )?;
                                    *outputs[txn_idx].lock() = Some(output);
                                    Ok(())
                                }
                                VmStatus::ReadError { .. } => {
                                    // Bohm reads never observe estimates; treat it
                                    // like a panic so the block fails typed.
                                    panic!("Bohm read returned a dependency (engine bug)");
                                }
                            }
                        }));
                    match executed {
                        Ok(Ok(())) => {}
                        Ok(Err(error)) => {
                            let mut slot = first_error.lock();
                            if slot.is_none() {
                                *slot = Some(error);
                            }
                            drop(slot);
                            halted.store(true, Ordering::SeqCst);
                            break;
                        }
                        Err(payload) => {
                            panics.record(&*payload);
                            halted.store(true, Ordering::SeqCst);
                            break;
                        }
                    }
                });
            }
        });
        if let Some(error) = first_error.into_inner() {
            return Err(error);
        }
        if let Some(error) = panics.into_error() {
            return Err(error);
        }

        // ---- Collect the final state: highest written slot per location. ----
        let mut updates = Vec::new();
        let mut missing_slot = false;
        chains.for_each(|location, chain| {
            for (_, slot) in chain.iter().rev() {
                match &*slot.read() {
                    Slot::Written(value) => {
                        updates.push((location.clone(), (**value).clone()));
                        break;
                    }
                    Slot::Skipped => continue,
                    // Impossible after a clean execution phase (every transaction
                    // resolves its declared slots); flagged instead of panicking.
                    Slot::Pending => {
                        missing_slot = true;
                        break;
                    }
                }
            }
        });
        if missing_slot {
            return Err(ExecutionError::Internal {
                detail: "a declared write slot was never resolved".to_string(),
            });
        }
        let mut collected = Vec::with_capacity(num_txns);
        for (txn_idx, cell) in outputs.into_iter().enumerate() {
            match cell.into_inner() {
                Some(output) => collected.push(output),
                None => return Err(ExecutionError::MissingOutput { txn_idx }),
            }
        }
        Ok(BlockOutput::new(updates, collected, metrics.snapshot()))
    }
}

impl<T, S> BlockExecutor<T, S> for BohmExecutor
where
    T: Transaction,
    S: Storage<T::Key, T::Value>,
{
    fn name(&self) -> &'static str {
        "bohm"
    }

    fn execute_block(
        &self,
        block: &[T],
        storage: &S,
    ) -> Result<BlockOutput<T::Key, T::Value>, ExecutionError> {
        BohmExecutor::execute_block(self, block, storage)
    }
}

/// Deterministically assigns a location to an insertion-phase partition.
fn location_partition<K: Hash>(location: &K, partitions: usize) -> usize {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::Hasher;
    let mut hasher = DefaultHasher::new();
    location.hash(&mut hasher);
    (hasher.finish() as usize) % partitions
}

/// Fills the declared slots of `txn_idx` from the actual execution output: declared
/// locations that were written get the value, the rest are marked skipped.
///
/// A write outside the declared set violates Bohm's core assumption — readers would
/// silently miss it because no placeholder exists — so it is rejected with
/// [`ExecutionError::UndeclaredWrite`] *before* any slot is published.
fn publish_writes<K, V>(
    chains: &ShardedMap<K, VersionChain<V>>,
    txn_idx: TxnIndex,
    declared: &[K],
    output: &TransactionOutput<K, V>,
) -> Result<(), ExecutionError>
where
    K: Eq + Hash + Clone + Debug,
    V: Clone + Debug,
{
    if output
        .writes
        .iter()
        .any(|write| !declared.contains(&write.key))
    {
        return Err(ExecutionError::UndeclaredWrite { txn_idx });
    }
    // A delta-set cannot be represented by Bohm's pre-built placeholder chains:
    // the slot's value is unknown until the lower writers land, and Bohm has no
    // lazy-resolution machinery. Refuse the block instead of committing a wrong
    // state.
    if output.has_deltas() {
        return Err(ExecutionError::DeltasUnsupported { txn_idx });
    }
    for location in declared {
        let value = output
            .writes
            .iter()
            .find(|write| &write.key == location)
            .map(|write| Arc::new(write.value.clone()));
        chains.read_with(location, |chain| {
            let slot = chain
                .expect("declared location must have a chain")
                .get(&txn_idx)
                .expect("declared slot must exist");
            *slot.write() = match &value {
                Some(value) => Slot::Written(Arc::clone(value)),
                None => Slot::Skipped,
            };
        });
    }
    Ok(())
}

/// The read view of one Bohm transaction execution.
struct BohmView<'a, K, V, S> {
    chains: &'a ShardedMap<K, VersionChain<V>>,
    storage: &'a S,
    txn_idx: TxnIndex,
    metrics: &'a ExecutionMetrics,
    /// Set when a sibling worker panicked: stop waiting on pending slots.
    halted: &'a AtomicBool,
}

impl<K, V, S> BohmView<'_, K, V, S>
where
    K: Eq + Hash + Clone + Debug,
    V: Clone + Debug,
    S: Storage<K, V>,
{
    /// Reads the highest resolved version below `self.txn_idx`, waiting for pending
    /// slots of lower transactions to resolve.
    fn read_versioned(&self, key: &K) -> Option<V> {
        // Collect the candidate writer indices below us once; the set of *declared*
        // writers never changes during the execution phase.
        let writers: Vec<TxnIndex> = self.chains.read_with(key, |chain| {
            chain
                .map(|chain| chain.range(..self.txn_idx).map(|(idx, _)| *idx).collect())
                .unwrap_or_default()
        });
        // Walk writers from highest to lowest: wait on pending, skip skipped.
        for txn_idx in writers.into_iter().rev() {
            let mut backoff = Backoff::new();
            loop {
                let resolved: Option<Option<V>> = self.chains.read_with(key, |chain| {
                    let slot = chain
                        .expect("chain existed a moment ago")
                        .get(&txn_idx)
                        .expect("slot existed a moment ago");
                    match &*slot.read() {
                        Slot::Pending => None,
                        Slot::Written(value) => Some(Some((**value).clone())),
                        Slot::Skipped => Some(None),
                    }
                });
                match resolved {
                    Some(Some(value)) => return Some(value),
                    Some(None) => break, // skipped: fall through to the next lower writer
                    None => {
                        if self.halted.load(Ordering::SeqCst) {
                            // The writer we are waiting on is dead; the block will be
                            // reported as failed, any value serves as a placeholder.
                            return None;
                        }
                        self.metrics.record_blocked_read_spins(1);
                        backoff.snooze();
                    }
                }
            }
        }
        None
    }
}

impl<K, V, S> StateReader<K, V> for BohmView<'_, K, V, S>
where
    K: Eq + Hash + Clone + Debug,
    V: Clone + Debug,
    S: Storage<K, V>,
{
    fn read(&self, key: &K) -> ReadOutcome<V> {
        // Per-read metric counters are skipped on this hot path for the same reason as
        // in Block-STM's view: a shared atomic increment per read is pure contention.
        if let Some(value) = self.read_versioned(key) {
            return ReadOutcome::Value(value);
        }
        match self.storage.get(key) {
            Some(value) => ReadOutcome::Value(value),
            None => ReadOutcome::NotFound,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use block_stm::SequentialExecutor;
    use block_stm_storage::InMemoryStorage;
    use block_stm_vm::synthetic::SyntheticTransaction;

    fn storage_with_keys(keys: u64) -> InMemoryStorage<u64, u64> {
        (0..keys).map(|k| (k, k * 1_000)).collect()
    }

    fn run_both(
        block: &[SyntheticTransaction],
        storage: &InMemoryStorage<u64, u64>,
        threads: usize,
    ) {
        let bohm = BohmExecutor::new(Vm::for_testing(), threads);
        let sequential = SequentialExecutor::new(Vm::for_testing());
        // Derived write-sets (trait path) and precomputed ones must agree.
        let bohm_output = bohm.execute_block(block, storage).unwrap();
        let write_sets: Vec<Vec<u64>> = block.iter().map(|t| t.perfect_write_set()).collect();
        let precomputed = bohm
            .execute_with_write_sets(block, &write_sets, storage)
            .unwrap();
        let sequential_output = sequential.execute_block(block, storage).unwrap();
        assert_eq!(
            bohm_output.updates, sequential_output.updates,
            "Bohm must commit the preset-order state"
        );
        assert_eq!(bohm_output.updates, precomputed.updates);
    }

    #[test]
    fn empty_block() {
        let storage = storage_with_keys(1);
        let bohm = BohmExecutor::new(Vm::for_testing(), 4);
        let output = bohm
            .execute_block::<SyntheticTransaction, _>(&[], &storage)
            .unwrap();
        assert_eq!(output.num_txns(), 0);
    }

    #[test]
    fn independent_transactions() {
        let storage = storage_with_keys(0);
        let block: Vec<_> = (0..64).map(|i| SyntheticTransaction::put(i, i)).collect();
        run_both(&block, &storage, 4);
    }

    #[test]
    fn sequential_chain_matches_preset_order() {
        let storage = storage_with_keys(1);
        let block: Vec<_> = (0..50)
            .map(|_| SyntheticTransaction::increment(0))
            .collect();
        run_both(&block, &storage, 4);
    }

    #[test]
    fn transfers_over_small_universe() {
        let storage = storage_with_keys(4);
        let block: Vec<_> = (0..80)
            .map(|i| SyntheticTransaction::transfer(i % 4, (i + 1) % 4, i))
            .collect();
        run_both(&block, &storage, 8);
    }

    #[test]
    fn over_approximate_write_sets_are_handled_via_skipped_slots() {
        // Conditional writes may or may not happen; the declared (perfect) write-set
        // includes them, so some slots end up skipped and readers must fall through.
        let storage = storage_with_keys(6);
        let block: Vec<_> = (0..60)
            .map(|i| {
                SyntheticTransaction::transfer(i % 6, (i + 2) % 6, i)
                    .with_conditional_writes(vec![(i + 3) % 6])
            })
            .collect();
        run_both(&block, &storage, 4);
    }

    #[test]
    fn aborted_transactions_write_nothing() {
        let storage = storage_with_keys(3);
        let block: Vec<_> = (0..40)
            .map(|i| SyntheticTransaction::increment(i % 3).with_abort_divisor(4))
            .collect();
        run_both(&block, &storage, 4);
    }

    #[test]
    fn single_thread_execution_works() {
        let storage = storage_with_keys(2);
        let block: Vec<_> = (0..20)
            .map(|i| SyntheticTransaction::transfer(i % 2, (i + 1) % 2, i))
            .collect();
        run_both(&block, &storage, 1);
    }

    #[test]
    fn mismatched_write_set_length_is_a_typed_error() {
        let storage = storage_with_keys(1);
        let block = vec![SyntheticTransaction::put(0, 1)];
        let bohm = BohmExecutor::new(Vm::for_testing(), 2);
        let err = bohm
            .execute_with_write_sets(&block, &[], &storage)
            .unwrap_err();
        assert_eq!(
            err,
            ExecutionError::WriteSetMismatch {
                block_len: 1,
                write_sets_len: 0
            }
        );
    }

    #[test]
    fn missing_declared_write_set_is_a_typed_error() {
        use block_stm_vm::{ExecutionFailure, TransactionContext};

        /// A transaction model that cannot declare write-sets.
        struct Opaque;
        impl Transaction for Opaque {
            type Key = u64;
            type Value = u64;
            fn execute<R: StateReader<u64, u64>>(
                &self,
                ctx: &mut TransactionContext<'_, u64, u64, R>,
            ) -> Result<(), ExecutionFailure> {
                ctx.write(0, 1);
                Ok(())
            }
        }

        let storage: InMemoryStorage<u64, u64> = storage_with_keys(1);
        let bohm = BohmExecutor::new(Vm::for_testing(), 2);
        let err = bohm.execute_block(&[Opaque], &storage).unwrap_err();
        assert_eq!(err, ExecutionError::MissingWriteSet { txn_idx: 0 });
    }

    #[test]
    fn undeclared_write_is_a_typed_error_not_a_silent_drop() {
        use block_stm_vm::{ExecutionFailure, TransactionContext};

        /// Declares only key 0 but also writes key 1 — an under-approximated
        /// write-set, which Bohm must reject rather than silently drop.
        struct UnderDeclared;
        impl Transaction for UnderDeclared {
            type Key = u64;
            type Value = u64;
            fn execute<R: StateReader<u64, u64>>(
                &self,
                ctx: &mut TransactionContext<'_, u64, u64, R>,
            ) -> Result<(), ExecutionFailure> {
                ctx.write(0, 1);
                ctx.write(1, 1);
                Ok(())
            }
            fn access_hints(&self) -> Option<block_stm_vm::AccessHints<u64>> {
                Some(block_stm_vm::AccessHints::exact(vec![], vec![0]))
            }
        }

        let storage: InMemoryStorage<u64, u64> = storage_with_keys(2);
        let bohm = BohmExecutor::new(Vm::for_testing(), 2);
        let err = bohm.execute_block(&[UnderDeclared], &storage).unwrap_err();
        assert_eq!(err, ExecutionError::UndeclaredWrite { txn_idx: 0 });
    }

    #[test]
    fn advisory_hints_are_a_typed_error() {
        use block_stm_vm::{ExecutionFailure, HintedTransaction, TransactionContext};

        /// Declares hints but refuses the exactness guarantee.
        struct Advisory;
        impl Transaction for Advisory {
            type Key = u64;
            type Value = u64;
            fn execute<R: StateReader<u64, u64>>(
                &self,
                ctx: &mut TransactionContext<'_, u64, u64, R>,
            ) -> Result<(), ExecutionFailure> {
                ctx.write(0, 1);
                Ok(())
            }
            fn access_hints(&self) -> Option<block_stm_vm::AccessHints<u64>> {
                Some(block_stm_vm::AccessHints::advisory(vec![], vec![0]))
            }
        }

        let storage: InMemoryStorage<u64, u64> = storage_with_keys(1);
        let bohm = BohmExecutor::new(Vm::for_testing(), 2);
        let err = bohm.execute_block(&[Advisory], &storage).unwrap_err();
        assert_eq!(err, ExecutionError::InexactHints { txn_idx: 0 });

        // The same applies when an exact-hinted model is wrapped with degraded
        // advisory hints — the wrapper's hints win.
        let wrapped = vec![HintedTransaction::new(
            SyntheticTransaction::put(0, 1),
            Some(block_stm_vm::AccessHints::advisory(vec![], vec![0])),
        )];
        let err = bohm.execute_block(&wrapped, &storage).unwrap_err();
        assert_eq!(err, ExecutionError::InexactHints { txn_idx: 0 });
    }

    #[test]
    fn panicking_transaction_is_a_typed_error_not_a_hang() {
        use block_stm_vm::{ExecutionFailure, TransactionContext};

        /// Writes key 0; panics for one index. Other transactions *read* key 0, so
        /// without the halt flag they would block forever on the dead writer's slot.
        struct MaybePanic {
            idx: u64,
            panic_at: u64,
        }
        impl Transaction for MaybePanic {
            type Key = u64;
            type Value = u64;
            fn execute<R: StateReader<u64, u64>>(
                &self,
                ctx: &mut TransactionContext<'_, u64, u64, R>,
            ) -> Result<(), ExecutionFailure> {
                if self.idx == self.panic_at {
                    panic!("bohm txn panicked");
                }
                let prev = ctx.read(&0)?.unwrap_or(0);
                ctx.write(0, prev + 1);
                Ok(())
            }
            fn access_hints(&self) -> Option<block_stm_vm::AccessHints<u64>> {
                Some(block_stm_vm::AccessHints::exact(vec![0], vec![0]))
            }
        }

        let storage: InMemoryStorage<u64, u64> = storage_with_keys(1);
        let bohm = BohmExecutor::new(Vm::for_testing(), 4);
        let block: Vec<_> = (0..12).map(|idx| MaybePanic { idx, panic_at: 3 }).collect();
        let err = bohm.execute_block(&block, &storage).unwrap_err();
        match err {
            ExecutionError::WorkerPanic { detail, .. } => {
                assert!(detail.contains("bohm txn panicked"), "detail: {detail}");
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }
}
