//! Baseline execution engines the Block-STM paper compares against (§4.1 and §5).
//!
//! * [`BohmExecutor`] — a reimplementation of the **Bohm** [Faleiro & Abadi, VLDB'15]
//!   execution strategy as the paper uses it: the engine is *given perfect write-sets*
//!   for every transaction, pre-builds a multi-version structure of placeholder
//!   entries, and then executes transactions in parallel, blocking a read until the
//!   placeholder it depends on is filled. No aborts, no validations — but it needs
//!   knowledge Block-STM does not assume.
//! * [`LitmExecutor`] — a reimplementation of the **LiTM** [Xia et al., PMAM'19]
//!   deterministic STM strategy as described in §5: execute all remaining transactions
//!   from the committed state, commit a maximal independent set (greedy in index
//!   order), repeat until the block is exhausted. Cheap under low conflict, wasteful
//!   under contention.
//!
//! Both engines implement the workspace-wide
//! [`BlockExecutor`](block_stm::BlockExecutor) trait, so the benchmark harness, the
//! conformance suite and the examples drive them exactly like the Block-STM and
//! sequential engines. Worker panics surface as typed
//! [`ExecutionError`](block_stm::ExecutionError)s, never as hangs or unwinds.
//!
//! Note on semantics: Bohm and the sequential/Block-STM engines commit the state of
//! the *preset order*; LiTM, by design, commits a different (but deterministic)
//! serialization — the integration tests therefore check LiTM for determinism and
//! serializability rather than byte-equality with the sequential output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bohm;
pub mod litm;

pub use bohm::BohmExecutor;
pub use litm::LitmExecutor;
