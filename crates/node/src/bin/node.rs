//! The node binary: replay an account-model workload against a running
//! [`Node`] as open-loop traffic and report what happened.
//!
//! Transactions are generated up front (nonce-consecutive per sender), given
//! arrival offsets by a deterministic [`ArrivalProcess`], and submitted when
//! the wall clock reaches each offset. A full mempool is backpressure, not
//! loss: the driver retries until admitted (counting the retries), because
//! dropping a transaction would leave a nonce gap that aborts every later
//! transaction from the same sender.
//!
//! ```text
//! node [--workload eth|erc20] [--accounts N] [--txns N]
//!      [--arrival fixed:<tps>|burst:<size>:<interval_ms>]
//!      [--threads N] [--block-txns N] [--max-wait-ms N] [--mempool N]
//!      [--engine chained|adaptive] [--snapshot-ms N]
//! ```
//!
//! Exit status is non-zero if any transaction failed to commit exactly once
//! or the conservation oracle rejects the committed stream.

use block_stm::Vm;
use block_stm_node::{EngineMode, Node, NodeError};
use block_stm_storage::{AccessPath, InMemoryStorage, StateValue};
use block_stm_vm::Transaction;
use block_stm_workloads::accounts::AccountTransaction;
use block_stm_workloads::{ArrivalProcess, ConservationOracle, Erc20Workload, EthTransferWorkload};
use std::time::{Duration, Instant};

struct Options {
    workload: String,
    accounts: u64,
    txns: usize,
    arrival: ArrivalProcess,
    threads: Option<usize>,
    block_txns: usize,
    max_wait: Duration,
    mempool: usize,
    engine: EngineMode,
    snapshot_every: Option<Duration>,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            workload: "eth".into(),
            accounts: 1024,
            txns: 20_000,
            arrival: ArrivalProcess::FixedRate { tps: 50_000 },
            threads: None,
            block_txns: 512,
            max_wait: Duration::from_millis(10),
            mempool: 8192,
            engine: EngineMode::Chained,
            snapshot_every: Some(Duration::from_secs(1)),
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: node [--workload eth|erc20] [--accounts N] [--txns N] \
         [--arrival fixed:<tps>|burst:<size>:<interval_ms>] [--threads N] \
         [--block-txns N] [--max-wait-ms N] [--mempool N] \
         [--engine chained|adaptive] [--snapshot-ms N|--no-snapshots]"
    );
    std::process::exit(2);
}

fn parse_arrival(spec: &str) -> Option<ArrivalProcess> {
    let mut parts = spec.split(':');
    match parts.next()? {
        "fixed" => Some(ArrivalProcess::FixedRate {
            tps: parts.next()?.parse().ok()?,
        }),
        "burst" => Some(ArrivalProcess::Bursty {
            burst_size: parts.next()?.parse().ok()?,
            burst_interval: Duration::from_millis(parts.next()?.parse().ok()?),
        }),
        _ => None,
    }
}

fn parse_options() -> Options {
    let mut options = Options::default();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let value = |args: &mut dyn Iterator<Item = String>| -> String {
            args.next().unwrap_or_else(|| usage())
        };
        match flag.as_str() {
            "--workload" => options.workload = value(&mut args),
            "--accounts" => options.accounts = value(&mut args).parse().unwrap_or_else(|_| usage()),
            "--txns" => options.txns = value(&mut args).parse().unwrap_or_else(|_| usage()),
            "--arrival" => {
                options.arrival = parse_arrival(&value(&mut args)).unwrap_or_else(|| usage())
            }
            "--threads" => {
                options.threads = Some(value(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--block-txns" => {
                options.block_txns = value(&mut args).parse().unwrap_or_else(|_| usage())
            }
            "--max-wait-ms" => {
                options.max_wait =
                    Duration::from_millis(value(&mut args).parse().unwrap_or_else(|_| usage()))
            }
            "--mempool" => options.mempool = value(&mut args).parse().unwrap_or_else(|_| usage()),
            "--engine" => {
                options.engine = match value(&mut args).as_str() {
                    "chained" => EngineMode::Chained,
                    "adaptive" => EngineMode::Adaptive,
                    _ => usage(),
                }
            }
            "--snapshot-ms" => {
                options.snapshot_every = Some(Duration::from_millis(
                    value(&mut args).parse().unwrap_or_else(|_| usage()),
                ))
            }
            "--no-snapshots" => options.snapshot_every = None,
            _ => usage(),
        }
    }
    options
}

/// Drives the node with the generated transactions on the arrival schedule,
/// shuts it down, audits the result, and returns the process exit code.
fn run<T>(
    options: &Options,
    genesis: InMemoryStorage<AccessPath, StateValue>,
    txns: Vec<T>,
    oracle: ConservationOracle,
) -> i32
where
    T: Transaction<Key = AccessPath, Value = StateValue> + AccountTransaction + Clone + 'static,
{
    let mut builder = Node::builder(Vm::for_testing(), genesis.clone())
        .mempool_capacity(options.mempool)
        .max_block_txns(options.block_txns)
        .max_wait(options.max_wait)
        .engine(options.engine);
    if let Some(threads) = options.threads {
        builder = builder.concurrency(threads);
    }
    if let Some(every) = options.snapshot_every {
        builder = builder.snapshot_every(every);
    }
    let node = match builder.start() {
        Ok(node) => node,
        Err(err) => {
            eprintln!("node failed to start: {err}");
            return 1;
        }
    };

    let handle = node.handle();
    let schedule = options.arrival.schedule(txns.len());
    let start = Instant::now();
    let mut full_retries = 0u64;
    for (txn, offset) in txns.into_iter().zip(schedule) {
        if let Some(wait) = offset.checked_sub(start.elapsed()) {
            std::thread::sleep(wait);
        }
        loop {
            match handle.submit(txn.clone()) {
                Ok(_) => break,
                Err(NodeError::MempoolFull { .. }) => {
                    // Backpressure: never drop (nonce gaps poison the rest of
                    // the sender's stream), retry until the former drains.
                    full_retries += 1;
                    std::thread::sleep(Duration::from_micros(50));
                }
                Err(err) => {
                    eprintln!("submission failed: {err}");
                    return 1;
                }
            }
        }
    }

    let report = match node.shutdown() {
        Ok(report) => report,
        Err(err) => {
            eprintln!("shutdown failed: {err}");
            return 1;
        }
    };

    println!("{}", report.snapshot.to_json());
    let wall = start.elapsed();
    println!(
        "# committed {} txns in {} blocks over {:.3}s ({:.0} tps), {} full-mempool retries",
        report.snapshot.committed_txns,
        report.snapshot.formed_blocks,
        wall.as_secs_f64(),
        report.snapshot.committed_txns as f64 / wall.as_secs_f64(),
        full_retries,
    );

    if !report.committed_exactly_once() {
        eprintln!("FAIL: commit audit: not every transaction committed exactly once");
        return 1;
    }
    // Re-judge the committed stream block by block against the evolving
    // pre-state, exactly as the conformance tests do.
    let mut pre = genesis;
    for (block, output) in report.blocks.iter().zip(&report.outputs) {
        if let Err(err) = oracle.check(&pre, block, &output.updates, &output.outputs) {
            eprintln!("FAIL: conservation oracle: {err}");
            return 1;
        }
        pre.apply_updates(output.updates.iter().cloned());
    }
    println!(
        "# conservation oracle passed on {} blocks",
        report.outputs.len()
    );
    0
}

fn main() {
    let options = parse_options();
    let code = match options.workload.as_str() {
        "eth" => {
            let workload = EthTransferWorkload::new(options.accounts, options.txns);
            let (genesis, txns) = workload.generate();
            let oracle = ConservationOracle::new().with_beneficiary(workload.beneficiary());
            run(&options, genesis, txns, oracle)
        }
        "erc20" => {
            let workload = Erc20Workload::new(options.accounts, options.txns);
            let (genesis, txns) = workload.generate();
            let oracle = ConservationOracle::new()
                .with_beneficiary(workload.beneficiary())
                .with_token(workload.token);
            run(&options, genesis, txns, oracle)
        }
        _ => usage(),
    };
    std::process::exit(code);
}
