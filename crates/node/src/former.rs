//! The block former: cuts the mempool's FIFO prefix into blocks.
//!
//! A block is cut when any of three conditions holds:
//!
//! 1. **Count**: the queue holds at least `max_block_txns` transactions.
//! 2. **Age**: the oldest queued transaction has waited at least `max_wait` —
//!    the latency bound for lightly loaded nodes (a lone transaction never
//!    waits for a full block).
//! 3. **Drain**: the mempool is closed — shutdown flushes whatever is queued.
//!
//! An optional [`BlockLimiter`] (in practice [`BlockGasLimit`]) additionally
//! caps each block by *estimated* gas: the former feeds the limiter a
//! synthetic output carrying the estimator's gas guess per transaction, so a
//! cut block is exactly the prefix a gas-limited engine would have admitted
//! at those estimates. The first transaction of a block is always included
//! even if its estimate alone busts the budget — otherwise an expensive
//! transaction at the queue head would stall the node forever.
//!
//! The former never produces an empty block: an empty queue yields
//! [`FormOutcome::NotYet`] (or [`FormOutcome::Drained`] once closed).
//!
//! [`BlockGasLimit`]: block_stm::BlockGasLimit

use crate::mempool::Mempool;
use block_stm::{BlockLimiter, Transaction};
use block_stm_vm::TransactionOutput;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Estimates a transaction's gas before execution (used only for forming-time
/// gas cuts; the engine still meters real gas).
pub type GasEstimator<T> = Arc<dyn Fn(&T) -> u64 + Send + Sync>;

/// A block cut from the mempool, with the bookkeeping the node needs to
/// account for each transaction after commit.
pub(crate) struct FormedBlock<T> {
    pub txns: Vec<T>,
    pub ids: Vec<u64>,
    pub arrivals: Vec<Instant>,
}

/// What one forming attempt produced.
pub(crate) enum FormOutcome<T> {
    /// A non-empty block was cut.
    Formed(FormedBlock<T>),
    /// Nothing is due yet — poll again later.
    NotYet,
    /// The mempool is closed and empty: the stream has ended.
    Drained,
}

/// Cut policy shared by the node's execution loop. See the module docs for
/// the cut rule.
pub(crate) struct BlockFormer<T: Transaction> {
    pub max_block_txns: usize,
    pub max_wait: Duration,
    pub limiter: Option<Arc<dyn BlockLimiter<T::Key, T::Value>>>,
    pub estimator: GasEstimator<T>,
}

impl<T: Transaction> BlockFormer<T> {
    /// Attempts to cut one block at time `now`.
    pub fn try_form(&self, mempool: &Mempool<T>, now: Instant) -> FormOutcome<T> {
        let mut state = mempool.lock();
        let Some(oldest) = state.queue.front() else {
            return if state.closed {
                FormOutcome::Drained
            } else {
                FormOutcome::NotYet
            };
        };
        let due = state.closed
            || state.queue.len() >= self.max_block_txns
            || now.saturating_duration_since(oldest.arrived) >= self.max_wait;
        if !due {
            return FormOutcome::NotYet;
        }

        let candidates = state.queue.len().min(self.max_block_txns);
        if let Some(limiter) = &self.limiter {
            limiter.begin_block(candidates);
        }
        let mut txns = Vec::with_capacity(candidates);
        let mut ids = Vec::with_capacity(candidates);
        let mut arrivals = Vec::with_capacity(candidates);
        while txns.len() < candidates {
            let front = state.queue.front().expect("candidates bounded by len");
            let mut closes_block = false;
            if let Some(limiter) = &self.limiter {
                let mut estimate = TransactionOutput::<T::Key, T::Value>::empty();
                estimate.gas_used = (self.estimator)(&front.txn);
                if !limiter.include_next(txns.len(), &estimate) {
                    if !txns.is_empty() {
                        break;
                    }
                    // Anti-livelock: the block's first transaction is admitted
                    // even over budget (see module docs) — but it exhausts the
                    // block by itself.
                    closes_block = true;
                }
            }
            let pending = state.queue.pop_front().expect("front checked above");
            txns.push(pending.txn);
            ids.push(pending.id);
            arrivals.push(pending.arrived);
            if closes_block {
                break;
            }
        }
        FormOutcome::Formed(FormedBlock {
            txns,
            ids,
            arrivals,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use block_stm::BlockGasLimit;
    use block_stm_vm::synthetic::SyntheticTransaction;

    fn former(
        max_block_txns: usize,
        max_wait: Duration,
        budget: Option<u64>,
        estimate: u64,
    ) -> BlockFormer<SyntheticTransaction> {
        BlockFormer {
            max_block_txns,
            max_wait,
            limiter: budget
                .map(|b| Arc::new(BlockGasLimit::new(b)) as Arc<dyn BlockLimiter<u64, u64>>),
            estimator: Arc::new(move |_| estimate),
        }
    }

    fn noop_txn() -> SyntheticTransaction {
        SyntheticTransaction::put(0, 0)
    }

    #[test]
    fn empty_mempool_never_forms_a_block() {
        let mempool = Mempool::new(16);
        let former = former(4, Duration::ZERO, None, 0);
        assert!(matches!(
            former.try_form(&mempool, Instant::now()),
            FormOutcome::NotYet
        ));
        mempool.close();
        assert!(matches!(
            former.try_form(&mempool, Instant::now()),
            FormOutcome::Drained
        ));
    }

    #[test]
    fn count_cut_takes_exactly_max_block_txns() {
        let mempool = Mempool::new(16);
        for _ in 0..6 {
            mempool.submit(noop_txn()).unwrap();
        }
        let former = former(4, Duration::from_secs(3600), None, 0);
        match former.try_form(&mempool, Instant::now()) {
            FormOutcome::Formed(block) => {
                assert_eq!(block.ids, vec![0, 1, 2, 3]);
            }
            _ => panic!("count cut expected"),
        }
        // Two remain, below the count threshold and younger than max_wait.
        assert!(matches!(
            former.try_form(&mempool, Instant::now()),
            FormOutcome::NotYet
        ));
    }

    #[test]
    fn age_cut_fires_for_a_single_transaction() {
        let mempool = Mempool::new(16);
        mempool.submit(noop_txn()).unwrap();
        let former = former(1024, Duration::from_millis(1), None, 0);
        let later = Instant::now() + Duration::from_millis(5);
        match former.try_form(&mempool, later) {
            FormOutcome::Formed(block) => assert_eq!(block.txns.len(), 1),
            _ => panic!("age cut expected"),
        }
    }

    #[test]
    fn gas_cut_bounds_the_block_but_admits_the_first_transaction() {
        let mempool = Mempool::new(16);
        for _ in 0..8 {
            mempool.submit(noop_txn()).unwrap();
        }
        // Budget 25 at 10 gas each: txns 0 and 1 fit (20), txn 2 busts it.
        let capped = former(8, Duration::ZERO, Some(25), 10);
        match capped.try_form(&mempool, Instant::now()) {
            FormOutcome::Formed(block) => assert_eq!(block.ids, vec![0, 1]),
            _ => panic!("gas cut expected"),
        }
        // A budget smaller than any single estimate still forms singletons.
        let tight = former(8, Duration::ZERO, Some(5), 10);
        match tight.try_form(&mempool, Instant::now()) {
            FormOutcome::Formed(block) => assert_eq!(block.ids, vec![2]),
            _ => panic!("singleton expected"),
        }
    }
}
