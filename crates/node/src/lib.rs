//! Run the Block-STM engine as a *service*: a long-lived node that ingests
//! transactions continuously instead of executing pre-formed blocks.
//!
//! The paper evaluates Block-STM on fixed blocks; a deployment (Diem/Aptos
//! style) wraps the engine in exactly three more pieces, which this crate
//! provides:
//!
//! * a bounded **mempool** ([`NodeError::MempoolFull`] backpressure, FIFO
//!   admission, per-transaction arrival timestamps),
//! * a **block former** that cuts the queue into blocks by transaction count,
//!   age of the oldest waiter, or estimated gas (reusing the engine's
//!   [`BlockGasLimit`](block_stm::BlockGasLimit) accounting), and
//! * a **continuous execution loop**: one
//!   [`ChainExecutor::execute_stream`](block_stm::ChainExecutor::execute_stream)
//!   dispatch whose block source *is* the former, so forming the next block
//!   overlaps with executing the current one and freshly cut blocks enter the
//!   chain's cross-block run-ahead pipeline directly.
//!
//! Observation is first-class: the node keeps ingest→formed and
//! ingest→committed latency histograms
//! ([`LatencyHistogram`](block_stm_metrics::LatencyHistogram)), engine
//! metrics, and counters, all frozen into a JSON-stable [`NodeSnapshot`] —
//! dumped periodically if configured, and always in the final [`NodeReport`]
//! together with a per-transaction exactly-once commit audit.
//!
//! # Shutdown ordering
//!
//! [`Node::shutdown`] is close → drain → flush → report, and the order is
//! load-bearing: closing first bounds the drain; joining the executor *is*
//! the drain barrier (the former reports end-of-stream only once the closed
//! mempool is empty); and the durability flush runs only after the join, so
//! its watermark audit compares against a complete committed count —
//! flushing earlier could misread a healthy sink as stalled (or worse, a
//! stalled sink as healthy). The full argument is in the
//! [`service`](self) module docs.
//!
//! ```
//! use block_stm::Vm;
//! use block_stm_node::Node;
//! use block_stm_workloads::EthTransferWorkload;
//!
//! // 64 accounts, 256 nonce-consecutive transfers to replay as traffic.
//! let workload = EthTransferWorkload::new(64, 256);
//! let (genesis, txns) = workload.generate();
//!
//! let node = Node::builder(Vm::for_testing(), genesis)
//!     .concurrency(2)
//!     .max_block_txns(64)
//!     .start()
//!     .expect("node starts");
//! let handle = node.handle();
//! for txn in txns {
//!     handle.submit(txn).expect("mempool sized for the workload");
//! }
//! let report = node.shutdown().expect("clean drain");
//! assert_eq!(report.snapshot.committed_txns, 256);
//! assert!(report.committed_exactly_once());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod former;
mod mempool;
mod service;

pub use former::GasEstimator;
pub use mempool::SubmitError;
pub use service::{
    DurabilitySink, EngineMode, Node, NodeBuilder, NodeError, NodeHandle, NodeReport, NodeSnapshot,
    SnapshotCallback,
};
