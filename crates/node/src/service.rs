//! The node service: wiring mempool → block former → chained execution.
//!
//! A [`Node`] owns three cooperating pieces:
//!
//! * the bounded [`Mempool`](crate::mempool) that producers submit into,
//! * a [`BlockFormer`](crate::former) cut policy (count / age / gas), and
//! * an executor thread that runs the formed blocks continuously.
//!
//! In the default [`EngineMode::Chained`] the executor thread makes a single
//! [`ChainExecutor::execute_stream`] dispatch whose [`BlockSource`] *is* the
//! block former: idle engine workers poll the source, so block formation and
//! execution overlap and a block cut while block `k` executes becomes block
//! `k+1`'s run-ahead work. Commit sinks (including a durability sink) stream
//! the committed prefix in preset order exactly as in a one-shot chain
//! dispatch. [`EngineMode::Adaptive`] instead runs each formed block through
//! an [`AdaptiveExecutor`] with a barrier between blocks — per-block engine
//! selection, but no cross-block pipelining and no commit sinks.
//!
//! # Shutdown and drain ordering
//!
//! [`Node::shutdown`] performs, strictly in this order:
//!
//! 1. **Close** the mempool: new submissions fail with
//!    [`NodeError::MempoolClosed`]; queued transactions stay.
//! 2. **Drain**: closing makes every subsequent forming attempt due, so the
//!    former cuts the remaining queue into final blocks and then reports
//!    [`BlockFeed::End`]. The executor returns once every formed block has
//!    committed; joining it is therefore the drain barrier.
//! 3. **Flush** durability: only after the engine returned is the committed
//!    stream complete, so the durability barrier's watermark can be compared
//!    against the number of committed transactions. A sink whose persister
//!    died mid-run acks the flush without advancing the watermark — the
//!    comparison turns that silent data loss into [`NodeError::SinkStalled`].
//! 4. **Report**: counters, histograms and per-transaction commit counts are
//!    frozen into the final [`NodeReport`].
//!
//! Steps 2 and 3 cannot be swapped: flushing before the engine returns would
//! race the flush barrier against in-flight commit deliveries and could
//! misdiagnose a healthy sink as stalled. Step 1 must precede step 2 or the
//! drain would never terminate under sustained load.
//!
//! [`BlockFeed::End`]: block_stm::BlockFeed::End
//! [`BlockSource`]: block_stm::BlockSource
//! [`ChainExecutor::execute_stream`]: block_stm::ChainExecutor::execute_stream

use crate::former::{BlockFormer, FormOutcome, FormedBlock, GasEstimator};
use crate::mempool::{Mempool, SubmitError};
use block_stm::{
    AdaptiveExecutor, BlockFeed, BlockGasLimit, BlockLimiter, BlockOutput, BlockSource,
    BlockStmBuilder, CommitEvent, CommitSink, ExecutionError, MetricsSnapshot, Transaction, Vm,
};
use block_stm_metrics::{LatencyHistogram, LatencySummary};
use block_stm_persist::{PersistCodec, SyncPersistSink, WriteBehindSink};
use block_stm_storage::InMemoryStorage;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt;
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long the adaptive executor thread sleeps between forming attempts when
/// nothing is due (the chained engine instead backs off inside its worker
/// loop, so it needs no poll interval here).
const IDLE_POLL: Duration = Duration::from_micros(200);

fn micros(duration: Duration) -> u64 {
    duration.as_micros().min(u64::MAX as u128) as u64
}

/// Which execution engine the node's executor thread drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineMode {
    /// One [`ChainExecutor`](block_stm::ChainExecutor) stream dispatch:
    /// cross-block pipelining, commit sinks and durability supported.
    Chained,
    /// Per-block [`AdaptiveExecutor`] dispatch with barriers between blocks:
    /// adaptive engine selection, but no sinks (the adaptive executor has no
    /// commit-streaming surface), so durability cannot be attached.
    Adaptive,
}

/// Errors surfaced by the node API.
#[derive(Debug)]
pub enum NodeError {
    /// The mempool is at capacity; the submission was rejected, not queued.
    MempoolFull {
        /// The configured capacity bound.
        capacity: usize,
    },
    /// The node is shutting down; no new submissions are accepted.
    MempoolClosed,
    /// The node was configured inconsistently (e.g. sinks on the adaptive
    /// engine).
    Config {
        /// What was wrong.
        detail: String,
    },
    /// The execution engine failed.
    Execution(ExecutionError),
    /// The durability sink reported an I/O failure.
    Durability {
        /// The underlying persistence error.
        detail: String,
    },
    /// The durability sink acknowledged the final flush but its watermark
    /// covers fewer commit events than the node delivered: the background
    /// persister died mid-run and data past the watermark was lost.
    SinkStalled {
        /// Commit events the sink made durable (net of the pre-existing
        /// watermark at node start).
        durable_events: u64,
        /// Commit events the node delivered to sinks.
        committed_events: u64,
    },
    /// An internal invariant failed (e.g. the executor thread panicked).
    Internal {
        /// What failed.
        detail: String,
    },
}

impl fmt::Display for NodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NodeError::MempoolFull { capacity } => {
                write!(f, "mempool full (capacity {capacity})")
            }
            NodeError::MempoolClosed => write!(f, "mempool closed"),
            NodeError::Config { detail } => write!(f, "invalid node configuration: {detail}"),
            NodeError::Execution(err) => write!(f, "execution failed: {err}"),
            NodeError::Durability { detail } => write!(f, "durability failure: {detail}"),
            NodeError::SinkStalled {
                durable_events,
                committed_events,
            } => write!(
                f,
                "durability sink stalled: {durable_events} of {committed_events} \
                 committed events durable"
            ),
            NodeError::Internal { detail } => write!(f, "internal node error: {detail}"),
        }
    }
}

impl std::error::Error for NodeError {}

/// A [`CommitSink`] that additionally offers a durability barrier, so the
/// node can verify at shutdown that everything it committed is on disk.
pub trait DurabilitySink<K, V>: CommitSink<K, V> {
    /// Blocks until every commit event delivered so far is durable and
    /// returns the sink's cumulative durable watermark (in commit events).
    fn flush_durable(&self) -> Result<u64, String>;
}

impl<K, V> DurabilitySink<K, V> for WriteBehindSink<K, V>
where
    K: PersistCodec + Eq + Hash + Clone + Send + Sync + 'static,
    V: PersistCodec + Clone + Send + Sync + 'static,
{
    fn flush_durable(&self) -> Result<u64, String> {
        self.flush().map_err(|err| err.to_string())
    }
}

impl<K, V> DurabilitySink<K, V> for SyncPersistSink<K, V>
where
    K: PersistCodec + Eq + Hash + Clone + Send + Sync + 'static,
    V: PersistCodec + Clone + Send + Sync + 'static,
{
    fn flush_durable(&self) -> Result<u64, String> {
        self.flush().map_err(|err| err.to_string())
    }
}

/// Adapter: attaches a [`DurabilitySink`] to the engine's commit-sink chain.
struct ForwardSink<K, V>(Arc<dyn DurabilitySink<K, V>>);

impl<K, V> CommitSink<K, V> for ForwardSink<K, V> {
    fn begin_block(&self, block_size: usize) {
        self.0.begin_block(block_size);
    }

    fn on_commit(&self, event: &CommitEvent<'_, K, V>) {
        self.0.on_commit(event);
    }
}

/// A point-in-time view of the node's counters and latency distributions,
/// with a stable JSON encoding for dumps and baselines.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeSnapshot {
    /// Microseconds since the node started.
    pub uptime_us: u64,
    /// Transactions admitted into the mempool.
    pub submitted: u64,
    /// Submissions rejected because the mempool was at capacity.
    pub rejected_full: u64,
    /// Transactions currently queued in the mempool.
    pub mempool_depth: u64,
    /// Blocks cut by the block former.
    pub formed_blocks: u64,
    /// Transactions across all formed blocks.
    pub formed_txns: u64,
    /// Transactions committed by the engine (delivered to sinks in chained
    /// mode; per-block output size in adaptive mode).
    pub committed_txns: u64,
    /// Ingest→formed latency distribution, microseconds.
    pub ingest_to_formed_us: LatencySummary,
    /// Ingest→committed latency distribution, microseconds.
    pub ingest_to_committed_us: LatencySummary,
    /// Engine metrics. Live per-block in adaptive mode; in chained mode the
    /// stream dispatch reports once at completion, so mid-run dumps show the
    /// previous dispatch (zeros before the first completes).
    pub engine: MetricsSnapshot,
}

impl NodeSnapshot {
    /// Serializes to the stable JSON form (same encoder the engine baselines
    /// use).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("NodeSnapshot serialization is infallible")
    }

    /// Parses a snapshot from [`Self::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// The final accounting returned by [`Node::shutdown`].
pub struct NodeReport<T: Transaction> {
    /// The node's final counters and latency distributions.
    pub snapshot: NodeSnapshot,
    /// Every formed block, in stream order (empty when block retention was
    /// disabled via [`NodeBuilder::retain_blocks`]).
    pub blocks: Vec<Vec<T>>,
    /// Per-block engine outputs, index-aligned with `blocks`.
    pub outputs: Vec<BlockOutput<T::Key, T::Value>>,
    /// Net committed state updates across the whole run, sorted by key.
    pub updates: Vec<(T::Key, T::Value)>,
    /// `(submit_id, times_committed)` sorted by id — the exactly-once audit
    /// trail (chained mode counts sink deliveries; adaptive counts per-block
    /// outputs).
    pub commit_counts: Vec<(u64, u64)>,
    /// The durability sink's final watermark, if one was attached.
    pub durable_watermark: Option<u64>,
}

impl<T: Transaction> NodeReport<T> {
    /// Whether every submitted transaction committed exactly once: the audit
    /// trail covers the dense id range `0..submitted` with every count 1.
    pub fn committed_exactly_once(&self) -> bool {
        self.commit_counts.len() as u64 == self.snapshot.submitted
            && self
                .commit_counts
                .iter()
                .enumerate()
                .all(|(index, (id, count))| *id == index as u64 && *count == 1)
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected_full: AtomicU64,
    formed_blocks: AtomicU64,
    formed_txns: AtomicU64,
    committed_txns: AtomicU64,
}

/// Per-block bookkeeping handed from the former to the commit sink.
struct BlockMeta {
    ids: Vec<u64>,
    arrivals: Vec<Instant>,
}

struct NodeShared<T: Transaction> {
    mempool: Mempool<T>,
    counters: Counters,
    started: Instant,
    ingest_to_formed: Mutex<LatencyHistogram>,
    ingest_to_committed: Mutex<LatencyHistogram>,
    engine_metrics: Mutex<MetricsSnapshot>,
    commit_counts: Mutex<HashMap<u64, u64>>,
    pending_meta: Mutex<VecDeque<BlockMeta>>,
    formed_log: Mutex<Vec<Vec<T>>>,
    retain_blocks: bool,
    track_meta: bool,
}

impl<T: Transaction + Clone> NodeShared<T> {
    fn submit(&self, txn: T) -> Result<u64, NodeError> {
        match self.mempool.submit(txn) {
            Ok(id) => {
                self.counters.submitted.fetch_add(1, Ordering::Relaxed);
                // `or_insert` (not `insert`): the block former may race ahead
                // and commit this id before we get here — never clobber a
                // recorded commit back to zero.
                self.commit_counts.lock().entry(id).or_insert(0);
                Ok(id)
            }
            Err(SubmitError::Full { capacity }) => {
                self.counters.rejected_full.fetch_add(1, Ordering::Relaxed);
                Err(NodeError::MempoolFull { capacity })
            }
            Err(SubmitError::Closed) => Err(NodeError::MempoolClosed),
        }
    }

    fn note_formed(&self, block: &FormedBlock<T>) {
        self.counters.formed_blocks.fetch_add(1, Ordering::Relaxed);
        self.counters
            .formed_txns
            .fetch_add(block.txns.len() as u64, Ordering::Relaxed);
        let now = Instant::now();
        {
            let mut histogram = self.ingest_to_formed.lock();
            for arrived in &block.arrivals {
                histogram.record(micros(now.saturating_duration_since(*arrived)));
            }
        }
        if self.track_meta {
            self.pending_meta.lock().push_back(BlockMeta {
                ids: block.ids.clone(),
                arrivals: block.arrivals.clone(),
            });
        }
        if self.retain_blocks {
            self.formed_log.lock().push(block.txns.clone());
        }
    }

    fn note_committed(&self, ids: &[u64], arrivals: &[Instant], done: Instant) {
        {
            let mut histogram = self.ingest_to_committed.lock();
            for arrived in arrivals {
                histogram.record(micros(done.saturating_duration_since(*arrived)));
            }
        }
        {
            let mut counts = self.commit_counts.lock();
            for id in ids {
                *counts.entry(*id).or_insert(0) += 1;
            }
        }
        self.counters
            .committed_txns
            .fetch_add(ids.len() as u64, Ordering::Relaxed);
    }

    fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            uptime_us: micros(self.started.elapsed()),
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            rejected_full: self.counters.rejected_full.load(Ordering::Relaxed),
            mempool_depth: self.mempool.len() as u64,
            formed_blocks: self.counters.formed_blocks.load(Ordering::Relaxed),
            formed_txns: self.counters.formed_txns.load(Ordering::Relaxed),
            committed_txns: self.counters.committed_txns.load(Ordering::Relaxed),
            ingest_to_formed_us: self.ingest_to_formed.lock().summary(),
            ingest_to_committed_us: self.ingest_to_committed.lock().summary(),
            engine: *self.engine_metrics.lock(),
        }
    }
}

/// The chained engine's [`BlockSource`]: every poll is a forming attempt.
struct ChainSource<T: Transaction> {
    shared: Arc<NodeShared<T>>,
    former: BlockFormer<T>,
}

impl<T: Transaction + Clone> BlockSource<T> for ChainSource<T> {
    fn next_block(&self) -> BlockFeed<T> {
        match self.former.try_form(&self.shared.mempool, Instant::now()) {
            FormOutcome::Formed(block) => {
                self.shared.note_formed(&block);
                BlockFeed::Ready(block.txns)
            }
            FormOutcome::NotYet => BlockFeed::Pending,
            FormOutcome::Drained => BlockFeed::End,
        }
    }
}

/// The node's own commit sink (chained mode): matches commit deliveries with
/// the per-block metadata queued at forming time, recording ingest→committed
/// latencies and the exactly-once audit counts.
struct LatencySink<T: Transaction> {
    shared: Arc<NodeShared<T>>,
    current: Mutex<Option<BlockMeta>>,
}

impl<T: Transaction + Clone> CommitSink<T::Key, T::Value> for LatencySink<T> {
    fn begin_block(&self, _block_size: usize) {
        // Blocks are announced to sinks strictly in stream order, so the
        // oldest queued metadata is this block's.
        let meta = self.shared.pending_meta.lock().pop_front();
        *self.current.lock() = meta;
    }

    fn on_commit(&self, event: &CommitEvent<'_, T::Key, T::Value>) {
        let now = Instant::now();
        let current = self.current.lock();
        if let Some(meta) = current.as_ref() {
            if let (Some(id), Some(arrived)) = (
                meta.ids.get(event.txn_idx),
                meta.arrivals.get(event.txn_idx),
            ) {
                self.shared.note_committed(
                    std::slice::from_ref(id),
                    std::slice::from_ref(arrived),
                    now,
                );
                return;
            }
        }
        // Metadata should always line up; count the commit even if it didn't.
        self.shared
            .counters
            .committed_txns
            .fetch_add(1, Ordering::Relaxed);
    }
}

struct ExecutionBundle<K, V> {
    outputs: Vec<BlockOutput<K, V>>,
    updates: Vec<(K, V)>,
    metrics: MetricsSnapshot,
}

type Outcome<T> =
    Result<ExecutionBundle<<T as Transaction>::Key, <T as Transaction>::Value>, ExecutionError>;

/// Callback invoked with each periodic snapshot.
pub type SnapshotCallback = Arc<dyn Fn(&NodeSnapshot) + Send + Sync>;

/// Configures and starts a [`Node`].
pub struct NodeBuilder<T: Transaction + Clone + 'static> {
    vm: Vm,
    storage: InMemoryStorage<T::Key, T::Value>,
    concurrency: Option<usize>,
    mempool_capacity: usize,
    max_block_txns: usize,
    max_wait: Duration,
    gas_budget: Option<u64>,
    estimator: GasEstimator<T>,
    engine: EngineMode,
    sinks: Vec<Arc<dyn CommitSink<T::Key, T::Value>>>,
    durability: Option<Arc<dyn DurabilitySink<T::Key, T::Value>>>,
    snapshot_every: Option<Duration>,
    on_snapshot: Option<SnapshotCallback>,
    retain_blocks: bool,
}

impl<T: Transaction + Clone + 'static> NodeBuilder<T> {
    /// Starts configuring a node that executes over `storage` with `vm`.
    pub fn new(vm: Vm, storage: InMemoryStorage<T::Key, T::Value>) -> Self {
        NodeBuilder {
            vm,
            storage,
            concurrency: None,
            mempool_capacity: 8192,
            max_block_txns: 512,
            max_wait: Duration::from_millis(10),
            gas_budget: None,
            estimator: Arc::new(|_| 1),
            engine: EngineMode::Chained,
            sinks: Vec::new(),
            durability: None,
            snapshot_every: None,
            on_snapshot: None,
            retain_blocks: true,
        }
    }

    /// Engine worker threads (defaults to the engine's own default).
    pub fn concurrency(mut self, concurrency: usize) -> Self {
        self.concurrency = Some(concurrency);
        self
    }

    /// Mempool capacity bound (submissions beyond it are rejected).
    pub fn mempool_capacity(mut self, capacity: usize) -> Self {
        self.mempool_capacity = capacity;
        self
    }

    /// The count cut: a block is formed once this many transactions queue.
    pub fn max_block_txns(mut self, txns: usize) -> Self {
        self.max_block_txns = txns.max(1);
        self
    }

    /// The age cut: a block is formed once the oldest queued transaction has
    /// waited this long, even if the block is otherwise small.
    pub fn max_wait(mut self, wait: Duration) -> Self {
        self.max_wait = wait;
        self
    }

    /// The gas cut: blocks are additionally capped by estimated gas, using
    /// `estimator` as the pre-execution gas guess per transaction.
    pub fn gas_budget(
        mut self,
        budget: u64,
        estimator: impl Fn(&T) -> u64 + Send + Sync + 'static,
    ) -> Self {
        self.gas_budget = Some(budget);
        self.estimator = Arc::new(estimator);
        self
    }

    /// Selects the execution engine (default [`EngineMode::Chained`]).
    pub fn engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Attaches a commit sink (chained mode only).
    pub fn commit_sink(mut self, sink: Arc<dyn CommitSink<T::Key, T::Value>>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Attaches a durability sink (chained mode only): it receives the
    /// committed stream like any sink, and shutdown runs its barrier and
    /// audits the watermark against the committed count.
    pub fn durability(mut self, sink: Arc<dyn DurabilitySink<T::Key, T::Value>>) -> Self {
        self.durability = Some(sink);
        self
    }

    /// Emits a [`NodeSnapshot`] every `every` (to `callback`, or as a JSON
    /// line on stdout if none is set).
    pub fn snapshot_every(mut self, every: Duration) -> Self {
        self.snapshot_every = Some(every);
        self
    }

    /// Overrides where periodic snapshots go.
    pub fn on_snapshot(mut self, callback: SnapshotCallback) -> Self {
        self.on_snapshot = Some(callback);
        self
    }

    /// Whether formed blocks are retained for the final report (default on;
    /// turn off for long soaks where the transaction log would dominate
    /// memory).
    pub fn retain_blocks(mut self, retain: bool) -> Self {
        self.retain_blocks = retain;
        self
    }

    /// Validates the configuration and starts the node's threads.
    pub fn start(self) -> Result<Node<T>, NodeError> {
        if self.engine == EngineMode::Adaptive && !self.sinks.is_empty() {
            return Err(NodeError::Config {
                detail: "commit sinks require the chained engine".into(),
            });
        }
        if self.engine == EngineMode::Adaptive && self.durability.is_some() {
            return Err(NodeError::Config {
                detail: "durability requires the chained engine".into(),
            });
        }

        let shared = Arc::new(NodeShared {
            mempool: Mempool::new(self.mempool_capacity),
            counters: Counters::default(),
            started: Instant::now(),
            ingest_to_formed: Mutex::new(LatencyHistogram::new()),
            ingest_to_committed: Mutex::new(LatencyHistogram::new()),
            engine_metrics: Mutex::new(MetricsSnapshot::default()),
            commit_counts: Mutex::new(HashMap::new()),
            pending_meta: Mutex::new(VecDeque::new()),
            formed_log: Mutex::new(Vec::new()),
            retain_blocks: self.retain_blocks,
            track_meta: self.engine == EngineMode::Chained,
        });

        // Baseline the watermark before any block commits: genesis ingestion
        // advances it too, and the shutdown stall audit must count only
        // events this node produced.
        let durable_baseline = match &self.durability {
            Some(sink) => sink
                .flush_durable()
                .map_err(|detail| NodeError::Durability { detail })?,
            None => 0,
        };

        let former = BlockFormer {
            max_block_txns: self.max_block_txns,
            max_wait: self.max_wait,
            limiter: self.gas_budget.map(|budget| {
                Arc::new(BlockGasLimit::new(budget)) as Arc<dyn BlockLimiter<T::Key, T::Value>>
            }),
            estimator: self.estimator,
        };

        let outcome: Arc<Mutex<Option<Outcome<T>>>> = Arc::new(Mutex::new(None));
        let executor = match self.engine {
            EngineMode::Chained => spawn_chained(
                self.vm,
                self.storage,
                self.concurrency,
                self.sinks,
                self.durability.clone(),
                shared.clone(),
                former,
                outcome.clone(),
            ),
            EngineMode::Adaptive => spawn_adaptive(
                self.vm,
                self.storage,
                self.concurrency,
                shared.clone(),
                former,
                outcome.clone(),
            ),
        }
        .map_err(|err| NodeError::Internal {
            detail: format!("failed to spawn executor thread: {err}"),
        })?;

        let monitor = self.snapshot_every.map(|every| {
            let stop = Arc::new(AtomicBool::new(false));
            let callback = self.on_snapshot.unwrap_or_else(|| {
                Arc::new(|snapshot: &NodeSnapshot| {
                    println!("{}", snapshot.to_json());
                })
            });
            let monitor_shared = shared.clone();
            let monitor_stop = stop.clone();
            let handle = std::thread::Builder::new()
                .name("block-stm-node-monitor".into())
                .spawn(move || {
                    while !monitor_stop.load(Ordering::Acquire) {
                        std::thread::park_timeout(every);
                        if monitor_stop.load(Ordering::Acquire) {
                            break;
                        }
                        callback(&monitor_shared.snapshot());
                    }
                })
                .expect("failed to spawn monitor thread");
            (stop, handle)
        });

        Ok(Node {
            shared,
            executor: Some(executor),
            monitor,
            outcome,
            durability: self.durability,
            durable_baseline,
        })
    }
}

#[allow(clippy::too_many_arguments)]
fn spawn_chained<T: Transaction + Clone + 'static>(
    vm: Vm,
    storage: InMemoryStorage<T::Key, T::Value>,
    concurrency: Option<usize>,
    sinks: Vec<Arc<dyn CommitSink<T::Key, T::Value>>>,
    durability: Option<Arc<dyn DurabilitySink<T::Key, T::Value>>>,
    shared: Arc<NodeShared<T>>,
    former: BlockFormer<T>,
    outcome: Arc<Mutex<Option<Outcome<T>>>>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("block-stm-node-executor".into())
        .spawn(move || {
            let mut builder = BlockStmBuilder::new(vm).rolling_commit(true);
            if let Some(concurrency) = concurrency {
                builder = builder.concurrency(concurrency);
            }
            builder = builder.commit_sink(Arc::new(LatencySink {
                shared: shared.clone(),
                current: Mutex::new(None),
            }) as Arc<dyn CommitSink<T::Key, T::Value>>);
            for sink in sinks {
                builder = builder.commit_sink(sink);
            }
            if let Some(durable) = durability {
                builder = builder.commit_sink(
                    Arc::new(ForwardSink(durable)) as Arc<dyn CommitSink<T::Key, T::Value>>
                );
            }
            let chain = builder.build_chain();
            let source = ChainSource {
                shared: shared.clone(),
                former,
            };
            let result = chain
                .execute_stream(&source, &storage)
                .map(|output| ExecutionBundle {
                    outputs: output.blocks,
                    updates: output.updates,
                    metrics: output.metrics,
                });
            if let Ok(bundle) = &result {
                *shared.engine_metrics.lock() = bundle.metrics;
            }
            *outcome.lock() = Some(result);
        })
}

fn spawn_adaptive<T: Transaction + Clone + 'static>(
    vm: Vm,
    storage: InMemoryStorage<T::Key, T::Value>,
    concurrency: Option<usize>,
    shared: Arc<NodeShared<T>>,
    former: BlockFormer<T>,
    outcome: Arc<Mutex<Option<Outcome<T>>>>,
) -> std::io::Result<JoinHandle<()>> {
    std::thread::Builder::new()
        .name("block-stm-node-executor".into())
        .spawn(move || {
            let mut builder = AdaptiveExecutor::builder(vm);
            if let Some(concurrency) = concurrency {
                builder = builder.concurrency(concurrency);
            }
            let adaptive = builder.build();
            let mut running = storage;
            let mut outputs = Vec::new();
            let mut metrics = MetricsSnapshot::default();
            let mut net: BTreeMap<T::Key, T::Value> = BTreeMap::new();
            let result = loop {
                match former.try_form(&shared.mempool, Instant::now()) {
                    FormOutcome::Formed(block) => {
                        shared.note_formed(&block);
                        match adaptive.execute_block(&block.txns, &running) {
                            Ok(output) => {
                                shared.note_committed(&block.ids, &block.arrivals, Instant::now());
                                for (key, value) in &output.updates {
                                    running.insert(key.clone(), value.clone());
                                    net.insert(key.clone(), value.clone());
                                }
                                metrics = metrics.merge(&output.metrics);
                                *shared.engine_metrics.lock() = metrics;
                                outputs.push(output);
                            }
                            Err(err) => break Err(err),
                        }
                    }
                    FormOutcome::NotYet => std::thread::sleep(IDLE_POLL),
                    FormOutcome::Drained => {
                        break Ok(ExecutionBundle {
                            outputs,
                            updates: net.into_iter().collect(),
                            metrics,
                        })
                    }
                }
            };
            *outcome.lock() = Some(result);
        })
}

/// A running node service. See the module docs for the lifecycle.
pub struct Node<T: Transaction + Clone + 'static> {
    shared: Arc<NodeShared<T>>,
    executor: Option<JoinHandle<()>>,
    monitor: Option<(Arc<AtomicBool>, JoinHandle<()>)>,
    outcome: Arc<Mutex<Option<Outcome<T>>>>,
    durability: Option<Arc<dyn DurabilitySink<T::Key, T::Value>>>,
    durable_baseline: u64,
}

/// A cloneable submission/observation handle onto a running [`Node`].
pub struct NodeHandle<T: Transaction> {
    shared: Arc<NodeShared<T>>,
}

impl<T: Transaction> Clone for NodeHandle<T> {
    fn clone(&self) -> Self {
        NodeHandle {
            shared: self.shared.clone(),
        }
    }
}

impl<T: Transaction + Clone> NodeHandle<T> {
    /// Submits a transaction. Never blocks: a full mempool returns
    /// [`NodeError::MempoolFull`] immediately.
    pub fn submit(&self, txn: T) -> Result<u64, NodeError> {
        self.shared.submit(txn)
    }

    /// A point-in-time snapshot of the node's counters and latencies.
    pub fn snapshot(&self) -> NodeSnapshot {
        self.shared.snapshot()
    }

    /// Transactions currently queued in the mempool.
    pub fn mempool_depth(&self) -> usize {
        self.shared.mempool.len()
    }
}

impl<T: Transaction + Clone + 'static> Node<T> {
    /// Starts configuring a node. Equivalent to [`NodeBuilder::new`].
    pub fn builder(vm: Vm, storage: InMemoryStorage<T::Key, T::Value>) -> NodeBuilder<T> {
        NodeBuilder::new(vm, storage)
    }

    /// A cloneable handle for submitters and observers.
    pub fn handle(&self) -> NodeHandle<T> {
        NodeHandle {
            shared: self.shared.clone(),
        }
    }

    /// Submits a transaction (see [`NodeHandle::submit`]).
    pub fn submit(&self, txn: T) -> Result<u64, NodeError> {
        self.shared.submit(txn)
    }

    /// A point-in-time snapshot of the node's counters and latencies.
    pub fn snapshot(&self) -> NodeSnapshot {
        self.shared.snapshot()
    }

    /// Gracefully stops the node: close → drain → flush → report, in that
    /// order (see the module docs for why the order is forced).
    pub fn shutdown(mut self) -> Result<NodeReport<T>, NodeError> {
        self.shared.mempool.close();
        if let Some(handle) = self.executor.take() {
            handle.join().map_err(|_| NodeError::Internal {
                detail: "executor thread panicked".into(),
            })?;
        }
        if let Some((stop, handle)) = self.monitor.take() {
            stop.store(true, Ordering::Release);
            handle.thread().unpark();
            let _ = handle.join();
        }
        let bundle = self
            .outcome
            .lock()
            .take()
            .ok_or_else(|| NodeError::Internal {
                detail: "executor thread exited without reporting an outcome".into(),
            })?
            .map_err(NodeError::Execution)?;

        let durable_watermark = match &self.durability {
            Some(sink) => {
                let watermark = sink
                    .flush_durable()
                    .map_err(|detail| NodeError::Durability { detail })?;
                let durable_events = watermark.saturating_sub(self.durable_baseline);
                let committed_events = self.shared.counters.committed_txns.load(Ordering::Relaxed);
                if durable_events < committed_events {
                    return Err(NodeError::SinkStalled {
                        durable_events,
                        committed_events,
                    });
                }
                Some(watermark)
            }
            None => None,
        };

        let snapshot = self.shared.snapshot();
        let mut commit_counts: Vec<(u64, u64)> = self
            .shared
            .commit_counts
            .lock()
            .iter()
            .map(|(id, count)| (*id, *count))
            .collect();
        commit_counts.sort_unstable();
        let blocks = std::mem::take(&mut *self.shared.formed_log.lock());
        Ok(NodeReport {
            snapshot,
            blocks,
            outputs: bundle.outputs,
            updates: bundle.updates,
            commit_counts,
            durable_watermark,
        })
    }
}

impl<T: Transaction + Clone + 'static> Drop for Node<T> {
    fn drop(&mut self) {
        // A dropped (not shut down) node still closes and joins so the
        // executor thread never outlives the storage it borrows.
        self.shared.mempool.close();
        if let Some(handle) = self.executor.take() {
            let _ = handle.join();
        }
        if let Some((stop, handle)) = self.monitor.take() {
            stop.store(true, Ordering::Release);
            handle.thread().unpark();
            let _ = handle.join();
        }
    }
}
