//! Bounded transaction mempool with backpressure.
//!
//! The mempool is the node's admission queue: producers [`submit`] from any
//! thread, the block former drains in FIFO order. Capacity is a hard bound —
//! a full mempool rejects the submission with a typed error instead of
//! blocking or silently dropping, so open-loop drivers can observe and
//! account for backpressure. Every admitted transaction is stamped with a
//! submit id (dense, starting at 0) and an arrival timestamp; the ids feed
//! the exactly-once commit audit and the timestamps feed the ingest→formed
//! and ingest→committed latency histograms.
//!
//! [`submit`]: Mempool::submit

use parking_lot::{Mutex, MutexGuard};
use std::collections::VecDeque;
use std::time::Instant;

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The mempool holds `capacity` transactions; retry after the block
    /// former drains some.
    Full {
        /// The configured capacity bound.
        capacity: usize,
    },
    /// The node is shutting down and no longer accepts transactions.
    Closed,
}

/// One admitted transaction waiting to be formed into a block.
pub(crate) struct PendingTxn<T> {
    pub txn: T,
    pub id: u64,
    pub arrived: Instant,
}

pub(crate) struct MempoolState<T> {
    pub queue: VecDeque<PendingTxn<T>>,
    pub closed: bool,
    next_id: u64,
}

/// A bounded FIFO admission queue shared between submitters and the block
/// former.
pub(crate) struct Mempool<T> {
    capacity: usize,
    state: Mutex<MempoolState<T>>,
}

impl<T> Mempool<T> {
    pub fn new(capacity: usize) -> Self {
        Mempool {
            capacity: capacity.max(1),
            state: Mutex::new(MempoolState {
                queue: VecDeque::new(),
                closed: false,
                next_id: 0,
            }),
        }
    }

    /// Admits `txn`, assigning it the next submit id. Never blocks: a full
    /// mempool returns [`SubmitError::Full`] immediately.
    pub fn submit(&self, txn: T) -> Result<u64, SubmitError> {
        let mut state = self.state.lock();
        if state.closed {
            return Err(SubmitError::Closed);
        }
        if state.queue.len() >= self.capacity {
            return Err(SubmitError::Full {
                capacity: self.capacity,
            });
        }
        let id = state.next_id;
        state.next_id += 1;
        state.queue.push_back(PendingTxn {
            txn,
            id,
            arrived: Instant::now(),
        });
        Ok(id)
    }

    /// Stops admissions; transactions already queued still drain. Idempotent.
    pub fn close(&self) {
        self.state.lock().closed = true;
    }

    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Locks the queue for the block former.
    pub fn lock(&self) -> MutexGuard<'_, MempoolState<T>> {
        self.state.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn submit_assigns_dense_ids_and_bounds_capacity() {
        let mempool = Mempool::new(3);
        assert_eq!(mempool.submit(10u64), Ok(0));
        assert_eq!(mempool.submit(11), Ok(1));
        assert_eq!(mempool.submit(12), Ok(2));
        assert_eq!(mempool.submit(13), Err(SubmitError::Full { capacity: 3 }));
        // Rejection did not burn an id.
        mempool.lock().queue.pop_front();
        assert_eq!(mempool.submit(13), Ok(3));
    }

    #[test]
    fn close_rejects_new_submissions_but_keeps_queued() {
        let mempool = Mempool::new(8);
        mempool.submit(1u64).unwrap();
        mempool.close();
        assert_eq!(mempool.submit(2), Err(SubmitError::Closed));
        assert_eq!(mempool.len(), 1);
    }
}
