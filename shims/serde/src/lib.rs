//! Offline shim for the [`serde`](https://crates.io/crates/serde) crate.
//!
//! Real serde abstracts over serializer backends with a visitor architecture.
//! This shim collapses that design to a single JSON-like [`Value`] tree:
//! [`Serialize`] renders a value *into* a tree, [`Deserialize`] rebuilds a
//! value *from* one, and the companion `serde_json` shim handles text. The
//! derive macros (re-exported from the `serde_derive` shim) follow serde's
//! data model for the shapes this workspace uses: named-field structs,
//! newtype structs, and enums with unit / newtype / struct variants, without
//! `#[serde(...)]` attributes or generics.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A parsed or to-be-rendered document tree (the shim's entire data model).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A non-negative integer.
    UInt(u128),
    /// A negative integer.
    Int(i128),
    /// A floating-point number (finite).
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved for stable output.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Looks up `key` if this value is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// A short name of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::UInt(_) | Value::Int(_) => "integer",
            Value::Float(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when rebuilding a Rust value from a [`Value`] tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deserialization error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// A type that can render itself into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value from `value`.
    fn from_value(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, got {}",
                other.kind()
            ))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u128)
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: u128 = match value {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u128,
                    other => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_uint!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_int {
    ($($t:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = *self as i128;
                if v >= 0 {
                    Value::UInt(v as u128)
                } else {
                    Value::Int(v)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, Error> {
                let raw: i128 = match value {
                    Value::UInt(u) => i128::try_from(*u)
                        .map_err(|_| Error::custom("integer overflows i128"))?,
                    Value::Int(i) => *i,
                    other => {
                        return Err(Error::custom(format!(
                            concat!("expected ", stringify!($t), ", got {}"),
                            other.kind()
                        )))
                    }
                };
                <$t>::try_from(raw).map_err(|_| {
                    Error::custom(concat!("integer out of range for ", stringify!($t)))
                })
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Float(f) => Ok(*f),
            Value::UInt(u) => Ok(*u as f64),
            Value::Int(i) => Ok(*i as f64),
            other => Err(Error::custom(format!(
                "expected number, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, Error> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, got {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::String(s) if s.chars().count() == 1 => Ok(s.chars().next().expect("one char")),
            other => Err(Error::custom(format!(
                "expected single-char string, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, got {}",
                other.kind()
            ))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(value: &Value) -> Result<Self, Error> {
        let items = Vec::<T>::from_value(value)?;
        let len = items.len();
        <[T; N]>::try_from(items)
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(value: &Value) -> Result<Self, Error> {
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                match value {
                    Value::Array(items) if items.len() == LEN => {
                        Ok(($($name::from_value(&items[$idx])?,)+))
                    }
                    other => Err(Error::custom(format!(
                        "expected array of length {}, got {}",
                        LEN,
                        other.kind()
                    ))),
                }
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, Error> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

/// Maps serialize with stringified keys, mirroring JSON's string-keyed objects.
fn key_to_string(key: &Value) -> String {
    match key {
        Value::String(s) => s.clone(),
        Value::UInt(u) => u.to_string(),
        Value::Int(i) => i.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key kind: {}", other.kind()),
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// `serde::de` namespace stub so `serde::de::Error`-style paths resolve.
pub mod de {
    pub use super::{Deserialize, Error};
}

/// `serde::ser` namespace stub so `serde::ser::Serialize`-style paths resolve.
pub mod ser {
    pub use super::{Error, Serialize};
}
