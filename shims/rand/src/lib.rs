//! Offline shim for the [`rand`](https://crates.io/crates/rand) crate (0.8 API).
//!
//! Provides the subset this workspace uses: [`RngCore`], [`SeedableRng`],
//! the [`Rng`] extension trait with `gen`, `gen_range` and `gen_bool`, and
//! [`rngs::StdRng`]. Algorithms differ from upstream `rand` (StdRng here is
//! SplitMix64-based, not ChaCha12), so seeded streams are deterministic
//! *within* this workspace but not bit-compatible with upstream.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core trait for random number generators: raw output blocks.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// A generator that can be instantiated from a fixed seed.
pub trait SeedableRng: Sized {
    /// Seed type (byte array).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64`, expanding it to a full seed with
    /// SplitMix64 (same construction the upstream crate uses).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut chunks = bytes.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&sm.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = sm.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from the generator's raw output
/// (the shim's stand-in for sampling from the `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}

impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64, usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32, i64 => next_u64, isize => next_u64);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A range that `Rng::gen_range` can sample from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Integer types usable with `gen_range`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[low, high)`; `high > low`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform draw from `[low, high]`; `high >= low`.
    fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128);
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
            fn sample_closed<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as u128).wrapping_sub(low as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain: impossible for the types below.
                    return <$t as Standard>::sample(rng);
                }
                low.wrapping_add(uniform_u128(rng, span) as $t)
            }
        }
    )*};
}

// Sign-extension into u128 plus wrapping arithmetic keeps the span and the
// offset correct for signed types as well.
impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Unbiased uniform draw from `[0, span)` via rejection sampling (Lemire-style
/// threshold on the low 64 bits; `span` always fits in 64 bits here).
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0 && span <= u64::MAX as u128 + 1);
    if span == u64::MAX as u128 + 1 {
        return rng.next_u64() as u128;
    }
    let span = span as u64;
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return (v % span) as u128;
        }
    }
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_closed(rng, *self.start(), *self.end())
    }
}

/// Convenience extension trait mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its full domain (`Standard` distribution).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range` (half-open `a..b` or inclusive `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p not in [0, 1]");
        <f64 as Standard>::sample(self) < p
    }

    /// Fills `dest` with random bytes (mirrors `Rng::fill` for byte slices).
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: the seed-expansion generator, also the engine behind [`rngs::StdRng`].
#[derive(Clone, Debug)]
pub(crate) struct SplitMix64 {
    pub(crate) state: u64,
}

impl SplitMix64 {
    pub(crate) fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Namespaced standard generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng, SplitMix64};

    /// The shim's standard seeded generator. Upstream `StdRng` is ChaCha12;
    /// this one is xoshiro256++ seeded via SplitMix64 — statistically strong
    /// and deterministic, but not stream-compatible with upstream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // Avoid the all-zero state, which xoshiro cannot leave.
            if s == [0; 4] {
                let mut sm = SplitMix64 { state: 1 };
                for slot in &mut s {
                    *slot = sm.next_u64();
                }
            }
            Self { s }
        }
    }
}

/// Returns a generator seeded from the system entropy-ish sources (time and
/// thread id). Only as random as smoke tests need; prefer seeded rngs.
pub fn thread_rng() -> rngs::StdRng {
    use std::time::{SystemTime, UNIX_EPOCH};
    let nanos = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0xDEAD_BEEF);
    rngs::StdRng::seed_from_u64(nanos)
}

/// Prelude-style re-exports (mirrors `rand::prelude`).
pub mod prelude {
    pub use super::{Rng, RngCore, SeedableRng};
}
