//! Self-tests for the shim's shrinking machinery: failures must not only be
//! found, they must be *minimized*, and the failing seed must be persisted.

use crate::collection::vec;
use crate::strategy::Strategy;
use crate::test_runner::{run_proptest, ProptestConfig, TestCaseError};

/// Runs `run_proptest` against a failing property and returns the panic
/// message, using a temp dir so regression persistence never touches the
/// repository's committed `proptest-regressions/`.
fn failing_run<S, F>(name: &str, strategy: S, test: F) -> String
where
    S: Strategy + std::panic::RefUnwindSafe,
    S::Value: std::fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>
        + std::panic::RefUnwindSafe
        + std::panic::UnwindSafe,
{
    let scratch = std::env::temp_dir().join(format!("proptest-shim-selftest-{name}"));
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(scratch.join("proptest-regressions")).expect("scratch dir");
    let manifest_dir = scratch.to_string_lossy().into_owned();
    let config = ProptestConfig::with_cases(64);
    let result = std::panic::catch_unwind(|| {
        run_proptest(
            &config,
            &manifest_dir,
            &format!("{name}.rs"),
            name,
            &strategy,
            test,
        );
    });
    let panic = result.expect_err("the property must fail");
    let message = panic
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| panic.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("panic carries a message");
    // The seed must have been persisted for replay.
    let regression_file = scratch
        .join("proptest-regressions")
        .join(format!("{name}.txt"));
    let persisted = std::fs::read_to_string(&regression_file).expect("seed persisted");
    assert!(
        persisted.lines().any(|l| l.starts_with("cc 0x")),
        "regression file has a seed line: {persisted:?}"
    );
    let _ = std::fs::remove_dir_all(&scratch);
    message
}

#[test]
fn integer_failures_shrink_to_the_boundary() {
    // Property: x < 37. The minimal counterexample in 0..10_000 is exactly 37,
    // and binary-search shrinking must land on it, not near it.
    let message = failing_run("int_boundary", (0u64..10_000,), |(x,)| {
        if x < 37 {
            Ok(())
        } else {
            Err(TestCaseError::fail(format!("{x} >= 37")))
        }
    });
    assert!(
        message.contains("minimal failing input: (37,)"),
        "expected the exact boundary 37, got:\n{message}"
    );
}

#[test]
fn vec_failures_shrink_to_a_minimal_witness() {
    // Property: no element equals 7. Shrinking must strip passing elements
    // and minimize the witness to exactly `[7]`.
    let message = failing_run("vec_witness", (vec(0u64..50, 1..40),), |(xs,)| {
        if xs.contains(&7) {
            Err(TestCaseError::fail("found a 7"))
        } else {
            Ok(())
        }
    });
    assert!(
        message.contains("minimal failing input: ([7],)"),
        "expected the one-element witness [7], got:\n{message}"
    );
}

#[test]
fn passing_properties_do_not_panic_or_persist() {
    let scratch = std::env::temp_dir().join("proptest-shim-selftest-passing");
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(scratch.join("proptest-regressions")).expect("scratch dir");
    run_proptest(
        &ProptestConfig::with_cases(32),
        &scratch.to_string_lossy(),
        "passing.rs",
        "passing",
        &(0u64..100,),
        |(x,)| {
            if x < 100 {
                Ok(())
            } else {
                Err(TestCaseError::fail("out of range"))
            }
        },
    );
    let regression_file = scratch.join("proptest-regressions").join("passing.txt");
    assert!(!regression_file.exists(), "no seed persisted for a pass");
    let _ = std::fs::remove_dir_all(&scratch);
}

#[test]
fn persisted_seeds_are_replayed_first() {
    // Seed a regression file by failing once, then verify a fresh run fails
    // immediately from the persisted seed (reported as such), even with a
    // case budget of zero fresh cases.
    let scratch = std::env::temp_dir().join("proptest-shim-selftest-replay");
    let _ = std::fs::remove_dir_all(&scratch);
    std::fs::create_dir_all(scratch.join("proptest-regressions")).expect("scratch dir");
    let manifest_dir = scratch.to_string_lossy().into_owned();
    let always_fail =
        |(_x,): (u64,)| -> Result<(), TestCaseError> { Err(TestCaseError::fail("always")) };

    let first = std::panic::catch_unwind(|| {
        run_proptest(
            &ProptestConfig::with_cases(1),
            &manifest_dir,
            "replay.rs",
            "replay",
            &(0u64..10,),
            always_fail,
        );
    });
    assert!(first.is_err());

    let second = std::panic::catch_unwind(|| {
        run_proptest(
            &ProptestConfig::with_cases(0),
            &manifest_dir,
            "replay.rs",
            "replay",
            &(0u64..10,),
            always_fail,
        );
    });
    let panic = second.expect_err("replayed seed must fail again");
    let message = panic
        .downcast_ref::<String>()
        .cloned()
        .expect("panic carries a message");
    assert!(
        message.contains("persisted regression seed"),
        "failure must be attributed to the replayed seed, got:\n{message}"
    );
    let _ = std::fs::remove_dir_all(&scratch);
}
