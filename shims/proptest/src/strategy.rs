//! Strategies and value trees: generation plus shrinking.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRunner;
use rand::Rng;

/// A generated value plus the state needed to shrink it.
///
/// `simplify` moves to a strictly "smaller" candidate; `complicate` walks back
/// halfway after a simplification overshot (the test passed on the simpler
/// value). Both return `false` when no further move exists.
pub trait ValueTree {
    /// The type of value this tree produces.
    type Value;

    /// The current candidate value.
    fn current(&self) -> Self::Value;

    /// Attempts to move to a simpler candidate.
    fn simplify(&mut self) -> bool;

    /// Attempts to walk back toward the last known-failing candidate.
    fn complicate(&mut self) -> bool;
}

/// A boxed value tree (all combinators erase tree types).
pub type BoxedTree<T> = Box<dyn ValueTree<Value = T>>;

/// Generates values of an associated type, shrinkable via [`ValueTree`].
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws a new value tree using the runner's RNG.
    fn new_tree(&self, runner: &mut TestRunner) -> BoxedTree<Self::Value>;

    /// Maps generated values through `f` (shrinking maps the source).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map {
            source: self,
            map: Arc::new(f),
        }
    }

    /// Type-erases this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> BoxedTree<T> {
        (**self).new_tree(runner)
    }
}

// ---------------------------------------------------------------------------
// Integer ranges
// ---------------------------------------------------------------------------

/// Binary-search shrinker over an integer domain `[min, current]`.
struct IntTree<T> {
    curr: T,
    /// Lowest candidate not yet ruled out by `complicate`.
    low: T,
    /// The value before the last `simplify`, for `complicate` to restore.
    prev: Option<T>,
}

macro_rules! int_strategies {
    ($($t:ty),* $(,)?) => {$(
        impl ValueTree for IntTree<$t> {
            type Value = $t;

            fn current(&self) -> $t {
                self.curr
            }

            fn simplify(&mut self) -> bool {
                if self.curr <= self.low {
                    return false;
                }
                self.prev = Some(self.curr);
                self.curr = self.low + (self.curr - self.low) / 2;
                true
            }

            fn complicate(&mut self) -> bool {
                match self.prev.take() {
                    Some(prev) => {
                        // The simpler half passed the test: rule it out.
                        self.low = self.curr.saturating_add(1).min(prev);
                        self.curr = prev;
                        true
                    }
                    None => false,
                }
            }
        }

        impl Strategy for Range<$t> {
            type Value = $t;

            fn new_tree(&self, runner: &mut TestRunner) -> BoxedTree<$t> {
                assert!(self.start < self.end, "empty range strategy");
                let value = runner.rng.gen_range(self.clone());
                Box::new(IntTree {
                    curr: value,
                    low: self.start,
                    prev: None,
                })
            }
        }
    )*};
}

int_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// ---------------------------------------------------------------------------
// any
// ---------------------------------------------------------------------------

/// Full-domain strategy for primitive types (the shim's `any::<T>()`).
pub struct AnyStrategy<T> {
    _marker: PhantomData<T>,
}

/// Types with a canonical full-domain strategy.
pub trait ArbitraryPrimitive: Sized {
    /// Draws one value and wraps it in a shrinkable tree.
    fn any_tree(runner: &mut TestRunner) -> BoxedTree<Self>;
}

macro_rules! arbitrary_uint {
    ($($t:ty),* $(,)?) => {$(
        impl ArbitraryPrimitive for $t {
            fn any_tree(runner: &mut TestRunner) -> BoxedTree<Self> {
                let value: $t = runner.rng.gen();
                Box::new(IntTree {
                    curr: value,
                    low: 0,
                    prev: None,
                })
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize);

impl ArbitraryPrimitive for bool {
    fn any_tree(runner: &mut TestRunner) -> BoxedTree<Self> {
        let value: bool = runner.rng.gen();
        Box::new(BoolTree {
            curr: value,
            prev: None,
        })
    }
}

struct BoolTree {
    curr: bool,
    prev: Option<bool>,
}

impl ValueTree for BoolTree {
    type Value = bool;

    fn current(&self) -> bool {
        self.curr
    }

    fn simplify(&mut self) -> bool {
        if self.curr {
            self.prev = Some(true);
            self.curr = false;
            true
        } else {
            false
        }
    }

    fn complicate(&mut self) -> bool {
        match self.prev.take() {
            Some(prev) => {
                self.curr = prev;
                true
            }
            None => false,
        }
    }
}

impl<T: ArbitraryPrimitive> Strategy for AnyStrategy<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> BoxedTree<T> {
        T::any_tree(runner)
    }
}

/// Returns the full-domain strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: ArbitraryPrimitive>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}

// ---------------------------------------------------------------------------
// Just
// ---------------------------------------------------------------------------

/// A strategy that always produces a clone of one value (no shrinking).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

struct JustTree<T: Clone>(T);

impl<T: Clone> ValueTree for JustTree<T> {
    type Value = T;

    fn current(&self) -> T {
        self.0.clone()
    }

    fn simplify(&mut self) -> bool {
        false
    }

    fn complicate(&mut self) -> bool {
        false
    }
}

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;

    fn new_tree(&self, _runner: &mut TestRunner) -> BoxedTree<T> {
        Box::new(JustTree(self.0.clone()))
    }
}

// ---------------------------------------------------------------------------
// prop_map
// ---------------------------------------------------------------------------

/// Strategy combinator produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    map: Arc<F>,
}

struct MapTree<I, O> {
    inner: BoxedTree<I>,
    map: Arc<dyn Fn(I) -> O>,
}

impl<I, O> ValueTree for MapTree<I, O> {
    type Value = O;

    fn current(&self) -> O {
        (self.map)(self.inner.current())
    }

    fn simplify(&mut self) -> bool {
        self.inner.simplify()
    }

    fn complicate(&mut self) -> bool {
        self.inner.complicate()
    }
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    S::Value: 'static,
    O: 'static,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;

    fn new_tree(&self, runner: &mut TestRunner) -> BoxedTree<O> {
        Box::new(MapTree {
            inner: self.source.new_tree(runner),
            map: self.map.clone() as Arc<dyn Fn(S::Value) -> O>,
        })
    }
}

// ---------------------------------------------------------------------------
// Union (prop_oneof!)
// ---------------------------------------------------------------------------

/// Uniform choice between strategies of a common value type.
pub struct Union<T> {
    branches: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Creates a union; panics if `branches` is empty.
    pub fn new(branches: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !branches.is_empty(),
            "prop_oneof! needs at least one branch"
        );
        Self { branches }
    }
}

impl<T: 'static> Strategy for Union<T> {
    type Value = T;

    fn new_tree(&self, runner: &mut TestRunner) -> BoxedTree<T> {
        let index = runner.rng.gen_range(0..self.branches.len());
        // Shrinking stays within the chosen branch.
        self.branches[index].new_tree(runner)
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($( ($($S:ident / $i:tt),+) ),+ $(,)?) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+)
        where
            $($S::Value: 'static),+
        {
            type Value = ($($S::Value,)+);

            fn new_tree(&self, runner: &mut TestRunner) -> BoxedTree<Self::Value> {
                Box::new(TupleTree {
                    trees: ($(self.$i.new_tree(runner),)+),
                    active: 0,
                    last: None,
                })
            }
        }

        impl<$($S),+> ValueTree for TupleTree<($(BoxedTree<$S>,)+)>
        where
            $($S: 'static),+
        {
            type Value = ($($S,)+);

            fn current(&self) -> Self::Value {
                ($(self.trees.$i.current(),)+)
            }

            fn simplify(&mut self) -> bool {
                let arity = tuple_strategy!(@count $($S)+);
                while self.active < arity {
                    let moved = match self.active {
                        $($i => self.trees.$i.simplify(),)+
                        _ => unreachable!(),
                    };
                    if moved {
                        self.last = Some(self.active);
                        return true;
                    }
                    self.active += 1;
                }
                false
            }

            fn complicate(&mut self) -> bool {
                match self.last {
                    Some(index) => match index {
                        $($i => self.trees.$i.complicate(),)+
                        _ => unreachable!(),
                    },
                    None => false,
                }
            }
        }
    )+};
    (@count $($S:ident)+) => { [$(tuple_strategy!(@one $S)),+].len() };
    (@one $S:ident) => { () };
}

/// Component-wise shrinker for tuple strategies.
struct TupleTree<Trees> {
    trees: Trees,
    /// Index of the component currently being simplified.
    active: usize,
    /// Component that performed the last simplify (for `complicate`).
    last: Option<usize>,
}

tuple_strategy! {
    (A/0),
    (A/0, B/1),
    (A/0, B/1, C/2),
    (A/0, B/1, C/2, D/3),
    (A/0, B/1, C/2, D/3, E/4),
    (A/0, B/1, C/2, D/3, E/4, F/5),
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6),
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7),
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8),
    (A/0, B/1, C/2, D/3, E/4, F/5, G/6, H/7, I/8, J/9),
}

// ---------------------------------------------------------------------------
// Vec trees (used by collection::vec)
// ---------------------------------------------------------------------------

/// Shrinker for vectors: first tries dropping elements (back to front), then
/// shrinks the surviving elements left to right.
pub(crate) struct VecTree<T> {
    pub(crate) elems: Vec<BoxedTree<T>>,
    pub(crate) included: Vec<bool>,
    pub(crate) min_len: usize,
    pub(crate) phase: VecPhase,
    pub(crate) last: Option<VecAction>,
}

pub(crate) enum VecPhase {
    /// Next removal candidate (index into `elems`, counting down).
    Removing(usize),
    /// Element currently being shrunk.
    Shrinking(usize),
}

pub(crate) enum VecAction {
    Removed(usize),
    Shrunk(usize),
}

impl<T> VecTree<T> {
    fn included_len(&self) -> usize {
        self.included.iter().filter(|&&keep| keep).count()
    }
}

impl<T> ValueTree for VecTree<T> {
    type Value = Vec<T>;

    fn current(&self) -> Vec<T> {
        self.elems
            .iter()
            .zip(&self.included)
            .filter(|(_, &keep)| keep)
            .map(|(tree, _)| tree.current())
            .collect()
    }

    fn simplify(&mut self) -> bool {
        loop {
            match self.phase {
                VecPhase::Removing(index) => {
                    if self.included_len() <= self.min_len {
                        self.phase = VecPhase::Shrinking(0);
                        continue;
                    }
                    match index.checked_sub(1) {
                        Some(next) => {
                            self.phase = VecPhase::Removing(next);
                            if self.included[next] {
                                self.included[next] = false;
                                self.last = Some(VecAction::Removed(next));
                                return true;
                            }
                        }
                        None => {
                            self.phase = VecPhase::Shrinking(0);
                        }
                    }
                }
                VecPhase::Shrinking(index) => {
                    if index >= self.elems.len() {
                        return false;
                    }
                    if self.included[index] && self.elems[index].simplify() {
                        self.last = Some(VecAction::Shrunk(index));
                        return true;
                    }
                    self.phase = VecPhase::Shrinking(index + 1);
                }
            }
        }
    }

    fn complicate(&mut self) -> bool {
        match self.last.take() {
            Some(VecAction::Removed(index)) => {
                // This element was load-bearing: restore it permanently.
                self.included[index] = true;
                true
            }
            Some(VecAction::Shrunk(index)) => self.elems[index].complicate(),
            None => false,
        }
    }
}
