//! The property-test runner: seeded case generation, shrinking, and
//! regression-seed persistence.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

use crate::strategy::Strategy;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Runner state handed to strategies during generation.
pub struct TestRunner {
    /// The RNG for the current test case (seeded per case).
    pub rng: ChaCha8Rng,
}

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Upper bound on shrink steps after a failure.
    pub max_shrink_iters: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases,
            ..Self::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(256);
        Self {
            cases,
            max_shrink_iters: 4096,
        }
    }
}

/// A failed (or rejected) test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Drives one `proptest!`-declared test: replays persisted regression seeds
/// first, then runs `config.cases` fresh seeded cases, shrinking and
/// persisting the seed on failure. Panics (standard `#[test]` failure) with
/// the minimal counterexample.
pub fn run_proptest<S, F>(
    config: &ProptestConfig,
    manifest_dir: &str,
    source_file: &str,
    test_name: &str,
    strategy: &S,
    test: F,
) where
    S: Strategy,
    S::Value: fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let regression_file = regression_path(manifest_dir, source_file);

    for seed in load_seeds(&regression_file, test_name) {
        if let Some(failure) = run_case(config, seed, strategy, &test) {
            fail(test_name, seed, &regression_file, failure, true);
        }
    }

    let master_seed = entropy_seed();
    let mut master = ChaCha8Rng::seed_from_u64(master_seed);
    for _ in 0..config.cases {
        let seed = master.next_u64();
        if let Some(failure) = run_case(config, seed, strategy, &test) {
            persist_seed(&regression_file, seed, test_name);
            fail(test_name, seed, &regression_file, failure, false);
        }
    }
}

/// A shrunk failure: the final error plus the minimal input's debug rendering.
struct Failure {
    message: String,
    minimal: String,
    shrink_steps: u32,
}

fn run_case<S, F>(config: &ProptestConfig, seed: u64, strategy: &S, test: &F) -> Option<Failure>
where
    S: Strategy,
    S::Value: fmt::Debug,
    F: Fn(S::Value) -> Result<(), TestCaseError>,
{
    let mut runner = TestRunner {
        rng: ChaCha8Rng::seed_from_u64(seed),
    };
    let mut tree = strategy.new_tree(&mut runner);
    let mut last_error = match test(tree.current()) {
        Ok(()) => return None,
        Err(e) => e,
    };

    let mut steps = 0;
    while steps < config.max_shrink_iters {
        if !tree.simplify() {
            break;
        }
        steps += 1;
        match test(tree.current()) {
            Err(e) => last_error = e,
            Ok(()) => {
                // Overshot: the simpler input passes. Walk back.
                if !tree.complicate() {
                    break;
                }
            }
        }
    }

    // The tree may currently hold a passing candidate (e.g. shrink budget ran
    // out right after an overshoot); walk back until it fails again.
    if test(tree.current()).is_ok() {
        while tree.complicate() {
            if let Err(e) = test(tree.current()) {
                last_error = e;
                break;
            }
        }
    }

    Some(Failure {
        message: last_error.message,
        minimal: format!("{:?}", tree.current()),
        shrink_steps: steps,
    })
}

fn fail(
    test_name: &str,
    seed: u64,
    regression_file: &Path,
    failure: Failure,
    from_regression: bool,
) -> ! {
    let origin = if from_regression {
        format!(
            "persisted regression seed (see {})",
            regression_file.display()
        )
    } else {
        format!(
            "fresh case, seed persisted to {}",
            regression_file.display()
        )
    };
    panic!(
        "proptest `{test_name}` failed [{origin}]\n\
         seed: 0x{seed:016x}\n\
         shrink steps: {steps}\n\
         minimal failing input: {minimal}\n\
         error: {message}",
        steps = failure.shrink_steps,
        minimal = failure.minimal,
        message = failure.message,
    );
}

/// Seeds the master RNG from wall-clock entropy (overridable for
/// reproducibility via `PROPTEST_SEED`).
fn entropy_seed() -> u64 {
    if let Ok(seed) = std::env::var("PROPTEST_SEED") {
        let parsed = seed
            .strip_prefix("0x")
            .map(|hex| u64::from_str_radix(hex, 16))
            .unwrap_or_else(|| seed.parse());
        if let Ok(seed) = parsed {
            return seed;
        }
    }
    use std::time::{SystemTime, UNIX_EPOCH};
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x00C0_FFEE)
}

/// Resolves the regression file for a test source file: the nearest
/// `proptest-regressions/` directory at or above the crate (so a committed
/// workspace-level directory is found), keyed by the source file's stem.
fn regression_path(manifest_dir: &str, source_file: &str) -> PathBuf {
    let stem = Path::new(source_file)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .unwrap_or_else(|| "unknown".to_string());
    let mut dir = PathBuf::from(manifest_dir);
    for _ in 0..4 {
        let candidate = dir.join("proptest-regressions");
        if candidate.is_dir() {
            return candidate.join(format!("{stem}.txt"));
        }
        if !dir.pop() {
            break;
        }
    }
    PathBuf::from(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"))
}

/// Loads persisted seeds for `test_name` from the regression file.
fn load_seeds(path: &Path, test_name: &str) -> Vec<u64> {
    let Ok(content) = fs::read_to_string(path) else {
        return Vec::new();
    };
    content
        .lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("cc ")?;
            let (seed_text, comment) = match rest.split_once('#') {
                Some((s, c)) => (s.trim(), c.trim()),
                None => (rest.trim(), ""),
            };
            // Only replay seeds recorded for this test (seeds drive this
            // test's strategies; another test's seed would generate an
            // unrelated input).
            if comment != test_name {
                return None;
            }
            let seed_text = seed_text.strip_prefix("0x").unwrap_or(seed_text);
            u64::from_str_radix(seed_text, 16).ok()
        })
        .collect()
}

/// Appends a failing seed to the regression file (idempotent per seed).
fn persist_seed(path: &Path, seed: u64, test_name: &str) {
    let line = format!("cc 0x{seed:016x} # {test_name}");
    let existing = fs::read_to_string(path).unwrap_or_default();
    if existing.lines().any(|l| l.trim() == line) {
        return;
    }
    if let Some(parent) = path.parent() {
        let _ = fs::create_dir_all(parent);
    }
    let mut content = existing;
    if content.is_empty() {
        content.push_str(
            "# Seeds for failing proptest cases, replayed before fresh cases on every\n\
             # run. This file is auto-appended; commit new entries alongside the fix.\n",
        );
    }
    content.push_str(&line);
    content.push('\n');
    let _ = fs::write(path, content);
}
