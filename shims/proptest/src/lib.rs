//! Offline shim for the [`proptest`](https://crates.io/crates/proptest) crate.
//!
//! Implements the API subset this workspace's property tests use with the
//! same architecture as upstream: strategies produce *value trees* that
//! support binary-search shrinking (`simplify` / `complicate`), the
//! [`proptest!`] macro drives a seeded runner, and failing case seeds are
//! persisted to a `proptest-regressions/` directory and replayed first on the
//! next run.
//!
//! Supported strategies: integer ranges, [`any`] for primitive types,
//! [`Just`], tuples (arity 1-8), [`collection::vec`], `prop_map`, and
//! [`prop_oneof!`] unions.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

#[cfg(test)]
mod shrink_tests;

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a `proptest!` body; failures shrink instead of
/// panicking immediately.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("{} at {}:{}", format_args!($($fmt)+), file!(), line!()),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `left == right`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left != right,
            "assertion failed: `left != right`\n  both: `{:?}`",
            left
        );
    }};
}

/// Builds a union strategy choosing uniformly between the given strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy)
                as ::std::boxed::Box<dyn $crate::strategy::Strategy<Value = _>>),+
        ])
    };
}

/// Declares `#[test]` functions whose arguments are drawn from strategies,
/// mirroring `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (
        config = $config:expr;
        $(
            $(#[$meta:meta])+
            fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config = $config;
                let strategy = ($($strategy,)+);
                $crate::test_runner::run_proptest(
                    &config,
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    stringify!($name),
                    &strategy,
                    |($($arg,)+)| {
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}
