//! Collection strategies (`proptest::collection::vec`).

use std::ops::Range;

use crate::strategy::{BoxedTree, Strategy, VecPhase, VecTree};
use crate::test_runner::TestRunner;
use rand::Rng;

/// Strategy for vectors with lengths drawn from a range.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates `Vec<S::Value>` with a length in `size` (half-open, like the
/// upstream `SizeRange` conversion from `Range<usize>`).
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty vec size range");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: 'static,
{
    type Value = Vec<S::Value>;

    fn new_tree(&self, runner: &mut TestRunner) -> BoxedTree<Vec<S::Value>> {
        let len = runner.rng.gen_range(self.size.clone());
        let elems: Vec<BoxedTree<S::Value>> =
            (0..len).map(|_| self.element.new_tree(runner)).collect();
        Box::new(VecTree {
            included: vec![true; elems.len()],
            phase: VecPhase::Removing(elems.len()),
            min_len: self.size.start,
            last: None,
            elems,
        })
    }
}
