//! Offline shim for the [`parking_lot`](https://crates.io/crates/parking_lot) crate.
//!
//! Implements the subset of the `parking_lot` 0.12 API used by this workspace
//! (`Mutex` and `RwLock` with non-poisoning guards) on top of `std::sync`.
//! Poisoning is swallowed: a panic while holding a lock does not wedge later
//! acquisitions, matching `parking_lot` semantics closely enough for these
//! crates.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive, API-compatible with `parking_lot::Mutex`.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader-writer lock, API-compatible with `parking_lot::RwLock`.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// RAII shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// RAII exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available. Never poisons.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access, blocking until available. Never poisons.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire shared read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire exclusive write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_read() {
            Some(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            None => f.write_str("RwLock(<locked>)"),
        }
    }
}
