//! Offline shim for the [`serde_json`](https://crates.io/crates/serde_json)
//! crate: `to_string` / `from_str` over the serde shim's [`Value`] tree.
//!
//! Encoding conventions match real `serde_json` for the data model the
//! workspace derives: named structs are objects, newtype structs are their
//! inner value, unit enum variants are strings, data-carrying variants are
//! single-key objects, and byte arrays are arrays of numbers.

#![forbid(unsafe_code)]

use std::fmt;

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Error for both serialization and parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Self {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Self::new(e)
    }
}

/// Alias mirroring `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value())?;
    Ok(out)
}

/// Deserializes a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(input: &str) -> Result<T> {
    let value = parse_value_complete(input)?;
    Ok(T::from_value(&value)?)
}

/// Parses a JSON string into a raw [`Value`] tree.
pub fn parse_value_complete(input: &str) -> Result<Value> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing characters at byte {pos}")));
    }
    Ok(value)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value) -> Result<()> {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error::new("non-finite float cannot be encoded as JSON"));
            }
            // `{:?}` prints the shortest representation that round-trips and
            // always includes a decimal point or exponent.
            out.push_str(&format!("{f:?}"));
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item)?;
            }
            out.push(']');
        }
        Value::Object(entries) => {
            out.push('{');
            for (i, (key, item)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, key);
                out.push(':');
                write_value(out, item)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser (recursive descent over bytes)
// ---------------------------------------------------------------------------

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
            *pos += 1;
        } else {
            break;
        }
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_literal(bytes, pos, "null", Value::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::String),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => {
                        return Err(Error::new(format!(
                            "expected `,` or `]` in array, got {other:?}"
                        )))
                    }
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                if bytes.get(*pos) != Some(&b':') {
                    return Err(Error::new("expected `:` after object key"));
                }
                *pos += 1;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(entries));
                    }
                    other => {
                        return Err(Error::new(format!(
                            "expected `,` or `}}` in object, got {other:?}"
                        )))
                    }
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, literal: &str, value: Value) -> Result<Value> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(Error::new(format!(
            "invalid literal at byte {pos}",
            pos = *pos
        )))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(Error::new("expected string"));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let first = parse_hex4(bytes, pos)?;
                        let c = if (0xD800..0xDC00).contains(&first) {
                            // High surrogate: a `\uXXXX` low surrogate must follow.
                            if bytes.get(*pos + 1) != Some(&b'\\')
                                || bytes.get(*pos + 2) != Some(&b'u')
                            {
                                return Err(Error::new("unpaired surrogate"));
                            }
                            *pos += 2;
                            let second = parse_hex4(bytes, pos)?;
                            let combined = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(first)
                        };
                        out.push(c.ok_or_else(|| Error::new("invalid unicode escape"))?);
                    }
                    other => return Err(Error::new(format!("invalid escape: {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character (input is a &str, so boundaries
                // are valid; find the next char boundary).
                let start = *pos;
                let mut end = start + 1;
                while end < bytes.len() && (bytes[end] & 0xC0) == 0x80 {
                    end += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..end])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

/// Parses the 4 hex digits after `\u`, leaving `pos` on the final digit.
fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let start = *pos + 1;
    let digits = bytes
        .get(start..start + 4)
        .ok_or_else(|| Error::new("truncated \\u escape"))?;
    let text = std::str::from_utf8(digits).map_err(|_| Error::new("invalid \\u escape"))?;
    let value = u32::from_str_radix(text, 16).map_err(|_| Error::new("invalid \\u escape"))?;
    *pos = start + 3;
    Ok(value)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::new("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::new(format!("invalid number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    } else if let Some(stripped) = text.strip_prefix('-') {
        stripped
            .parse::<u128>()
            .map(|u| Value::Int(-(u as i128)))
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    } else {
        text.parse::<u128>()
            .map(Value::UInt)
            .map_err(|e| Error::new(format!("invalid number `{text}`: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_arrays_objects() {
        let value = Value::Object(vec![
            ("a".to_string(), Value::UInt(7)),
            (
                "b".to_string(),
                Value::Array(vec![Value::Bool(true), Value::Null]),
            ),
            (
                "c".to_string(),
                Value::String("x \"quoted\" \n".to_string()),
            ),
            ("d".to_string(), Value::Float(1.5)),
            ("e".to_string(), Value::Int(-3)),
        ]);
        let text = {
            let mut out = String::new();
            write_value(&mut out, &value).unwrap();
            out
        };
        assert_eq!(parse_value_complete(&text).unwrap(), value);
    }

    #[test]
    fn parses_nested_and_unicode() {
        let parsed = parse_value_complete(r#"{"k": [{"x": "é😀"}, 1e3]}"#).unwrap();
        match parsed.get("k") {
            Some(Value::Array(items)) => {
                assert_eq!(items[0].get("x"), Some(&Value::String("é😀".to_string())));
                assert_eq!(items[1], Value::Float(1000.0));
            }
            other => panic!("unexpected parse: {other:?}"),
        }
    }
}
