//! Offline shim for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, exposing [`ChaCha8Rng`].
//!
//! Unlike the other shims this one implements the real ChaCha8 block function
//! (the IETF variant with a 64-bit block counter), so the keystream for a
//! given 256-bit seed matches the ChaCha8 specification. Word-to-output
//! ordering follows the natural little-endian block layout, which is the same
//! ordering upstream `rand_chacha` uses; `seed_from_u64` goes through the
//! `rand` shim's SplitMix64 expansion, so *that* entry point is deterministic
//! within this workspace but not guaranteed bit-identical to upstream.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// A cryptographically strong (ChaCha8) seeded random number generator.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key words (state words 4..12).
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14).
    counter: u64,
    /// Current 16-word output block.
    block: [u32; 16],
    /// Next word index within `block`; 16 means "generate a new block".
    index: usize,
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
        let mut x = [0u32; 16];
        x[0..4].copy_from_slice(&SIGMA);
        x[4..12].copy_from_slice(&self.key);
        x[12] = self.counter as u32;
        x[13] = (self.counter >> 32) as u32;
        x[14] = 0; // stream id low
        x[15] = 0; // stream id high
        let input = x;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut x, 0, 4, 8, 12);
            quarter_round(&mut x, 1, 5, 9, 13);
            quarter_round(&mut x, 2, 6, 10, 14);
            quarter_round(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut x, 0, 5, 10, 15);
            quarter_round(&mut x, 1, 6, 11, 12);
            quarter_round(&mut x, 2, 7, 8, 13);
            quarter_round(&mut x, 3, 4, 9, 14);
        }
        for (out, inp) in x.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.block = x;
        self.index = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// Returns the current 64-bit word position within the keystream.
    pub fn get_word_pos(&self) -> u128 {
        // `index == 16` means the current block is fully consumed (or none was
        // generated yet): the position is exactly `counter` whole blocks.
        if self.index >= 16 {
            self.counter as u128 * 16
        } else {
            (self.counter as u128 - 1) * 16 + self.index as u128
        }
    }
}

#[inline(always)]
fn quarter_round(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.block[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keystream_is_deterministic_and_differs_across_seeds() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        let mut b = ChaCha8Rng::seed_from_u64(7);
        let mut c = ChaCha8Rng::seed_from_u64(8);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn chacha8_block_matches_reference_structure() {
        // A zero key must not produce a zero block (the sigma constants feed in).
        let mut rng = ChaCha8Rng::from_seed([0u8; 32]);
        assert_eq!(rng.get_word_pos(), 0, "fresh rng is at position 0");
        let first = rng.next_u64();
        assert_ne!(first, 0);
        // Boundary: after consuming exactly one block the position is 16.
        for _ in 0..14 {
            rng.next_u32();
        }
        assert_eq!(rng.get_word_pos(), 16);
        // Blocks advance: the 17th word comes from the second block.
        rng.next_u32();
        assert_eq!(rng.get_word_pos(), 17);
    }
}
