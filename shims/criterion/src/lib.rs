//! Offline shim for the [`criterion`](https://crates.io/crates/criterion)
//! crate.
//!
//! Implements the API subset this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function` / `bench_with_input`, `Throughput`,
//! `BenchmarkId`, and the `criterion_group!` / `criterion_main!` macros — with
//! a small adaptive runner: each benchmark is warmed up, then timed over
//! `sample_size` samples whose per-sample iteration count is chosen to fill
//! `measurement_time`. Mean, standard deviation and throughput are printed as
//! plain text. No HTML reports, no statistical regression analysis.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The benchmark processes this many logical elements per iteration.
    Elements(u64),
    /// The benchmark processes this many bytes per iteration.
    Bytes(u64),
}

/// A benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered as `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        Self {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id that is only a parameter (for single-function groups).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        Self {
            name,
            parameter: None,
        }
    }
}

/// Timing helper handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`, keeping each return value alive until
    /// after the measurement (a stand-in for `criterion::black_box` plumbing).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            let output = routine();
            black_box(output);
        }
        self.elapsed = start.elapsed();
    }
}

/// An opaque identity function that hides a value from the optimizer well
/// enough for these benches (reads the value through `std::hint::black_box`).
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Shared measurement settings.
#[derive(Debug, Clone)]
struct Settings {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    filter: Option<String>,
    list_only: bool,
    test_mode: bool,
}

impl Default for Settings {
    fn default() -> Self {
        // Parse the CLI arguments cargo-bench/cargo-test pass along: a
        // positional substring filter plus the harness flags criterion
        // supports (`--bench` is an accepted no-op marker, `--test` runs each
        // benchmark exactly once, `--list` only prints names).
        let mut filter = None;
        let mut list_only = false;
        let mut test_mode = false;
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--bench" | "--profile-time" => {}
                "--test" | "--exact" => test_mode = true,
                "--list" => list_only = true,
                "--save-baseline" | "--baseline" | "--load-baseline" | "--measurement-time"
                | "--warm-up-time" | "--sample-size" => {
                    let _ = args.next();
                }
                flag if flag.starts_with("--") => {}
                positional => {
                    if filter.is_none() {
                        filter = Some(positional.to_string());
                    }
                }
            }
        }
        Self {
            sample_size: 20,
            warm_up_time: Duration::from_millis(500),
            measurement_time: Duration::from_secs(2),
            filter,
            list_only,
            test_mode,
        }
    }
}

/// The benchmark manager, mirroring `criterion::Criterion`.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            settings: self.settings.clone(),
            throughput: None,
            _criterion: self,
        }
    }

    /// Registers a stand-alone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let settings = self.settings.clone();
        run_one(&settings, None, &id.into().to_string(), None, f);
        self
    }
}

/// A group of related benchmarks sharing settings and throughput annotation.
pub struct BenchmarkGroup<'a> {
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.sample_size = n.max(1);
        self
    }

    /// Sets the warm-up duration per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.settings.warm_up_time = d;
        self
    }

    /// Sets the total measurement duration budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.settings.measurement_time = d;
        self
    }

    /// Annotates the group's per-iteration throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        run_one(
            &self.settings,
            Some(&self.name),
            &id.into().to_string(),
            self.throughput,
            f,
        );
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (drop would do; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    settings: &Settings,
    group: Option<&str>,
    id: &str,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let full_name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    if let Some(filter) = &settings.filter {
        if !full_name.contains(filter.as_str()) {
            return;
        }
    }
    if settings.list_only {
        println!("{full_name}: benchmark");
        return;
    }
    if settings.test_mode {
        let mut bencher = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        println!("{full_name}: test passed");
        return;
    }

    // Warm-up: run batches until the warm-up budget is spent, measuring the
    // per-iteration cost to calibrate sample iteration counts.
    let warm_start = Instant::now();
    let mut warm_iters: u64 = 0;
    let mut batch: u64 = 1;
    while warm_start.elapsed() < settings.warm_up_time {
        let mut bencher = Bencher {
            iters: batch,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        warm_iters += batch;
        batch = (batch * 2).min(1 << 20);
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

    // Sampling: pick an iteration count per sample so all samples together
    // roughly fill the measurement budget.
    let budget = settings.measurement_time.as_secs_f64();
    let iters_per_sample =
        ((budget / settings.sample_size as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);
    let mut samples = Vec::with_capacity(settings.sample_size);
    for _ in 0..settings.sample_size {
        let mut bencher = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite sample times"));
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let median = samples[samples.len() / 2];
    let variance =
        samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64;
    let stddev = variance.sqrt();

    let mut line = format!(
        "{full_name}: mean {} median {} ± {} ({} samples × {} iters)",
        format_time(mean),
        format_time(median),
        format_time(stddev),
        samples.len(),
        iters_per_sample,
    );
    if let Some(throughput) = throughput {
        let (amount, unit) = match throughput {
            Throughput::Elements(n) => (n as f64, "elem/s"),
            Throughput::Bytes(n) => (n as f64, "B/s"),
        };
        line.push_str(&format!(" — {:.0} {unit}", amount / mean));
    }
    println!("{line}");
}

fn format_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group-runner function over benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` over group-runner functions, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
