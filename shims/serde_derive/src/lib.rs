//! Offline shim for `serde_derive`: `#[derive(Serialize)]` and
//! `#[derive(Deserialize)]` without `syn`/`quote`.
//!
//! The macros parse the item's token stream directly and emit impls of the
//! `serde` *shim*'s value-tree traits as source strings. Supported shapes —
//! exactly what this workspace derives on:
//!
//! * structs with named fields,
//! * newtype and tuple structs,
//! * enums with unit, newtype, tuple and struct variants.
//!
//! Not supported (the macros panic with a clear message): generic parameters
//! and `#[serde(...)]` attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The parsed shape of the item a derive is applied to.
enum Shape {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<(String, Fields)>,
    },
}

/// Field layout of a struct or an enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// Derives the serde shim's `Serialize` for the annotated item.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let body = match &shape {
        Shape::Struct { name, fields } => serialize_struct(name, fields),
        Shape::Enum { name, variants } => serialize_enum(name, variants),
    };
    body.parse().expect("generated Serialize impl parses")
}

/// Derives the serde shim's `Deserialize` for the annotated item.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = parse_item(input);
    let body = match &shape {
        Shape::Struct { name, fields } => deserialize_struct(name, fields),
        Shape::Enum { name, variants } => deserialize_enum(name, variants),
    };
    body.parse().expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_item(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let keyword = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }
    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Struct {
                name,
                fields: Fields::Named(parse_named_fields(g.stream())),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Shape::Struct {
                name,
                fields: Fields::Tuple(count_tuple_fields(g.stream())),
            },
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::Struct {
                name,
                fields: Fields::Unit,
            },
            other => panic!("serde_derive shim: unexpected token after `struct {name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Shape::Enum {
                name,
                variants: parse_variants(g.stream()),
            },
            other => panic!("serde_derive shim: unexpected token after `enum {name}`: {other:?}"),
        },
        other => panic!("serde_derive shim: expected `struct` or `enum`, found `{other}`"),
    }
}

/// Advances past outer attributes (`#[...]`, including doc comments) and
/// visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // '#'
                match tokens.get(*i) {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => *i += 1,
                    other => panic!("serde_derive shim: malformed attribute: {other:?}"),
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => return,
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde_derive shim: expected identifier, found {other:?}"),
    }
}

/// Parses `a: Ty, b: Ty, ...`, returning the field names. Types are skipped
/// with angle-bracket depth tracking so `BTreeMap<K, V>` commas don't split.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                panic!("serde_derive shim: expected `:` after field `{field}`, found {other:?}")
            }
        }
        skip_type(&tokens, &mut i);
        fields.push(field);
    }
    fields
}

/// Counts the fields of a tuple struct/variant body (`Ty, Ty, ...`).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut i = 0;
    let mut count = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        count += 1;
    }
    count
}

/// Skips one type, stopping after the top-level `,` (or at end of stream).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut angle_depth = 0usize;
    while let Some(token) = tokens.get(*i) {
        match token {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle_depth = angle_depth.saturating_sub(1);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_variants(stream: TokenStream) -> Vec<(String, Fields)> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = Fields::Tuple(count_tuple_fields(g.stream()));
                i += 1;
                fields
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = Fields::Named(parse_named_fields(g.stream()));
                i += 1;
                fields
            }
            _ => Fields::Unit,
        };
        // Skip an optional discriminant (`= expr`) and the trailing comma.
        while let Some(token) = tokens.get(i) {
            if matches!(token, TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
        variants.push((name, fields));
    }
    variants
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn serialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("::serde::Value::String(\"{name}\".to_string())"),
        Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Fields::Named(names) => {
            let entries: Vec<String> = names
                .iter()
                .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}))"))
                .collect();
            format!("::serde::Value::Object(vec![{}])", entries.join(", "))
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn deserialize_struct(name: &str, fields: &Fields) -> String {
    let body = match fields {
        Fields::Unit => format!("Ok({name})"),
        Fields::Tuple(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__value)?))")
        }
        Fields::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                .collect();
            format!(
                "match __value {{\n\
                     ::serde::Value::Array(__items) if __items.len() == {n} => \
                         Ok({name}({items})),\n\
                     __other => Err(::serde::Error::custom(format!(\
                         \"expected array of {n} elements for `{name}`, got {{}}\", __other.kind()))),\n\
                 }}",
                items = items.join(", ")
            )
        }
        Fields::Named(names) => format!(
            "match __value {{\n\
                 ::serde::Value::Object(_) => Ok({name} {{ {fields} }}),\n\
                 __other => Err(::serde::Error::custom(format!(\
                     \"expected object for `{name}`, got {{}}\", __other.kind()))),\n\
             }}",
            fields = named_field_initializers(name, names, "__value")
        ),
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

/// `a: <lookup "a">, b: <lookup "b">, ...` initializers reading from `source`.
fn named_field_initializers(context: &str, names: &[String], source: &str) -> String {
    names
        .iter()
        .map(|f| {
            format!(
                "{f}: match {source}.get(\"{f}\") {{\n\
                     Some(__v) => ::serde::Deserialize::from_value(__v)?,\n\
                     None => return Err(::serde::Error::custom(\
                         \"missing field `{f}` in `{context}`\")),\n\
                 }}"
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn serialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let arms: Vec<String> = variants
        .iter()
        .map(|(variant, fields)| match fields {
            Fields::Unit => {
                format!("{name}::{variant} => ::serde::Value::String(\"{variant}\".to_string()),")
            }
            Fields::Tuple(1) => format!(
                "{name}::{variant}(__x0) => ::serde::Value::Object(vec![\
                     (\"{variant}\".to_string(), ::serde::Serialize::to_value(__x0))]),"
            ),
            Fields::Tuple(n) => {
                let binders: Vec<String> = (0..*n).map(|k| format!("__x{k}")).collect();
                let items: Vec<String> = binders
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!(
                    "{name}::{variant}({binders}) => ::serde::Value::Object(vec![\
                         (\"{variant}\".to_string(), ::serde::Value::Array(vec![{items}]))]),",
                    binders = binders.join(", "),
                    items = items.join(", ")
                )
            }
            Fields::Named(field_names) => {
                let binders = field_names.join(", ");
                let entries: Vec<String> = field_names
                    .iter()
                    .map(|f| format!("(\"{f}\".to_string(), ::serde::Serialize::to_value({f}))"))
                    .collect();
                format!(
                    "{name}::{variant} {{ {binders} }} => ::serde::Value::Object(vec![\
                         (\"{variant}\".to_string(), ::serde::Value::Object(vec![{entries}]))]),",
                    entries = entries.join(", ")
                )
            }
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}\n}}\n\
             }}\n\
         }}",
        arms = arms.join("\n")
    )
}

fn deserialize_enum(name: &str, variants: &[(String, Fields)]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|(_, fields)| matches!(fields, Fields::Unit))
        .map(|(variant, _)| format!("\"{variant}\" => Ok({name}::{variant}),"))
        .collect();
    let data_arms: Vec<String> = variants
        .iter()
        .filter_map(|(variant, fields)| match fields {
            Fields::Unit => None,
            Fields::Tuple(1) => Some(format!(
                "\"{variant}\" => Ok({name}::{variant}(::serde::Deserialize::from_value(__payload)?)),"
            )),
            Fields::Tuple(n) => {
                let items: Vec<String> = (0..*n)
                    .map(|k| format!("::serde::Deserialize::from_value(&__items[{k}])?"))
                    .collect();
                Some(format!(
                    "\"{variant}\" => match __payload {{\n\
                         ::serde::Value::Array(__items) if __items.len() == {n} => \
                             Ok({name}::{variant}({items})),\n\
                         __other => Err(::serde::Error::custom(format!(\
                             \"expected array of {n} elements for `{name}::{variant}`, got {{}}\", \
                             __other.kind()))),\n\
                     }},",
                    items = items.join(", ")
                ))
            }
            Fields::Named(field_names) => Some(format!(
                "\"{variant}\" => Ok({name}::{variant} {{ {fields} }}),",
                fields = named_field_initializers(
                    &format!("{name}::{variant}"),
                    field_names,
                    "__payload"
                )
            )),
        })
        .collect();
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __value {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\n\
                         __other => Err(::serde::Error::custom(format!(\
                             \"unknown unit variant `{{__other}}` for `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__entries) if __entries.len() == 1 => {{\n\
                         let (__tag, __payload) = &__entries[0];\n\
                         match __tag.as_str() {{\n\
                             {data_arms}\n\
                             __other => Err(::serde::Error::custom(format!(\
                                 \"unknown variant `{{__other}}` for `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => Err(::serde::Error::custom(format!(\
                         \"expected variant of `{name}`, got {{}}\", __other.kind()))),\n\
                 }}\n\
             }}\n\
         }}",
        unit_arms = unit_arms.join("\n"),
        data_arms = data_arms.join("\n")
    )
}
