#!/usr/bin/env bash
# Records a benchmark baseline for one of the bench binaries (default: fig3).
#
# Usage: scripts/record-baseline.sh [fig3|...|fig8|ablation_report|mvbench|commitbench|accountbench|storagebench|adaptivebench|soakbench] [tag]
#
# Output convention (committed so future PRs have a perf trajectory):
#   bench-results/<bin>/<YYYY-MM-DD>-<tag>.tsv   — the TSV rows the binary prints
#   bench-results/<bin>/<YYYY-MM-DD>-<tag>.json  — the JSON measurement array
# where <tag> defaults to "<os>-<arch>-<N>cpu". Set BLOCK_STM_BENCH_QUICK=1
# for a smoke-grid run (recorded with a "-quick" suffix so it is never
# compared against full-grid baselines).
set -euo pipefail
cd "$(dirname "$0")/.."

bin="${1:-fig3}"
cpus="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo unknown)"
tag="${2:-$(uname -s | tr '[:upper:]' '[:lower:]')-$(uname -m)-${cpus}cpu}"
if [[ -n "${BLOCK_STM_BENCH_QUICK:-}" ]]; then
    tag="${tag}-quick"
fi
stamp="$(date +%Y-%m-%d)"
out_dir="bench-results/${bin}"
mkdir -p "${out_dir}"

cargo build --release -p block-stm-bench --bin "${bin}"
raw="$("./target/release/${bin}")"

printf '%s\n' "${raw}" | grep -v '^# json: ' > "${out_dir}/${stamp}-${tag}.tsv"
printf '%s\n' "${raw}" | sed -n 's/^# json: //p' > "${out_dir}/${stamp}-${tag}.json"

echo "recorded ${out_dir}/${stamp}-${tag}.{tsv,json}"
